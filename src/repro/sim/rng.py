"""Deterministic, named random-number streams.

Every stochastic decision in the simulator (node placement, lifetimes, MAC
jitter, ...) draws from its own named stream so that changing how often one
subsystem consumes randomness never perturbs another.  Streams are derived
from a single master seed with SHA-256, so a :class:`RandomStreams` built
from the same seed always yields identical streams regardless of creation
order.

Example::

    streams = RandomStreams(seed=42)
    placement = streams.stream("placement")
    lifetimes = streams.stream("lifetime")
    x = placement.uniform(0.0, 800.0)
    t = lifetimes.expovariate(1.0 / 16_000.0)
"""

from __future__ import annotations

import hashlib
import random
import typing

__all__ = ["RandomStream", "RandomStreams", "derive_seed"]

#: The generator type handed out by :meth:`RandomStreams.stream`.
#:
#: This module is the only place in the package allowed to touch the
#: stdlib ``random`` module (enforced by ``repro.lint`` rule R1); every
#: other module annotates stream parameters with this alias instead of
#: importing ``random`` itself.
RandomStream = random.Random


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a substream seed from *master_seed* and a stream *name*.

    Stable across platforms and Python versions (unlike ``hash``).
    """
    digest = hashlib.sha256(
        f"{master_seed}:{name}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A family of independent, reproducible random streams.

    Parameters
    ----------
    seed:
        Master seed.  Two instances with the same seed produce identical
        streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: typing.Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, preserving its internal position.
        """
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child family, e.g. one per simulation replicate."""
        return RandomStreams(derive_seed(self.seed, f"spawn:{name}"))

    def __repr__(self) -> str:
        return (
            f"<RandomStreams seed={self.seed} "
            f"streams={sorted(self._streams)!r}>"
        )
