"""The simulation engine: clock, event queue, and run loop.

:class:`Simulator` owns a binary-heap event queue keyed by
``(time, priority, sequence)``.  The sequence number makes ordering total
and deterministic: two events scheduled for the same time and priority are
processed in scheduling order, so a seeded run always replays identically.

Typical use::

    sim = Simulator()

    def hello(sim):
        yield sim.timeout(3.0)
        print("the time is", sim.now)

    sim.process(hello(sim))
    sim.run(until=10.0)
"""

from __future__ import annotations

import heapq
import typing

from heapq import heappop as _heappop, heappush as _heappush

from repro.sim.events import (
    AllOf,
    AnyOf,
    Callback,
    Event,
    SimulationError,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator

__all__ = [
    "Simulator",
    "StopSimulation",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "TIME_EPSILON",
    "times_equal",
]

#: Priority for kernel-internal wakeups that must precede normal events.
PRIORITY_URGENT = 0
#: Default priority for all user events.
PRIORITY_NORMAL = 1

#: Default tolerance for comparing simulation timestamps.  Timestamps are
#: sums of float delays, so two "simultaneous" events can differ by a few
#: ulps; direct ``==`` between times is a determinism hazard (and flagged
#: by ``repro.lint`` rule R4).
TIME_EPSILON = 1e-9


def times_equal(a: float, b: float, tolerance: float = TIME_EPSILON) -> bool:
    """True if simulation times *a* and *b* agree within *tolerance*.

    Use this instead of ``a == b`` whenever both operands are simulation
    timestamps (accumulated float delays).
    """
    return abs(a - b) <= tolerance


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` at ``until``."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).  Defaults to 0.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list = []
        self._seq = 0
        self._active_process: typing.Optional[Process] = None
        self._processed_events = 0

    # ------------------------------------------------------------------
    # Clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> typing.Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (a progress measure)."""
        return self._processed_events

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        while self._queue:
            time, _priority, _seq, event = self._queue[0]
            if event.callbacks is None:
                heapq.heappop(self._queue)  # cancelled / already processed
                continue
            return time
        return float("inf")

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: ProcessGenerator,
        name: typing.Optional[str] = None,
    ) -> Process:
        """Start a new :class:`Process` driving *generator*."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> AllOf:
        """Event firing once every event in *events* has fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> AnyOf:
        """Event firing once any event in *events* has fired."""
        return AnyOf(self, events)

    def call_at(
        self,
        time: float,
        callback: typing.Callable[[], None],
    ) -> Event:
        """Schedule *callback* (no arguments) to run at absolute *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        return self.call_in(time - self._now, callback)

    def call_in(
        self,
        delay: float,
        callback: typing.Callable[[], None],
    ) -> Event:
        """Schedule *callback* (no arguments) to run after *delay* seconds.

        This is the kernel's fast path: plain callbacks account for most
        of the event volume (MAC wakeups, channel deliveries, timers), so
        they skip the full ``Timeout`` + ``add_callback`` machinery and
        go onto the heap as a lightweight :class:`Callback` event.  The
        returned event is cancellable via :meth:`cancel` and yieldable
        from processes, exactly like a Timeout.
        """
        if delay < 0:
            raise ValueError(f"negative callback delay: {delay!r}")
        # Inlined Callback construction: __new__ + direct slot stores
        # skip the __init__ call frame on the kernel's hottest path.
        event = Callback.__new__(Callback)
        event.sim = self
        event.callbacks = []
        event._value = None
        event._ok = True
        event._fn = callback
        time = self._now + delay
        event._scheduled_at = time
        seq = self._seq + 1
        self._seq = seq
        _heappush(self._queue, (time, PRIORITY_NORMAL, seq, event))
        return event

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a scheduled event by discarding its callbacks.

        The queue entry is skipped lazily when the main loop reaches it.
        Cancelling an already-processed event is a no-op.
        """
        event.callbacks = None

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------
    def _enqueue(
        self,
        event: Event,
        delay: float,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Insert *event* into the queue ``delay`` seconds from now."""
        time = self._now + delay
        event._scheduled_at = time
        self._seq += 1
        heapq.heappush(self._queue, (time, priority, self._seq, event))

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        while True:
            if not self._queue:
                return  # Only cancelled entries remained: nothing to do.
            time, _priority, _seq, event = heapq.heappop(self._queue)
            if event.callbacks is None:
                continue  # cancelled
            break
        if time < self._now:  # pragma: no cover - heap invariant guard
            raise SimulationError("event queue went backwards in time")
        self._now = time
        self._processed_events += 1
        event._process()

    def run(
        self,
        until: typing.Union[None, float, Event] = None,
    ) -> typing.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the event queue drains.
            * a number — run until the clock reaches that time (events
              scheduled exactly at ``until`` are *not* processed; the
              clock is left at ``until``).
            * an :class:`Event` — run until that event is processed and
              return its value (re-raising its exception if it failed).
        """
        stop_event: typing.Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise typing.cast(BaseException, stop_event.value)
            stop_event.add_callback(self._stop_callback)
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"until ({horizon}) is before now ({self._now})"
                )
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            stop_event.callbacks.append(self._stop_callback)
            self._seq += 1
            heapq.heappush(
                self._queue,
                (horizon, PRIORITY_URGENT, self._seq, stop_event),
            )

        # Inlined main loop (identical semantics to repeated step()):
        # local bindings and the hand-inlined Callback fast path shave
        # several hundred nanoseconds per event, which matters at
        # millions of events per run.
        queue = self._queue
        pop = _heappop
        fast_type = Callback
        processed = 0
        try:
            while queue:
                entry = pop(queue)
                event = entry[3]
                if type(event) is fast_type:
                    # Inlined Callback._process (the common case).
                    callbacks = event.callbacks
                    if callbacks is None:
                        continue  # cancelled
                    event.callbacks = None
                    self._now = entry[0]
                    processed += 1
                    event._fn()
                    if callbacks:
                        for callback in callbacks:
                            callback(event)
                    continue
                if event.callbacks is None:
                    continue  # cancelled
                self._now = entry[0]
                processed += 1
                event._process()
        except StopSimulation:
            pass
        finally:
            self._processed_events += processed

        if isinstance(until, Event):
            if not until.processed:
                raise SimulationError(
                    "run(until=event) exhausted the queue before the event "
                    "fired — deadlock in the model?"
                )
            if until.ok:
                return until.value
            raise typing.cast(BaseException, until.value)
        if until is not None:
            # Leave the clock exactly at the horizon even if the queue
            # drained early.
            self._now = max(self._now, float(until))
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation

    def __repr__(self) -> str:
        return (
            f"<Simulator t={self._now:.3f} queued={len(self._queue)} "
            f"processed={self._processed_events}>"
        )
