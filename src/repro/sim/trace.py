"""Lightweight structured tracing for simulations.

Models emit trace records through a :class:`Tracer`; sinks subscribe per
category.  Tracing is off by default and costs a single dict lookup per
emit when no sink is attached, so hot paths may trace unconditionally.

Example::

    tracer = Tracer()
    tracer.subscribe("failure", lambda rec: print(rec))
    tracer.emit("failure", time=12.5, node="s17", position=(40.0, 71.2))
"""

from __future__ import annotations

import dataclasses
import typing

__all__ = ["TraceRecord", "Tracer", "RecordingSink"]


@dataclasses.dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace record: a category, a timestamp, and free-form fields."""

    category: str
    time: float
    fields: typing.Mapping[str, typing.Any]

    def __getitem__(self, key: str) -> typing.Any:
        return self.fields[key]

    def get(self, key: str, default: typing.Any = None) -> typing.Any:
        return self.fields.get(key, default)


TraceSink = typing.Callable[[TraceRecord], None]


class Tracer:
    """Dispatches trace records to subscribed sinks.

    Sinks subscribed to the pseudo-category ``"*"`` receive every record.

    :attr:`active` is a plain attribute maintained by ``subscribe`` /
    ``unsubscribe`` rather than a property: hot paths check it before
    building every record's keyword dict, so it must cost one attribute
    load, not a scan over the sink table.
    """

    __slots__ = ("_sinks", "active")

    def __init__(self) -> None:
        self._sinks: typing.Dict[str, typing.List[TraceSink]] = {}
        #: True if at least one sink is subscribed.  Guard `emit` calls
        #: with this so no field dicts are built when tracing is off.
        self.active = False

    def subscribe(self, category: str, sink: TraceSink) -> None:
        """Register *sink* for *category* (or ``"*"`` for all records)."""
        self._sinks.setdefault(category, []).append(sink)
        self.active = True

    def unsubscribe(self, category: str, sink: TraceSink) -> None:
        """Remove a previously registered sink (no-op if absent)."""
        sinks = self._sinks.get(category)
        if sinks and sink in sinks:
            sinks.remove(sink)
        self.active = any(self._sinks.values())

    def emit(self, category: str, time: float, **fields: typing.Any) -> None:
        """Emit a record; drops it cheaply when nobody listens."""
        sinks = self._sinks.get(category)
        wildcard = self._sinks.get("*")
        if not sinks and not wildcard:
            return
        record = TraceRecord(category=category, time=time, fields=fields)
        for sink in sinks or ():
            sink(record)
        for sink in wildcard or ():
            sink(record)


class RecordingSink:
    """A sink that accumulates records in memory, mainly for tests.

    Example::

        recorder = RecordingSink()
        tracer.subscribe("dispatch", recorder)
        ...
        assert recorder.records[0]["robot"] == "r3"
    """

    def __init__(self) -> None:
        self.records: typing.List[TraceRecord] = []

    def __call__(self, record: TraceRecord) -> None:
        self.records.append(record)

    def of_category(self, category: str) -> typing.List[TraceRecord]:
        """All recorded records of *category*, in emit order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        """Discard all recorded records."""
        self.records.clear()
