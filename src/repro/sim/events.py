"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot synchronisation point: it starts *pending*,
is later *triggered* (either succeeded with a value or failed with an
exception), and finally *processed* once the simulator has run its callbacks.
Processes (see :mod:`repro.sim.process`) wait on events by ``yield``-ing
them; plain callbacks can be attached with :meth:`Event.add_callback`.

The kernel is deliberately small but complete: timeouts, composite
conditions (:class:`AllOf` / :class:`AnyOf`) and process interrupts cover
everything the sensor-network models in :mod:`repro.core` need.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "Callback",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class _PendingType:
    """Sentinel marking an event whose value has not been decided yet."""

    _instance: typing.Optional["_PendingType"] = None

    def __new__(cls) -> "_PendingType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<PENDING>"

    def __bool__(self) -> bool:
        return False


#: Sentinel stored in :attr:`Event.value` while the event is untriggered.
PENDING = _PendingType()


class SimulationError(Exception):
    """Raised for misuse of the kernel (double trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupted process receives the interrupt at its current wait
    point and may catch it to react (for example, a robot idling until the
    next replacement request is interrupted when a request arrives).
    """

    @property
    def cause(self) -> typing.Any:
        """The cause object passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulator. Events may only be triggered and processed
        by the simulator that created them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled_at")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callbacks run when the event is processed; each receives the event.
        self.callbacks: typing.Optional[list] = []
        self._value: typing.Any = PENDING
        self._ok: bool = True
        self._scheduled_at: typing.Optional[float] = None

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the simulator has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded, False if it failed.

        Only meaningful once :attr:`triggered` is True.
        """
        return self._ok

    @property
    def value(self) -> typing.Any:
        """The event's value (or the exception for failed events)."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: typing.Any = None) -> "Event":
        """Trigger the event successfully with *value*.

        The event is scheduled to be processed at the current simulation
        time; callbacks run when the simulator reaches it in the event
        queue (never synchronously inside ``succeed``).
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception*.

        A failed event throws *exception* into every process waiting on it.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(
                f"fail() requires an exception, got {exception!r}"
            )
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another *event*.

        Used as a callback to chain events together.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(typing.cast(BaseException, event._value))

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------
    def add_callback(self, callback: typing.Callable[["Event"], None]) -> None:
        """Attach *callback* to run when the event is processed.

        If the event has already been processed the callback runs
        immediately (synchronously), preserving at-least-once semantics.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        """Run all callbacks.  Called by the simulator main loop only.

        A *failed* event with no listeners re-raises its exception: errors
        never pass silently out of the simulation.
        """
        callbacks = self.callbacks
        if callbacks is None:
            raise SimulationError(f"{self!r} has already been processed")
        self.callbacks = None
        if not self._ok and not callbacks:
            raise typing.cast(BaseException, self._value)
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "pending"
        if self.processed:
            state = "processed"
        elif self.triggered:
            state = "triggered"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a fixed *delay*.

    Unlike a plain :class:`Event` it is triggered at construction time and
    cannot be triggered manually.
    """

    __slots__ = ("delay",)

    def __init__(
        self, sim: "Simulator", delay: float, value: typing.Any = None
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(self, delay)

    def succeed(self, value: typing.Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r} at {id(self):#x}>"


class Callback(Event):
    """The fast path behind :meth:`Simulator.call_in`.

    A plain-callback timer needs none of the Event machinery on the
    common path: no lambda closure, no callback-list walk, no trigger
    bookkeeping.  It is born triggered (like :class:`Timeout`), stores
    the bare callable in a slot, and invokes it directly when processed.
    ``add_callback`` and :meth:`Simulator.cancel` still work exactly as
    they do for a Timeout, so it remains yieldable and cancellable.
    """

    __slots__ = ("_fn",)

    def __init__(
        self, sim: "Simulator", fn: typing.Callable[[], None]
    ) -> None:
        # Inlined Event.__init__ + Timeout trigger state: this runs once
        # per scheduled callback, which is most of the event volume.
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self._scheduled_at = None
        self._fn = fn

    def succeed(self, value: typing.Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Callback events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Callback events trigger themselves")

    def _process(self) -> None:
        callbacks = self.callbacks
        if callbacks is None:
            raise SimulationError(f"{self!r} has already been processed")
        self.callbacks = None
        self._fn()
        # Callbacks attached after scheduling (rare) run afterwards, in
        # the same order the old Timeout-based path ran them.
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        return f"<Callback {self._fn!r} at {id(self):#x}>"


class Condition(Event):
    """An event that triggers once *evaluate* is satisfied over *events*.

    Concrete policies are :class:`AllOf` (conjunction) and :class:`AnyOf`
    (disjunction).  The condition's value is a dict mapping each already
    triggered constituent event to its value, in trigger order.
    """

    __slots__ = ("events", "_evaluate", "_outstanding")

    def __init__(
        self,
        sim: "Simulator",
        evaluate: typing.Callable[[int, int], bool],
        events: typing.Iterable[Event],
    ) -> None:
        super().__init__(sim)
        self.events: tuple = tuple(events)
        self._evaluate = evaluate
        self._outstanding = len(self.events)

        for event in self.events:
            if event.sim is not sim:
                raise SimulationError(
                    "all events of a condition must share one simulator"
                )

        if not self.events:
            # Vacuous condition: triggers immediately.
            self.succeed({})
            return

        for event in self.events:
            event.add_callback(self._check)

    def _collect_values(self) -> dict:
        return {
            event: event._value
            for event in self.events
            if event.triggered and event.ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._outstanding -= 1
        if not event._ok:
            self.fail(typing.cast(BaseException, event._value))
        elif self._evaluate(len(self.events), self._outstanding):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Condition that fires once *all* constituent events have fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: typing.Iterable[Event]) -> None:
        super().__init__(sim, lambda total, left: left == 0, events)


class AnyOf(Condition):
    """Condition that fires as soon as *any* constituent event fires."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: typing.Iterable[Event]) -> None:
        super().__init__(sim, lambda total, left: left < total, events)
