"""Generator-based simulation processes.

A *process* wraps a Python generator: the generator ``yield``-s
:class:`~repro.sim.events.Event` instances and is resumed with the event's
value once it fires (or has the event's exception thrown into it).  A
process is itself an event that triggers when the generator finishes,
which lets other processes join it::

    def maintain(sim, robot):
        while True:
            request = yield robot.next_request()   # wait for work
            yield sim.timeout(travel_time)         # drive there
            robot.replace_node(request.location)

    proc = sim.process(maintain(sim, robot))

Processes support cooperative cancellation via :meth:`Process.interrupt`,
which raises :class:`~repro.sim.events.Interrupt` at the current wait point.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event, Interrupt, PENDING, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

__all__ = ["Process"]

ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]


class Process(Event):
    """An active component driven by a generator.

    The process event succeeds with the generator's return value, or fails
    with the exception that escaped the generator.
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: ProcessGenerator,
        name: typing.Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process requires a generator, got {generator!r}"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if running
        #: or finished).
        self._target: typing.Optional[Event] = None

        # Kick off the generator via an immediately-triggered event so the
        # first step happens inside the simulator loop, not synchronously.
        start = Event(sim)
        start.callbacks.append(self._resume)
        start._ok = True
        start._value = None
        sim._enqueue(start, 0.0)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> typing.Optional[Event]:
        """The event the process is currently waiting for, if any."""
        return self._target

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        Interrupting a finished process is an error; interrupting a
        process that has not started yet is allowed and delivered before
        its first step.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        # Deliver asynchronously, via a failed event, so the interrupt is
        # ordered with respect to other scheduled events.
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.callbacks.append(self._deliver_interrupt)
        self.sim._enqueue(interrupt_event, 0.0)

    def _deliver_interrupt(self, event: Event) -> None:
        """Detach from the current wait target, then resume with the
        interrupt.

        Without the detach, the original target would later fire and resume
        the process a second time with a stale event.
        """
        if not self.is_alive:
            return  # Terminated between scheduling and delivery.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._target = None
        self._resume(event)

    # ------------------------------------------------------------------
    # Generator stepping
    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of *event*."""
        if not self.is_alive:
            # A stale wakeup (e.g. an interrupt raced with termination).
            return

        self.sim._active_process = self
        try:
            while True:
                if event._ok:
                    result = self.generator.send(event._value)
                else:
                    # The exception is "used" once thrown; mark the event
                    # defused so unhandled failures are still detectable.
                    result = self.generator.throw(
                        typing.cast(BaseException, event._value)
                    )

                if not isinstance(result, Event):
                    error = SimulationError(
                        f"process {self.name!r} yielded a non-event: "
                        f"{result!r}"
                    )
                    self.generator.close()
                    self._target = None
                    self.fail(error)
                    return

                if result.sim is not self.sim:
                    error = SimulationError(
                        f"process {self.name!r} yielded an event from a "
                        "different simulator"
                    )
                    self.generator.close()
                    self._target = None
                    self.fail(error)
                    return

                if result.processed:
                    # Already fired: continue stepping synchronously with
                    # the event's recorded outcome.
                    event = result
                    continue

                self._target = result
                result.add_callback(self._resume)
                return
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
        except BaseException as exc:  # noqa: BLE001 - must surface any error
            self._target = None
            self.fail(exc)
        finally:
            self.sim._active_process = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state} at {id(self):#x}>"
