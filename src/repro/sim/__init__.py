"""Discrete-event simulation kernel.

A from-scratch replacement for the role GloMoSim plays in the paper: a
deterministic event queue, generator-based processes, named random streams,
and structured tracing.  See :class:`repro.sim.engine.Simulator`.
"""

from repro.sim.engine import (
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    TIME_EPSILON,
    Simulator,
    StopSimulation,
    times_equal,
)
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    PENDING,
    SimulationError,
    Timeout,
)
from repro.sim.process import Process
from repro.sim.rng import RandomStream, RandomStreams, derive_seed
from repro.sim.trace import RecordingSink, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "Interrupt",
    "PENDING",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Process",
    "RandomStream",
    "RandomStreams",
    "RecordingSink",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "TIME_EPSILON",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "derive_seed",
    "times_equal",
]
