"""Content-addressed, on-disk store of simulation run results.

Every simulation in this repository is a pure function of its
:class:`~repro.deploy.scenario.ScenarioConfig` (the determinism contract
enforced by ``repro-lint``), so a finished :class:`~repro.metrics.RunReport`
can be cached forever under a digest of the config that produced it.
The store turns re-derived figures, ablations, and benchmark sweeps into
cache lookups: identical configs are simulated once, ever.

Layout, digest scheme, and invalidation rules are documented in
``docs/STORE.md``.
"""

from repro.store.codec import (
    JOB_SCHEMA_VERSION,
    JobRecord,
    JobStatus,
    StoreDecodeError,
    StoreEntry,
    StoreSchemaError,
    decode_entry,
    encode_entry,
    reports_equivalent,
)
from repro.store.keys import (
    STORE_SCHEMA_VERSION,
    canonical_json,
    config_digest,
)
from repro.store.store import (
    ENV_VAR,
    ROOT_ENV_VAR,
    GcReport,
    JobStore,
    RunStore,
    VerifyReport,
    default_root,
)

__all__ = [
    "ENV_VAR",
    "GcReport",
    "JOB_SCHEMA_VERSION",
    "JobRecord",
    "JobStatus",
    "JobStore",
    "ROOT_ENV_VAR",
    "RunStore",
    "STORE_SCHEMA_VERSION",
    "StoreDecodeError",
    "StoreEntry",
    "StoreSchemaError",
    "VerifyReport",
    "canonical_json",
    "config_digest",
    "decode_entry",
    "default_root",
    "encode_entry",
    "reports_equivalent",
]
