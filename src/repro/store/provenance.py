"""Wall-clock and host provenance for store manifests.

The determinism linter's R2 bans wall-clock reads because they must
never influence a *simulation*.  Store manifests, however, exist to
record when and where a run was produced — provenance that lives outside
the simulated world and never feeds back into it.  Every wall-clock read
in the package is concentrated here, each explicitly suppressed, so the
rest of the tree (including the store itself) stays R2-clean by
construction.
"""

from __future__ import annotations

import platform
import sys
import time
import typing

__all__ = ["host_info", "perf_clock", "wall_clock"]


def wall_clock() -> float:
    """Seconds since the Unix epoch (manifest ``created_unix`` field)."""
    return time.time()  # simlint: disable=R2


def perf_clock() -> float:
    """Monotonic counter for measuring run durations (manifests only)."""
    return time.perf_counter()  # simlint: disable=R2


def host_info() -> typing.Dict[str, str]:
    """Where a run was produced: hostname, platform, interpreter."""
    return {
        "hostname": platform.node(),
        "platform": sys.platform,
        "python": platform.python_version(),
    }
