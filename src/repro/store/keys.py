"""Canonical config hashing — the store's content addresses.

A store key is the SHA-256 digest of the *canonical JSON* form of a
:class:`~repro.deploy.scenario.ScenarioConfig` wrapped together with the
store schema version.  Canonical means: sorted keys, compact separators,
and ``float``-typed fields normalised to JSON floats — so the digest
depends only on the config's *values*, never on field ordering, dict
insertion order, or whether a caller wrote ``16_000`` or ``16_000.0``.

Bumping :data:`STORE_SCHEMA_VERSION` changes every digest at once, which
is how the store invalidates itself when the serialised formats (or the
meaning of a cached result) change.
"""

from __future__ import annotations

import hashlib
import json
import typing

from repro.deploy.scenario import ScenarioConfig

__all__ = ["STORE_SCHEMA_VERSION", "canonical_json", "config_digest"]

#: Version of the on-disk entry format *and* of the digest preimage.
#: Bump whenever the serialised config/report schema changes, or when a
#: simulator change alters what a cached result means.
#: 2: fault-injection config fields (robot MTBF, fault scripts,
#: heartbeat/redispatch tuning) and resilience metrics in RunReport.
#: 3: network-fault config fields (jam rate/radius/duration, network
#: fault-script kinds, verification knobs) and the false-dispatch /
#: verification metric family in RunReport.
STORE_SCHEMA_VERSION = 3


def canonical_json(value: typing.Any) -> str:
    """*value* as deterministic JSON: sorted keys, compact separators.

    ``NaN``/``Infinity`` serialise to their (non-standard but stable)
    JSON literals, so reports containing undefined metrics still have a
    canonical form.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def config_digest(
    config: typing.Union[ScenarioConfig, typing.Mapping[str, typing.Any]],
) -> str:
    """SHA-256 hex digest addressing *config* in the store.

    Accepts either a :class:`ScenarioConfig` or its JSON dict form; both
    produce the same digest (the dict is normalised through the config
    class first, so unknown fields raise rather than silently hashing).
    """
    if not isinstance(config, ScenarioConfig):
        config = ScenarioConfig.from_json_dict(dict(config))
    preimage = canonical_json(
        {"schema": STORE_SCHEMA_VERSION, "config": config.to_json_dict()}
    )
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()
