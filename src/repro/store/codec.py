"""Versioned JSON envelope for store entries.

One store entry is a single JSON document holding four payload sections
— ``schema``, ``config``, ``manifest``, ``report`` — plus a ``checksum``
over the canonical form of those sections.  :func:`decode_entry`
re-derives the checksum on every read, so truncation, bit rot, or hand
edits surface as a :class:`StoreDecodeError` (which the store translates
into quarantine-and-recompute) instead of silently corrupt metrics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import typing

from repro.deploy.scenario import ScenarioConfig
from repro.metrics.collector import RunReport
from repro.store import keys
from repro.store.keys import canonical_json, config_digest

__all__ = [
    "JOB_SCHEMA_VERSION",
    "JobRecord",
    "JobStatus",
    "StoreDecodeError",
    "StoreEntry",
    "StoreSchemaError",
    "decode_entry",
    "encode_entry",
    "reports_equivalent",
]

#: The payload sections covered by the checksum, in canonical order.
PAYLOAD_KEYS = ("schema", "config", "manifest", "report")


class StoreDecodeError(ValueError):
    """An entry failed to decode: malformed, tampered, or truncated."""


class StoreSchemaError(StoreDecodeError):
    """An intact entry written under a different schema version."""


@dataclasses.dataclass(frozen=True, slots=True)
class StoreEntry:
    """One decoded store entry."""

    digest: str
    schema: int
    config: ScenarioConfig
    manifest: typing.Dict[str, typing.Any]
    report: RunReport


def _payload_checksum(payload: typing.Mapping[str, typing.Any]) -> str:
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


def encode_entry(
    config: ScenarioConfig,
    report: RunReport,
    manifest: typing.Mapping[str, typing.Any],
) -> str:
    """Serialise one entry to its on-disk JSON document."""
    payload = {
        "schema": keys.STORE_SCHEMA_VERSION,
        "config": config.to_json_dict(),
        "manifest": dict(manifest),
        "report": report.to_json_dict(),
    }
    document = dict(payload)
    document["checksum"] = _payload_checksum(payload)
    return json.dumps(document, sort_keys=True, indent=1)


def decode_entry(
    text: str, expected_digest: typing.Optional[str] = None
) -> StoreEntry:
    """Parse and validate one on-disk entry.

    Raises
    ------
    StoreSchemaError
        For an intact entry of a different schema version (stale, not
        corrupt — ``gc`` removes these).
    StoreDecodeError
        For anything else that fails: invalid JSON, checksum mismatch,
        undecodable config/report, or a config that does not hash to
        *expected_digest*.
    """
    try:
        document = json.loads(text)
    except ValueError as error:
        raise StoreDecodeError(f"invalid JSON: {error}") from error
    if not isinstance(document, dict):
        raise StoreDecodeError("entry is not a JSON object")

    checksum = document.get("checksum")
    payload = {key: document[key] for key in PAYLOAD_KEYS if key in document}
    if len(payload) != len(PAYLOAD_KEYS):
        missing = sorted(set(PAYLOAD_KEYS) - set(payload))
        raise StoreDecodeError(f"missing sections: {', '.join(missing)}")
    if checksum != _payload_checksum(payload):
        raise StoreDecodeError("checksum mismatch")

    schema = payload["schema"]
    if schema != keys.STORE_SCHEMA_VERSION:
        raise StoreSchemaError(
            f"schema {schema!r} != current {keys.STORE_SCHEMA_VERSION}"
        )

    try:
        config = ScenarioConfig.from_json_dict(payload["config"])
        report = RunReport.from_json_dict(payload["report"])
    except (TypeError, ValueError) as error:
        raise StoreDecodeError(f"undecodable payload: {error}") from error

    digest = config_digest(config)
    if expected_digest is not None and digest != expected_digest:
        raise StoreDecodeError(
            f"config hashes to {digest[:12]}…, "
            f"expected {expected_digest[:12]}…"
        )
    manifest = payload["manifest"]
    if not isinstance(manifest, dict):
        raise StoreDecodeError("manifest is not a JSON object")
    return StoreEntry(
        digest=digest,
        schema=schema,
        config=config,
        manifest=manifest,
        report=report,
    )


#: Version of the persisted :class:`JobRecord` format.  Independent of
#: :data:`~repro.store.keys.STORE_SCHEMA_VERSION`: job state is
#: advisory bookkeeping beside a result, never part of a digest
#: preimage.  A record written under a different version is treated as
#: absent (the job is re-derived from the store entry, or re-run).
#: v2 added retry bookkeeping (``attempts``) and the worker lease
#: (``lease_unix``) for the supervised queue (repro.service.resilience).
JOB_SCHEMA_VERSION = 2


class JobStatus:
    """Lifecycle states of one service job (``repro.service``)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    ALL = (QUEUED, RUNNING, DONE, FAILED)
    #: States a job never leaves.
    TERMINAL = (DONE, FAILED)


@dataclasses.dataclass(slots=True)
class JobRecord:
    """Persisted execution state of one submitted scenario.

    Lives beside the store entry it produces (``jobs/<aa>/<digest>.json``
    under the same root, see :class:`~repro.store.store.JobStore`), so
    the service can answer "what happened to this digest" across
    restarts, worker processes, and coalesced submissions.
    """

    digest: str
    status: str = JobStatus.QUEUED
    schema: int = JOB_SCHEMA_VERSION
    #: Wall-clock provenance timestamps (never simulation time).
    submitted_unix: float = 0.0
    started_unix: typing.Optional[float] = None
    finished_unix: typing.Optional[float] = None
    #: Measured execution wall time; ``NaN`` until the run finishes
    #: (and forever for cache hits, which execute nothing).
    duration_s: float = math.nan
    #: Identity of the worker process that executed the run.
    worker: typing.Optional[str] = None
    #: Failure reason when ``status == FAILED``.
    error: typing.Optional[str] = None
    #: How many submissions coalesced into this single execution
    #: (single-flight dedup counts every taker).
    submissions: int = 1
    #: Execution attempts dispatched so far (1 for the first run; the
    #: supervised queue increments it on every automatic retry).
    attempts: int = 1
    #: Last lease renewal written by the executing worker (wall clock).
    #: ``None`` until a worker first touches the record; a stale lease
    #: on a non-terminal record marks the worker as silently dead.
    lease_unix: typing.Optional[float] = None
    #: Who created the job: ``"api"``, ``"cli"``, or ``"store"`` for
    #: records synthesized from a pre-existing store entry.
    source: str = "api"
    description: str = ""

    def __post_init__(self) -> None:
        if self.status not in JobStatus.ALL:
            raise ValueError(f"unknown job status: {self.status!r}")
        if self.submissions < 1:
            raise ValueError(
                f"submissions must be >= 1: {self.submissions}"
            )
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1: {self.attempts}")

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change state."""
        return self.status in JobStatus.TERMINAL

    # ------------------------------------------------------------------
    # Versioned JSON serialization (repro.store)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> typing.Dict[str, typing.Any]:
        """All fields as a JSON-native dict."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    @classmethod
    def from_json_dict(
        cls, data: typing.Mapping[str, typing.Any]
    ) -> "JobRecord":
        """Rebuild a record from :meth:`to_json_dict` output.

        Raises
        ------
        ValueError
            For unknown fields or an unknown ``status`` value (a record
            written by a different schema must not silently round-trip).
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown JobRecord fields: {', '.join(unknown)}"
            )
        return cls(**dict(data))


def reports_equivalent(a: RunReport, b: RunReport) -> bool:
    """Field-for-field equality that treats ``NaN`` as equal to itself.

    Plain dataclass ``==`` is false for any report with an undefined
    metric (``NaN != NaN``); comparing canonical JSON forms sidesteps
    that while still checking every field.
    """
    return canonical_json(a.to_json_dict()) == canonical_json(
        b.to_json_dict()
    )
