"""The on-disk run-result store.

Directory layout (see ``docs/STORE.md``)::

    <root>/
      objects/<aa>/<digest>.json   # aa = first two hex chars (shard)
      quarantine/                  # entries that failed validation

Writes are atomic: the entry is serialised to a temporary file in the
destination shard and ``os.replace``-d into place, so a killed sweep
never leaves a half-written object — at worst a ``*.tmp.*`` leftover
that ``gc`` sweeps up.  Reads re-validate the per-entry checksum; a
corrupt entry is moved to ``quarantine/`` and treated as a cache miss,
so the run is simply recomputed.
"""

from __future__ import annotations

import dataclasses
import math
import os
import typing

import repro
from repro.deploy.scenario import ScenarioConfig
from repro.metrics.collector import RunReport
from repro.store import provenance
from repro.store.codec import (
    StoreDecodeError,
    StoreEntry,
    StoreSchemaError,
    decode_entry,
    encode_entry,
)
from repro.store import keys
from repro.store.keys import config_digest

__all__ = ["ENV_VAR", "GcReport", "RunStore", "VerifyReport", "default_root"]

#: Environment variable overriding the default store location.
ENV_VAR = "REPRO_STORE"

_OBJECTS_DIR = "objects"
_QUARANTINE_DIR = "quarantine"
_TMP_MARKER = ".tmp."


def default_root() -> str:
    """``$REPRO_STORE`` when set, else ``~/.cache/repro-sim``."""
    configured = os.environ.get(ENV_VAR)
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-sim")


@dataclasses.dataclass(frozen=True, slots=True)
class VerifyReport:
    """Outcome of a full-store validation pass (read-only)."""

    checked: int
    ok: int
    #: Intact entries written under a different schema version.
    stale: typing.Tuple[str, ...]
    #: ``(path, reason)`` for every entry that failed to decode.
    corrupt: typing.Tuple[typing.Tuple[str, str], ...]

    @property
    def passed(self) -> bool:
        """True when nothing is corrupt (stale entries are tolerated)."""
        return not self.corrupt


@dataclasses.dataclass(frozen=True, slots=True)
class GcReport:
    """Outcome of a garbage-collection pass."""

    removed_stale: int
    removed_tmp: int
    quarantined: int
    kept: int


class RunStore:
    """Content-addressed store of finished simulation runs.

    Parameters
    ----------
    root:
        Store directory.  ``None`` resolves via :func:`default_root`
        (the ``REPRO_STORE`` environment variable, then the user cache
        directory).  Created lazily on first write.
    """

    def __init__(
        self, root: typing.Optional[typing.Union[str, os.PathLike]] = None
    ) -> None:
        self.root = os.path.abspath(
            os.fspath(root) if root is not None else default_root()
        )
        #: ``(path, reason)`` of entries quarantined by this instance.
        self.quarantined: typing.List[typing.Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def object_path(self, digest: str) -> str:
        """On-disk path of the entry addressed by *digest*."""
        return os.path.join(
            self.root, _OBJECTS_DIR, digest[:2], f"{digest}.json"
        )

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.root, _QUARANTINE_DIR)

    def _object_files(self) -> typing.Iterator[str]:
        objects = os.path.join(self.root, _OBJECTS_DIR)
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_path = os.path.join(objects, shard)
            if not os.path.isdir(shard_path):
                continue
            for name in sorted(os.listdir(shard_path)):
                yield os.path.join(shard_path, name)

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, config: ScenarioConfig) -> typing.Optional[RunReport]:
        """The cached report for *config*, or ``None`` on a miss.

        A corrupt entry (truncated file, checksum mismatch, digest that
        no longer matches its embedded config) is quarantined and
        reported as a miss — callers recompute instead of crashing.
        """
        entry = self.load(config_digest(config))
        return entry.report if entry is not None else None

    def load(self, digest: str) -> typing.Optional[StoreEntry]:
        """Load and validate the entry addressed by *digest*, if any."""
        path = self.object_path(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        try:
            return decode_entry(text, expected_digest=digest)
        except StoreDecodeError as error:
            self._quarantine(path, str(error))
            return None

    def put(
        self,
        config: ScenarioConfig,
        report: RunReport,
        duration_s: float = math.nan,
    ) -> str:
        """Persist one finished run; returns its digest.

        *duration_s* is the measured wall-clock duration of the run —
        provenance only, it never affects the digest or the report.
        """
        digest = config_digest(config)
        manifest = {
            "config_digest": digest,
            "schema": keys.STORE_SCHEMA_VERSION,
            "package_version": repro.__version__,
            "created_unix": provenance.wall_clock(),
            "duration_s": duration_s,
            "host": provenance.host_info(),
            "description": config.describe(),
        }
        text = encode_entry(config, report, manifest)
        path = self.object_path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp_path = f"{path}{_TMP_MARKER}{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
        return digest

    # ------------------------------------------------------------------
    # Inspection & maintenance
    # ------------------------------------------------------------------
    def digests(self) -> typing.List[str]:
        """All digests with an object file, sorted."""
        found = []
        for path in self._object_files():
            name = os.path.basename(path)
            if name.endswith(".json") and _TMP_MARKER not in name:
                found.append(name[: -len(".json")])
        return found

    def entries(self) -> typing.Iterator[StoreEntry]:
        """Iterate every *valid* entry (corrupt ones are quarantined)."""
        for digest in self.digests():
            entry = self.load(digest)
            if entry is not None:
                yield entry

    def resolve_prefix(self, prefix: str) -> typing.List[str]:
        """Digests starting with *prefix* (for CLI lookups)."""
        return [d for d in self.digests() if d.startswith(prefix)]

    def verify(self) -> VerifyReport:
        """Validate every entry without modifying the store."""
        checked = ok = 0
        stale: typing.List[str] = []
        corrupt: typing.List[typing.Tuple[str, str]] = []
        for path in self._object_files():
            name = os.path.basename(path)
            if _TMP_MARKER in name:
                continue
            checked += 1
            expected = name[: -len(".json")] if name.endswith(".json") else None
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    decode_entry(handle.read(), expected_digest=expected)
                ok += 1
            except StoreSchemaError:
                stale.append(path)
            except (OSError, StoreDecodeError) as error:
                corrupt.append((path, str(error)))
        return VerifyReport(
            checked=checked,
            ok=ok,
            stale=tuple(stale),
            corrupt=tuple(corrupt),
        )

    def gc(self) -> GcReport:
        """Remove temp leftovers and stale-schema entries.

        Corrupt entries are quarantined (kept for inspection) rather
        than deleted; intact entries under the current schema are kept.
        """
        removed_stale = removed_tmp = quarantined = kept = 0
        for path in list(self._object_files()):
            name = os.path.basename(path)
            if _TMP_MARKER in name:
                _remove_quietly(path)
                removed_tmp += 1
                continue
            expected = name[: -len(".json")] if name.endswith(".json") else None
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    decode_entry(handle.read(), expected_digest=expected)
                kept += 1
            except StoreSchemaError:
                _remove_quietly(path)
                removed_stale += 1
            except (OSError, StoreDecodeError) as error:
                self._quarantine(path, str(error))
                quarantined += 1
        return GcReport(
            removed_stale=removed_stale,
            removed_tmp=removed_tmp,
            quarantined=quarantined,
            kept=kept,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _quarantine(self, path: str, reason: str) -> None:
        os.makedirs(self.quarantine_dir, exist_ok=True)
        base = os.path.basename(path)
        target = os.path.join(self.quarantine_dir, base)
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(self.quarantine_dir, f"{base}.{suffix}")
        try:
            os.replace(path, target)
        except OSError:
            return  # lost a race with another process; nothing to move
        self.quarantined.append((target, reason))


def _remove_quietly(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass
