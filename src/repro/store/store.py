"""The on-disk run-result store.

Directory layout (see ``docs/STORE.md``)::

    <root>/
      objects/<aa>/<digest>.json   # aa = first two hex chars (shard)
      quarantine/                  # entries that failed validation

Writes are atomic: the entry is serialised to a temporary file in the
destination shard and ``os.replace``-d into place, so a killed sweep
never leaves a half-written object — at worst a ``*.tmp.*`` leftover
that ``gc`` sweeps up.  Reads re-validate the per-entry checksum; a
corrupt entry is moved to ``quarantine/`` and treated as a cache miss,
so the run is simply recomputed.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import tempfile
import typing

import repro
from repro.deploy.scenario import ScenarioConfig
from repro.metrics.collector import RunReport
from repro.store import codec as job_codec
from repro.store import provenance
from repro.store.codec import (
    JobRecord,
    JobStatus,
    StoreDecodeError,
    StoreEntry,
    StoreSchemaError,
    decode_entry,
    encode_entry,
)
from repro.store import keys
from repro.store.keys import config_digest

__all__ = [
    "ENV_VAR",
    "ROOT_ENV_VAR",
    "GcReport",
    "JobStore",
    "RunStore",
    "VerifyReport",
    "default_root",
]

#: Environment variable overriding the default store location (legacy
#: name; also what opts CLI caching in).
ENV_VAR = "REPRO_STORE"

#: Preferred environment variable naming a *shared* store root — the
#: service, CI, and developers all point here without plumbing
#: ``--store`` everywhere.  Takes precedence over :data:`ENV_VAR`; see
#: ``docs/STORE.md`` for the full resolution order.
ROOT_ENV_VAR = "REPRO_STORE_ROOT"

_OBJECTS_DIR = "objects"
_QUARANTINE_DIR = "quarantine"
_JOBS_DIR = "jobs"
_TMP_MARKER = ".tmp."


def default_root() -> str:
    """``$REPRO_STORE_ROOT``, else ``$REPRO_STORE``, else the user cache.

    Precedence (documented in ``docs/STORE.md``): an explicit path
    passed to :class:`RunStore` always wins; then ``REPRO_STORE_ROOT``
    (the shared-store pointer); then the legacy ``REPRO_STORE``; then
    ``~/.cache/repro-sim``.
    """
    for variable in (ROOT_ENV_VAR, ENV_VAR):
        configured = os.environ.get(variable)
        if configured:
            return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-sim")


def _write_text_atomic(path: str, text: str) -> None:
    """Write *text* to *path* via a uniquely-named temp file + rename.

    The temp file comes from :func:`tempfile.mkstemp` in the
    destination directory, so concurrent writers of the *same* path —
    two worker processes finishing the same digest, or two service
    threads persisting one job record — can never interleave into one
    temp file; the last ``os.replace`` wins atomically and every
    intermediate state on disk is a complete document.
    """
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    handle_fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=f"{os.path.basename(path)}{_TMP_MARKER}"
    )
    try:
        with os.fdopen(handle_fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        _remove_quietly(tmp_path)
        raise


@dataclasses.dataclass(frozen=True, slots=True)
class VerifyReport:
    """Outcome of a full-store validation pass (read-only)."""

    checked: int
    ok: int
    #: Intact entries written under a different schema version.
    stale: typing.Tuple[str, ...]
    #: ``(path, reason)`` for every entry that failed to decode.
    corrupt: typing.Tuple[typing.Tuple[str, str], ...]

    @property
    def passed(self) -> bool:
        """True when nothing is corrupt (stale entries are tolerated)."""
        return not self.corrupt


@dataclasses.dataclass(frozen=True, slots=True)
class GcReport:
    """Outcome of a garbage-collection pass."""

    removed_stale: int
    removed_tmp: int
    quarantined: int
    kept: int
    #: Intact current-schema entries evicted (oldest first) to respect
    #: the ``max_bytes`` / ``max_entries`` caps.
    evicted: int = 0
    #: Job records dropped because their result entry is gone.
    removed_jobs: int = 0
    #: Bytes of object files surviving the pass.
    kept_bytes: int = 0


class RunStore:
    """Content-addressed store of finished simulation runs.

    Parameters
    ----------
    root:
        Store directory.  ``None`` resolves via :func:`default_root`
        (the ``REPRO_STORE`` environment variable, then the user cache
        directory).  Created lazily on first write.
    """

    def __init__(
        self, root: typing.Optional[typing.Union[str, os.PathLike]] = None
    ) -> None:
        self.root = os.path.abspath(
            os.fspath(root) if root is not None else default_root()
        )
        #: ``(path, reason)`` of entries quarantined by this instance.
        self.quarantined: typing.List[typing.Tuple[str, str]] = []

    @staticmethod
    def default_root() -> str:
        """Resolution of the implicit store root; see :func:`default_root`.

        ``REPRO_STORE_ROOT`` → ``REPRO_STORE`` → ``~/.cache/repro-sim``.
        """
        return default_root()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def object_path(self, digest: str) -> str:
        """On-disk path of the entry addressed by *digest*."""
        return os.path.join(
            self.root, _OBJECTS_DIR, digest[:2], f"{digest}.json"
        )

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.root, _QUARANTINE_DIR)

    def _object_files(self) -> typing.Iterator[str]:
        objects = os.path.join(self.root, _OBJECTS_DIR)
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_path = os.path.join(objects, shard)
            if not os.path.isdir(shard_path):
                continue
            for name in sorted(os.listdir(shard_path)):
                yield os.path.join(shard_path, name)

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, config: ScenarioConfig) -> typing.Optional[RunReport]:
        """The cached report for *config*, or ``None`` on a miss.

        A corrupt entry (truncated file, checksum mismatch, digest that
        no longer matches its embedded config) is quarantined and
        reported as a miss — callers recompute instead of crashing.
        """
        entry = self.load(config_digest(config))
        return entry.report if entry is not None else None

    def load(self, digest: str) -> typing.Optional[StoreEntry]:
        """Load and validate the entry addressed by *digest*, if any."""
        path = self.object_path(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        try:
            return decode_entry(text, expected_digest=digest)
        except StoreDecodeError as error:
            self._quarantine(path, str(error))
            return None

    def put(
        self,
        config: ScenarioConfig,
        report: RunReport,
        duration_s: float = math.nan,
    ) -> str:
        """Persist one finished run; returns its digest.

        *duration_s* is the measured wall-clock duration of the run —
        provenance only, it never affects the digest or the report.
        """
        digest = config_digest(config)
        manifest = {
            "config_digest": digest,
            "schema": keys.STORE_SCHEMA_VERSION,
            "package_version": repro.__version__,
            "created_unix": provenance.wall_clock(),
            "duration_s": duration_s,
            "host": provenance.host_info(),
            "description": config.describe(),
        }
        text = encode_entry(config, report, manifest)
        _write_text_atomic(self.object_path(digest), text)
        return digest

    # ------------------------------------------------------------------
    # Inspection & maintenance
    # ------------------------------------------------------------------
    def digests(self) -> typing.List[str]:
        """All digests with an object file, sorted."""
        found = []
        for path in self._object_files():
            name = os.path.basename(path)
            if name.endswith(".json") and _TMP_MARKER not in name:
                found.append(name[: -len(".json")])
        return found

    def entries(self) -> typing.Iterator[StoreEntry]:
        """Iterate every *valid* entry (corrupt ones are quarantined)."""
        for digest in self.digests():
            entry = self.load(digest)
            if entry is not None:
                yield entry

    def resolve_prefix(self, prefix: str) -> typing.List[str]:
        """Digests starting with *prefix* (for CLI lookups)."""
        return [d for d in self.digests() if d.startswith(prefix)]

    def verify(self) -> VerifyReport:
        """Validate every entry without modifying the store."""
        checked = ok = 0
        stale: typing.List[str] = []
        corrupt: typing.List[typing.Tuple[str, str]] = []
        for path in self._object_files():
            name = os.path.basename(path)
            if _TMP_MARKER in name:
                continue
            checked += 1
            expected = name[: -len(".json")] if name.endswith(".json") else None
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    decode_entry(handle.read(), expected_digest=expected)
                ok += 1
            except StoreSchemaError:
                stale.append(path)
            except (OSError, StoreDecodeError) as error:
                corrupt.append((path, str(error)))
        return VerifyReport(
            checked=checked,
            ok=ok,
            stale=tuple(stale),
            corrupt=tuple(corrupt),
        )

    def size_stats(self) -> typing.Tuple[int, int]:
        """``(entries, total_bytes)`` of the object files on disk.

        A pure directory walk — nothing is decoded or validated, so it
        is cheap enough for a service stats endpoint to call per
        request.
        """
        entries = 0
        total_bytes = 0
        for path in self._object_files():
            name = os.path.basename(path)
            if not name.endswith(".json") or _TMP_MARKER in name:
                continue
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                continue
            entries += 1
        return entries, total_bytes

    def gc(
        self,
        max_bytes: typing.Optional[int] = None,
        max_entries: typing.Optional[int] = None,
    ) -> GcReport:
        """Remove temp leftovers, stale entries, and (optionally) evict.

        Corrupt entries are quarantined (kept for inspection) rather
        than deleted; intact entries under the current schema are kept —
        unless ``max_bytes`` / ``max_entries`` caps are given, in which
        case the **oldest** surviving entries (by their manifest
        ``created_unix``, digest as tiebreak) are evicted until both
        caps hold.  Job records whose result entry is gone (evicted,
        stale, or quarantined) are dropped too, except records of jobs
        still queued, running, or failed.
        """
        removed_stale = removed_tmp = quarantined = 0
        #: ``(created_unix, digest, path, bytes)`` of survivors.
        survivors: typing.List[
            typing.Tuple[float, str, str, int]
        ] = []
        for path in list(self._object_files()):
            name = os.path.basename(path)
            if _TMP_MARKER in name:
                _remove_quietly(path)
                removed_tmp += 1
                continue
            expected = name[: -len(".json")] if name.endswith(".json") else None
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
                entry = decode_entry(text, expected_digest=expected)
            except StoreSchemaError:
                _remove_quietly(path)
                removed_stale += 1
            except (OSError, StoreDecodeError) as error:
                self._quarantine(path, str(error))
                quarantined += 1
            else:
                created = entry.manifest.get("created_unix")
                if not isinstance(created, (int, float)) or math.isnan(
                    float(created)
                ):
                    created = 0.0
                survivors.append(
                    (float(created), entry.digest, path, len(text))
                )

        survivors.sort()  # oldest first, digest as the tiebreak
        kept_bytes = sum(size for _, _, _, size in survivors)
        evicted = 0
        while survivors and (
            (max_entries is not None and len(survivors) > max_entries)
            or (max_bytes is not None and kept_bytes > max_bytes)
        ):
            _, digest, path, size = survivors.pop(0)
            _remove_quietly(path)
            _remove_quietly(_job_path(self.root, digest))
            kept_bytes -= size
            evicted += 1

        removed_jobs = self._gc_job_records(
            {digest for _, digest, _, _ in survivors}
        )
        return GcReport(
            removed_stale=removed_stale,
            removed_tmp=removed_tmp,
            quarantined=quarantined,
            kept=len(survivors),
            evicted=evicted,
            removed_jobs=removed_jobs,
            kept_bytes=kept_bytes,
        )

    def _gc_job_records(self, live_digests: typing.Set[str]) -> int:
        """Drop job records whose result entry no longer exists.

        Records of jobs that have not produced a result *by design* —
        still queued, running, or failed — are preserved; only ``done``
        records orphaned by eviction/stale-removal (plus unreadable
        ones) go.
        """
        jobs = JobStore(self.root)
        removed = 0
        for digest in jobs.digests():
            if digest in live_digests:
                continue
            record = jobs.load(digest)
            if record is None or record.status == JobStatus.DONE:
                _remove_quietly(jobs.path(digest))
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _quarantine(self, path: str, reason: str) -> None:
        os.makedirs(self.quarantine_dir, exist_ok=True)
        base = os.path.basename(path)
        target = os.path.join(self.quarantine_dir, base)
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(self.quarantine_dir, f"{base}.{suffix}")
        try:
            os.replace(path, target)
        except OSError:
            return  # lost a race with another process; nothing to move
        self.quarantined.append((target, reason))


def _job_path(root: str, digest: str) -> str:
    """On-disk path of the job record for *digest* under *root*."""
    return os.path.join(root, _JOBS_DIR, digest[:2], f"{digest}.json")


class JobStore:
    """Persisted :class:`~repro.store.codec.JobRecord`s beside the objects.

    Shares the :class:`RunStore` root (``jobs/<aa>/<digest>.json``
    shards mirroring ``objects/``), so the job state of a digest always
    travels with its result.  Records are advisory bookkeeping: a
    missing, unreadable, or differently-versioned record reads as
    ``None`` and the caller re-derives state from the store entry (or
    re-runs the job) — job records are never load-bearing for results.
    """

    def __init__(
        self, root: typing.Optional[typing.Union[str, os.PathLike]] = None
    ) -> None:
        self.root = os.path.abspath(
            os.fspath(root) if root is not None else default_root()
        )

    def path(self, digest: str) -> str:
        """On-disk path of the record addressed by *digest*."""
        return _job_path(self.root, digest)

    def load(self, digest: str) -> typing.Optional[JobRecord]:
        """The record for *digest*, or ``None``.

        ``None`` covers missing files, unparseable JSON, unknown
        fields/statuses, and records written under a different
        :data:`~repro.store.codec.JOB_SCHEMA_VERSION` — all read as
        "no job state" rather than an error.
        """
        try:
            with open(self.path(digest), "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        try:
            record = JobRecord.from_json_dict(data)
        except (TypeError, ValueError):
            return None
        if record.schema != job_codec.JOB_SCHEMA_VERSION:
            return None
        return record

    def save(self, record: JobRecord) -> str:
        """Atomically persist *record*; returns its path."""
        path = self.path(record.digest)
        _write_text_atomic(
            path,
            json.dumps(record.to_json_dict(), sort_keys=True, indent=1)
            + "\n",
        )
        return path

    def digests(self) -> typing.List[str]:
        """All digests with a job-record file, sorted."""
        jobs_dir = os.path.join(self.root, _JOBS_DIR)
        if not os.path.isdir(jobs_dir):
            return []
        found = []
        for shard in sorted(os.listdir(jobs_dir)):
            shard_path = os.path.join(jobs_dir, shard)
            if not os.path.isdir(shard_path):
                continue
            for name in sorted(os.listdir(shard_path)):
                if name.endswith(".json") and _TMP_MARKER not in name:
                    found.append(name[: -len(".json")])
        return found

    def records(self) -> typing.List[JobRecord]:
        """Every readable record, sorted by digest."""
        loaded = (self.load(digest) for digest in self.digests())
        return [record for record in loaded if record is not None]


def _remove_quietly(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass
