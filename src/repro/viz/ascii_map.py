"""ASCII rendering of a deployment field.

Terminal-friendly snapshots: sensors as dots, robots as ``R``, the
central manager as ``M``, recently failed positions as ``x``.  Used by
the examples and handy in a REPL when debugging a scenario.
"""

from __future__ import annotations

import typing

from repro.geometry.point import Point
from repro.geometry.polygon import Rect

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import ScenarioRuntime

__all__ = ["AsciiMap", "render_runtime"]


class AsciiMap:
    """A character canvas mapped onto a rectangular field."""

    def __init__(
        self,
        bounds: Rect,
        columns: int = 60,
        rows: int = 24,
    ) -> None:
        if columns < 1 or rows < 1:
            raise ValueError(
                f"canvas must be at least 1x1: {columns}x{rows}"
            )
        self.bounds = bounds
        self.columns = columns
        self.rows = rows
        self._grid = [[" "] * columns for _ in range(rows)]

    def plot(
        self, position: Point, glyph: str, overwrite: bool = True
    ) -> None:
        """Place *glyph* at the canvas cell containing *position*.

        With ``overwrite=False`` the glyph only lands on empty cells —
        used for background layers like the sensor dots.
        """
        if len(glyph) != 1:
            raise ValueError(f"glyph must be one character: {glyph!r}")
        clamped = self.bounds.clamp(position)
        col = min(
            int(
                (clamped.x - self.bounds.x_min)
                / self.bounds.width
                * self.columns
            ),
            self.columns - 1,
        )
        row = min(
            int(
                (clamped.y - self.bounds.y_min)
                / self.bounds.height
                * self.rows
            ),
            self.rows - 1,
        )
        # Row 0 of the grid is the *top* of the field (max y).
        target = self._grid[self.rows - 1 - row]
        if overwrite or target[col] == " ":
            target[col] = glyph

    def render(self) -> str:
        """The canvas with a box border."""
        border = "+" + "-" * self.columns + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in self._grid)
        return f"{border}\n{body}\n{border}"


def render_runtime(
    runtime: "ScenarioRuntime",
    columns: int = 60,
    rows: int = 24,
    failed_positions: typing.Iterable[Point] = (),
) -> str:
    """Snapshot a scenario: sensors ``.``, robots ``R``, manager ``M``,
    failure sites ``x``."""
    canvas = AsciiMap(runtime.config.bounds, columns=columns, rows=rows)
    for sensor in runtime.sensors_sorted():
        canvas.plot(sensor.position, ".", overwrite=False)
    for position in failed_positions:
        canvas.plot(position, "x")
    for robot in runtime.robots_sorted():
        canvas.plot(robot.position, "R")
    if runtime.manager is not None:
        canvas.plot(runtime.manager.position, "M")
    return canvas.render()
