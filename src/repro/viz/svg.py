"""Minimal from-scratch SVG writer and field renderer.

No plotting dependency: :class:`SvgCanvas` builds an SVG document from
primitives, and :func:`render_field_svg` draws a scenario snapshot —
sensors, robots, the manager, the robots' Voronoi cells, and optional
robot trails collected from ``"move"`` trace records.
"""

from __future__ import annotations

import typing
from xml.sax.saxutils import escape, quoteattr

from repro.geometry.point import Point
from repro.geometry.polygon import Rect
from repro.geometry.voronoi import voronoi_cells

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import ScenarioRuntime
    from repro.sim.trace import TraceRecord

__all__ = ["SvgCanvas", "render_field_svg", "trails_from_trace"]


class SvgCanvas:
    """Accumulates SVG elements over a field-coordinate viewport.

    Field coordinates (metres, y up) are mapped to SVG coordinates
    (pixels, y down) automatically.
    """

    def __init__(
        self, bounds: Rect, width_px: int = 640, margin_px: int = 20
    ) -> None:
        self.bounds = bounds
        self.margin = margin_px
        self.scale = (width_px - 2 * margin_px) / bounds.width
        self.width_px = width_px
        self.height_px = (
            int(bounds.height * self.scale) + 2 * margin_px
        )
        self._elements: typing.List[str] = []

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    def _map(self, point: Point) -> typing.Tuple[float, float]:
        x = self.margin + (point.x - self.bounds.x_min) * self.scale
        y = (
            self.height_px
            - self.margin
            - (point.y - self.bounds.y_min) * self.scale
        )
        return (round(x, 2), round(y, 2))

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def circle(
        self,
        center: Point,
        radius_px: float,
        fill: str,
        stroke: str = "none",
        opacity: float = 1.0,
        title: typing.Optional[str] = None,
    ) -> None:
        x, y = self._map(center)
        body = (
            f'<circle cx="{x}" cy="{y}" r="{radius_px}" '
            f"fill={quoteattr(fill)} stroke={quoteattr(stroke)} "
            f'opacity="{opacity}"'
        )
        if title:
            self._elements.append(
                f"{body}><title>{escape(title)}</title></circle>"
            )
        else:
            self._elements.append(f"{body}/>")

    def polyline(
        self,
        points: typing.Sequence[Point],
        stroke: str,
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        if len(points) < 2:
            return
        coords = " ".join(
            f"{x},{y}" for x, y in (self._map(p) for p in points)
        )
        self._elements.append(
            f'<polyline points="{coords}" fill="none" '
            f"stroke={quoteattr(stroke)} "
            f'stroke-width="{stroke_width}" opacity="{opacity}"/>'
        )

    def polygon(
        self,
        points: typing.Sequence[Point],
        fill: str = "none",
        stroke: str = "#888888",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        if len(points) < 3:
            return
        coords = " ".join(
            f"{x},{y}" for x, y in (self._map(p) for p in points)
        )
        self._elements.append(
            f'<polygon points="{coords}" fill={quoteattr(fill)} '
            f"stroke={quoteattr(stroke)} "
            f'stroke-width="{stroke_width}" opacity="{opacity}"/>'
        )

    def text(
        self,
        anchor: Point,
        content: str,
        size_px: int = 12,
        fill: str = "#222222",
    ) -> None:
        x, y = self._map(anchor)
        self._elements.append(
            f'<text x="{x}" y="{y}" font-size="{size_px}" '
            f"fill={quoteattr(fill)} "
            f'font-family="monospace">{escape(content)}</text>'
        )

    def to_svg(self) -> str:
        """The complete SVG document."""
        header = (
            '<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width_px}" height="{self.height_px}" '
            f'viewBox="0 0 {self.width_px} {self.height_px}">'
        )
        background = (
            f'<rect width="{self.width_px}" height="{self.height_px}" '
            'fill="#fcfcfa"/>'
        )
        field_corners = [
            Point(self.bounds.x_min, self.bounds.y_min),
            Point(self.bounds.x_max, self.bounds.y_min),
            Point(self.bounds.x_max, self.bounds.y_max),
            Point(self.bounds.x_min, self.bounds.y_max),
        ]
        coords = " ".join(
            f"{x},{y}" for x, y in (self._map(p) for p in field_corners)
        )
        frame = (
            f'<polygon points="{coords}" fill="none" stroke="#444444" '
            'stroke-width="1.5"/>'
        )
        return "\n".join(
            [header, background, frame, *self._elements, "</svg>"]
        )


def trails_from_trace(
    records: typing.Iterable["TraceRecord"],
) -> typing.Dict[str, typing.List[Point]]:
    """Group ``"move"`` trace records into per-robot position trails."""
    trails: typing.Dict[str, typing.List[Point]] = {}
    for record in records:
        if record.category != "move":
            continue
        trails.setdefault(record["node"], []).append(record["position"])
    return trails


def render_field_svg(
    runtime: "ScenarioRuntime",
    trails: typing.Optional[typing.Mapping[str, typing.Sequence[Point]]] = None,
    show_voronoi: bool = True,
    width_px: int = 640,
) -> str:
    """An SVG snapshot of a scenario's current state.

    Sensors are grey dots, robots orange, the manager purple; robot
    Voronoi cells (the dynamic algorithm's implicit partition) are drawn
    as light outlines, and *trails* (from :func:`trails_from_trace`) as
    coloured paths.
    """
    canvas = SvgCanvas(runtime.config.bounds, width_px=width_px)

    if show_voronoi and runtime.robots:
        robots = runtime.robots_sorted()
        cells = voronoi_cells(
            [robot.position for robot in robots],
            runtime.config.bounds,
        )
        for cell in cells:
            canvas.polygon(
                cell.vertices, stroke="#9db4d0", stroke_width=0.8,
                opacity=0.9,
            )

    for sensor in runtime.sensors_sorted():
        canvas.circle(
            sensor.position, 1.6, fill="#7a7a7a", opacity=0.8,
            title=sensor.node_id,
        )

    palette = ("#d1495b", "#26734d", "#1c6dd0", "#b07c12")
    for index, (robot_id, trail) in enumerate(sorted((trails or {}).items())):
        canvas.polyline(
            list(trail),
            stroke=palette[index % len(palette)],
            stroke_width=1.2,
            opacity=0.7,
        )

    for robot in runtime.robots_sorted():
        canvas.circle(
            robot.position, 5.0, fill="#e28413", stroke="#7a4a00",
            title=robot.node_id,
        )
    if runtime.manager is not None:
        canvas.circle(
            runtime.manager.position, 6.0, fill="#7d3bbd",
            stroke="#3d1d5e", title=runtime.manager.node_id,
        )

    canvas.text(
        Point(
            runtime.config.bounds.x_min + 4.0,
            runtime.config.bounds.y_min + 4.0,
        ),
        f"t={runtime.sim.now:.0f}s  {runtime.config.algorithm}  "
        f"{len(runtime.sensors)} sensors / {len(runtime.robots)} robots",
    )
    return canvas.to_svg()
