"""Dependency-free SVG line charts for the regenerated figures.

Renders a :class:`~repro.experiments.FigureResult` (or any x → series
mapping) as an SVG line chart in the style of the paper's matplotlib
figures: x axis = number of maintenance robots, one marked line per
series, a legend, and a y axis starting at zero like the originals.
"""

from __future__ import annotations

import typing
from xml.sax.saxutils import escape

__all__ = ["line_chart_svg", "figure_to_svg"]

_PALETTE = ("#1c6dd0", "#d1495b", "#26734d", "#b07c12", "#7d3bbd")
_MARKERS = ("circle", "square", "diamond", "triangle", "cross")


def line_chart_svg(
    x_values: typing.Sequence[float],
    series: typing.Mapping[str, typing.Sequence[float]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 560,
    height: int = 420,
) -> str:
    """An SVG line chart of *series* over *x_values*.

    The y axis spans from zero to a little above the data maximum,
    matching the paper's presentation.
    """
    if not x_values:
        raise ValueError("chart needs at least one x value")
    if not series:
        raise ValueError("chart needs at least one series")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_values)} x positions"
            )

    margin_left, margin_right = 62, 16
    margin_top, margin_bottom = 34, 48
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    x_min, x_max = min(x_values), max(x_values)
    x_span = (x_max - x_min) or 1.0
    y_max = max(
        (v for values in series.values() for v in values if v == v),
        default=1.0,
    )
    y_max = y_max * 1.1 or 1.0

    def sx(x: float) -> float:
        return margin_left + (x - x_min) / x_span * plot_w

    def sy(y: float) -> float:
        return margin_top + plot_h - (y / y_max) * plot_h

    parts: typing.List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="Helvetica, Arial, sans-serif">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
    ]

    # Gridlines + y tick labels.
    ticks = 5
    for tick in range(ticks + 1):
        y_value = y_max * tick / ticks
        y_px = sy(y_value)
        parts.append(
            f'<line x1="{margin_left}" y1="{y_px:.1f}" '
            f'x2="{margin_left + plot_w}" y2="{y_px:.1f}" '
            'stroke="#e3e3e3" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_left - 8}" y="{y_px + 4:.1f}" '
            'font-size="11" text-anchor="end" fill="#444">'
            f"{y_value:.0f}</text>"
        )

    # X ticks at the data points.
    for x in x_values:
        x_px = sx(x)
        parts.append(
            f'<line x1="{x_px:.1f}" y1="{margin_top + plot_h}" '
            f'x2="{x_px:.1f}" y2="{margin_top + plot_h + 5}" '
            'stroke="#444" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x_px:.1f}" y="{margin_top + plot_h + 18}" '
            'font-size="11" text-anchor="middle" fill="#444">'
            f"{x:g}</text>"
        )

    # Axes.
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top}" '
        f'x2="{margin_left}" y2="{margin_top + plot_h}" '
        'stroke="#222" stroke-width="1.5"/>'
    )
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" '
        'stroke="#222" stroke-width="1.5"/>'
    )

    # Series lines, markers, legend.
    legend_y = margin_top + 6
    for index, (name, values) in enumerate(series.items()):
        color = _PALETTE[index % len(_PALETTE)]
        points = [
            (sx(x), sy(v))
            for x, v in zip(x_values, values)
            if v == v  # skip NaN
        ]
        if len(points) >= 2:
            coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
            parts.append(
                f'<polyline points="{coords}" fill="none" '
                f'stroke="{color}" stroke-width="2"/>'
            )
        for x_px, y_px in points:
            parts.append(_marker(index, x_px, y_px, color))
        # Legend row (top-left inside the plot).
        lx = margin_left + 12
        ly = legend_y + index * 16
        parts.append(
            f'<line x1="{lx}" y1="{ly}" x2="{lx + 22}" y2="{ly}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(_marker(index, lx + 11, ly, color))
        parts.append(
            f'<text x="{lx + 28}" y="{ly + 4}" font-size="11" '
            f'fill="#222">{escape(name)}</text>'
        )

    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="18" font-size="13" '
            f'text-anchor="middle" fill="#111">{escape(title)}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{margin_left + plot_w / 2:.0f}" '
            f'y="{height - 10}" font-size="12" text-anchor="middle" '
            f'fill="#222">{escape(x_label)}</text>'
        )
    if y_label:
        cx, cy = 16, margin_top + plot_h / 2
        parts.append(
            f'<text x="{cx}" y="{cy:.0f}" font-size="12" '
            f'text-anchor="middle" fill="#222" '
            f'transform="rotate(-90 {cx} {cy:.0f})">'
            f"{escape(y_label)}</text>"
        )

    parts.append("</svg>")
    return "\n".join(parts)


def _marker(index: int, x: float, y: float, color: str) -> str:
    kind = _MARKERS[index % len(_MARKERS)]
    if kind == "circle":
        return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" fill="{color}"/>'
    if kind == "square":
        return (
            f'<rect x="{x - 3:.1f}" y="{y - 3:.1f}" width="6" height="6" '
            f'fill="{color}"/>'
        )
    if kind == "diamond":
        return (
            f'<rect x="{x - 3:.1f}" y="{y - 3:.1f}" width="6" height="6" '
            f'fill="{color}" transform="rotate(45 {x:.1f} {y:.1f})"/>'
        )
    if kind == "triangle":
        return (
            f'<polygon points="{x:.1f},{y - 4:.1f} {x - 4:.1f},{y + 3:.1f} '
            f'{x + 4:.1f},{y + 3:.1f}" fill="{color}"/>'
        )
    return (
        f'<path d="M {x - 3:.1f} {y - 3:.1f} L {x + 3:.1f} {y + 3:.1f} '
        f'M {x - 3:.1f} {y + 3:.1f} L {x + 3:.1f} {y - 3:.1f}" '
        f'stroke="{color}" stroke-width="2"/>'
    )


def figure_to_svg(figure: typing.Any, y_label: str = "") -> str:
    """Render a :class:`~repro.experiments.FigureResult` as a chart."""
    return line_chart_svg(
        list(figure.x_values),
        {name: list(values) for name, values in figure.series.items()},
        title=figure.figure,
        x_label="number of maintenance robots",
        y_label=y_label,
    )
