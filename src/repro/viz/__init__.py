"""Visualisation: ASCII field maps and dependency-free SVG rendering."""

from repro.viz.ascii_map import AsciiMap, render_runtime
from repro.viz.charts import figure_to_svg, line_chart_svg
from repro.viz.svg import SvgCanvas, render_field_svg, trails_from_trace

__all__ = [
    "AsciiMap",
    "SvgCanvas",
    "figure_to_svg",
    "line_chart_svg",
    "render_field_svg",
    "render_runtime",
    "trails_from_trace",
]
