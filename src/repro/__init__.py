"""repro — reproduction of "Replacing Failed Sensor Nodes by Mobile
Robots" (Mei, Xian, Das, Hu, Lu; ICDCS Workshops 2006).

A static wireless sensor network is maintained by a small number of
mobile robots that replace failed nodes.  This package implements the
paper's three coordination algorithms and every substrate they run on:
a discrete-event simulation kernel, a unit-disk wireless stack with
geographic (GPSR/GFG-style) routing, deployment and failure models,
metrics, and an experiment harness that regenerates the paper's figures.

Quickstart::

    from repro import paper_scenario, run_scenario, Algorithm

    report = run_scenario(paper_scenario(Algorithm.DYNAMIC, robot_count=4))
    print("\\n".join(report.summary_lines()))
"""

from repro.core import (
    CentralManagerNode,
    RobotNode,
    ScenarioRuntime,
    SensorNode,
    run_scenario,
)
from repro.deploy import (
    Algorithm,
    DetectionMode,
    DispatchPolicy,
    PAPER_ROBOT_COUNTS,
    PartitionStyle,
    PlacementStyle,
    ScenarioConfig,
    paper_scenario,
)
from repro.metrics import MetricsCollector, RunReport, SummaryStats, summarize

__version__ = "1.0.0"

__all__ = [
    "Algorithm",
    "DispatchPolicy",
    "CentralManagerNode",
    "DetectionMode",
    "MetricsCollector",
    "PAPER_ROBOT_COUNTS",
    "PartitionStyle",
    "PlacementStyle",
    "RobotNode",
    "RunReport",
    "ScenarioConfig",
    "ScenarioRuntime",
    "SensorNode",
    "SummaryStats",
    "__version__",
    "paper_scenario",
    "run_scenario",
    "summarize",
]
