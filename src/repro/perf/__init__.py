"""Performance harness: hot-path microbenchmarks and profiling helpers.

``repro.perf.bench`` measures throughput of the three substrate hot
paths (event kernel, spatial grid, channel broadcast fan-out) plus the
service plane's cache-hit submission path, with plain self-timed
loops — no pytest required — so the numbers can be recorded by
``repro-sim bench`` and compared across commits.
``repro.perf.profiling`` wraps :mod:`cProfile` for the ``--profile``
flag on the sweep-backed CLI commands.

See ``docs/PERFORMANCE.md`` for the hot-path inventory and the caching
invariants the optimized paths rely on.
"""

from repro.perf.bench import (
    PAPER_DENSITIES,
    channel_fanout_throughput,
    kernel_throughput,
    run_benchmarks,
    service_submit_throughput,
    spatial_throughput,
)
from repro.perf.profiling import profile_call

__all__ = [
    "PAPER_DENSITIES",
    "channel_fanout_throughput",
    "kernel_throughput",
    "profile_call",
    "run_benchmarks",
    "service_submit_throughput",
    "spatial_throughput",
]
