"""Self-timed microbenchmarks of the simulator's hot paths.

Three substrates account for nearly all simulation wall time and each
has a dedicated throughput benchmark:

* **Event kernel** — schedule-and-run a long chain of ``call_in``
  callbacks (the dominant event shape: MAC wakeups, deliveries, timers).
* **Spatial grid** — disk range queries at the paper's sensor density
  (one sensor per ~28 m × 28 m, 63 m query radius).
* **Channel fan-out** — one-hop broadcast ``transmit`` + delivery over
  fields at the paper's three densities (4/9/16 robots' worth of
  sensors), optionally with a lossy radio.

A fourth benchmark times the service plane instead of the simulator:
**service submit** pushes cache-hit submissions through the full HTTP
stack (client → ``ThreadingHTTPServer`` → single-flight queue → store
lookup) and reports requests per second.

Two further groups cover the flat-array geometry layer and the sweep
engine:

* **Geometry kernels** — Voronoi membership (scalar per-point calls
  vs the generic flat-array kernel vs a compiled site-specialized
  kernel) and the fault-field distance filter (per-receiver
  ``drop_cause`` vs the batched, sparse ``drop_causes``).  Kernel
  entries carry a ``speedup`` field over their scalar run.
* **Sweep throughput** — a miniature serial sweep (all three
  algorithms at one grid cell) run end to end from a cold placement
  cache, reporting runs per second and wall time.  The three runs
  share one deployment, so the per-process placement cache serves two
  of the three placements from memory.

All benchmarks build their own fixtures, time with the provenance
clock (the package's single sanctioned wall-clock read site), and
return plain ``operations / second`` floats, so they run identically
under ``repro-sim bench``, pytest, and CI.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import typing

from repro.deploy.placement_cache import reset_placement_cache
from repro.deploy.scenario import Algorithm, paper_scenario
from repro.geometry import Point
from repro.geometry.kernels import compile_nearest_site_kernel
from repro.geometry.voronoi import closest_site_index, closest_site_indices
from repro.metrics.collector import RunReport
from repro.net import Channel, NetworkNode, RadioConfig
from repro.net.frames import BROADCAST, Category, Frame, Packet
from repro.net.radio import SENSOR_RANGE_M
from repro.net.spatial import SpatialGrid
from repro.sim import RandomStreams, Simulator
from repro.store import RunStore
from repro.store.provenance import perf_clock

__all__ = [
    "PAPER_DENSITIES",
    "channel_fanout_throughput",
    "distance_filter_throughput",
    "kernel_throughput",
    "run_benchmarks",
    "service_submit_throughput",
    "spatial_throughput",
    "sweep_mini_throughput",
    "voronoi_membership_throughput",
]

#: Sensor populations matching the paper's three field sizes (4, 9 and
#: 16 robots at 50 sensors per 200 m × 200 m robot area, §4.1).
PAPER_DENSITIES: typing.Dict[int, int] = {4: 200, 9: 450, 16: 800}

#: Field side length per sensor, preserving the paper's density.
_SIDE_PER_SENSOR_M = 28.28  # sqrt(200*200/50)


def kernel_throughput(events: int = 100_000) -> float:
    """Events per second for a pure ``call_in`` callback chain."""
    sim = Simulator()
    count = 0

    def tick() -> None:
        nonlocal count
        count += 1
        if count < events:
            sim.call_in(1.0, tick)

    sim.call_in(1.0, tick)
    started = perf_clock()
    sim.run()
    return count / (perf_clock() - started)


def spatial_throughput(
    sensors: int = 800,
    probes: int = 500,
    rounds: int = 20,
    cached: bool = True,
) -> float:
    """Disk queries per second against a paper-density grid.

    With ``cached=True`` (the default) the same probes repeat every
    round, so later rounds hit the grid's epoch-keyed query memo — the
    steady state of a static network phase.  ``cached=False`` bumps the
    epoch between rounds to force full scans every time.
    """
    rng = RandomStreams(1).stream("perf.spatial.layout")
    side = _SIDE_PER_SENSOR_M * (sensors**0.5)
    grid = SpatialGrid(cell_size=80.0)
    for index in range(sensors):
        grid.insert(
            f"s{index:04d}",
            Point(rng.uniform(0, side), rng.uniform(0, side)),
        )
    points = [
        Point(rng.uniform(0, side), rng.uniform(0, side))
        for _ in range(probes)
    ]
    started = perf_clock()
    for _ in range(rounds):
        if not cached:
            grid.epoch += 1  # invalidate the query memo
        for point in points:
            grid.within(point, SENSOR_RANGE_M)
    return rounds * probes / (perf_clock() - started)


def channel_fanout_throughput(
    sensors: int = 800,
    loss_rate: float = 0.0,
    rounds: int = 10,
    seed: int = 5,
) -> float:
    """Broadcast ``transmit`` calls per second at a given density.

    Every node broadcasts one beacon-sized frame per round and the
    simulator drains all deliveries, so the figure includes receiver-set
    lookup, per-receiver loss draws (when lossy), and delivery events.
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    channel = Channel(sim, streams)
    side = _SIDE_PER_SENSOR_M * (sensors**0.5)
    rng = streams.stream("perf.fanout.layout")
    nodes = [
        NetworkNode(
            f"s{index:04d}",
            Point(rng.uniform(0, side), rng.uniform(0, side)),
            RadioConfig(range_m=SENSOR_RANGE_M, loss_rate=loss_rate),
            sim,
            channel,
            streams,
        )
        for index in range(sensors)
    ]
    started = perf_clock()
    sent = 0
    for _ in range(rounds):
        for node in nodes:
            packet = Packet(
                source=node.node_id,
                destination=BROADCAST,
                category=Category.BEACON,
            )
            channel.transmit(
                node,
                Frame(
                    sender=node.node_id,
                    link_destination=BROADCAST,
                    packet=packet,
                ),
            )
            sent += 1
        sim.run()
    return sent / (perf_clock() - started)


def _best_of(runs: typing.Sequence[float]) -> float:
    """The highest throughput of repeated measurements (timeit-style:
    the minimum-interference run is the honest one)."""
    return max(runs)


def voronoi_membership_throughput(
    points: int = 2_000,
    sites: int = 9,
    rounds: int = 50,
    mode: str = "kernel",
    repeats: int = 3,
) -> float:
    """Voronoi membership assignments per second (best of *repeats*).

    ``mode="scalar"`` classifies each point with its own
    :func:`~repro.geometry.voronoi.closest_site_index` call — what the
    dynamic strategy's ``setup`` did before the kernel layer.
    ``mode="kernel"`` runs one
    :func:`~repro.geometry.voronoi.closest_site_indices` call per
    round, including the flatten step the call site pays.
    ``mode="compiled"`` classifies through a site-specialized
    :func:`~repro.geometry.kernels.compile_nearest_site_kernel`
    function (built once, outside the timed region — the frozen-site
    amortized case, e.g. ``VoronoiDiagram.owner_of``).
    """
    rng = RandomStreams(3).stream("perf.voronoi.layout")
    side = _SIDE_PER_SENSOR_M * (points**0.5)
    field = [
        Point(rng.uniform(0, side), rng.uniform(0, side))
        for _ in range(points)
    ]
    site_points = [
        Point(rng.uniform(0, side), rng.uniform(0, side))
        for _ in range(sites)
    ]
    xs = [point.x for point in field]
    ys = [point.y for point in field]
    classify = compile_nearest_site_kernel(
        [site.x for site in site_points],
        [site.y for site in site_points],
    )
    runs = []
    for _ in range(repeats):
        started = perf_clock()
        for _ in range(rounds):
            if mode == "scalar":
                for point in field:
                    closest_site_index(point, site_points)
            elif mode == "compiled":
                classify(xs, ys)
            else:
                closest_site_indices(field, site_points)
        runs.append(rounds * points / (perf_clock() - started))
    return _best_of(runs)


def distance_filter_throughput(
    points: int = 2_000,
    rounds: int = 50,
    batched: bool = True,
    repeats: int = 3,
) -> float:
    """Fault-field disk tests per receiver-point per second.

    Measures the landed call-site change: one partition plus one jam
    region (the degraded-scenario shape) evaluated over a batch of
    receivers, either with the pre-kernel per-receiver
    ``NetworkFaultField.drop_cause`` loop (``batched=False``) or one
    batched ``drop_causes`` call (``batched=True`` — per-region
    :func:`~repro.geometry.kernels.in_disk_mask` plus the sparse
    combine).  Both variants consume the ``channel.jam`` stream
    identically; best of *repeats*.
    """
    from repro.faults.network import FaultKind, FaultRegion, NetworkFaultField

    rng = RandomStreams(7).stream("perf.filter.layout")
    side = _SIDE_PER_SENSOR_M * (points**0.5)
    xs = [rng.uniform(0, side) for _ in range(points)]
    ys = [rng.uniform(0, side) for _ in range(points)]
    receivers = [Point(x, y) for x, y in zip(xs, ys)]
    sender = Point(side / 2.0, side / 2.0)
    field = NetworkFaultField(RandomStreams(7).stream("channel.jam"))
    field.add(
        FaultRegion(
            label="bench-partition",
            kind=FaultKind.PARTITION,
            center=Point(side * 0.25, side * 0.25),
            radius=SENSOR_RANGE_M * 2.0,
            severity=1.0,
        )
    )
    field.add(
        FaultRegion(
            label="bench-jam",
            kind=FaultKind.JAM,
            center=Point(side * 0.7, side * 0.7),
            radius=SENSOR_RANGE_M * 2.0,
            severity=0.4,
        )
    )
    runs = []
    for _ in range(repeats):
        started = perf_clock()
        for _ in range(rounds):
            if batched:
                field.drop_causes(sender, xs, ys)
            else:
                for receiver in receivers:
                    field.drop_cause(sender, receiver)
        runs.append(rounds * points / (perf_clock() - started))
    return _best_of(runs)


def sweep_mini_throughput(
    sim_time_s: float = 2_000.0,
) -> typing.Dict[str, float]:
    """End-to-end runs per second for a one-cell serial sweep.

    Runs all three algorithms at the 4-robot density from a cold
    placement cache — the smallest workload that exercises the full
    scenario pipeline *and* the placement-cache reuse pattern (three
    configs, one shared deployment).
    """
    from repro.experiments.runner import run_many

    configs = [
        paper_scenario(
            algorithm, 4, seed=3, sim_time_s=sim_time_s
        )
        for algorithm in Algorithm.ALL
    ]
    reset_placement_cache()
    started = perf_clock()
    run_many(configs, parallel=False)
    wall_s = perf_clock() - started
    return {
        "runs": float(len(configs)),
        "sim_time_s": sim_time_s,
        "wall_s": round(wall_s, 3),
        "throughput_per_s": round(len(configs) / wall_s, 3),
    }


def _synthetic_report(description: str) -> RunReport:
    """A populated RunReport without running a simulation."""
    return RunReport(
        description=description,
        failures=5,
        detected=5,
        reported=4,
        repaired=3,
        mean_travel_distance=82.5,
        mean_repair_latency=130.25,
        mean_report_hops=2.4,
        mean_request_hops=float("nan"),
        update_transmissions_per_failure=101.5,
        report_delivery_ratio=1.0,
        total_robot_distance=412.0,
        transmissions_by_category={"beacon": 100},
        routing_snapshot={},
    )


def service_submit_throughput(submits: int = 200, seed: int = 11) -> float:
    """Cache-hit submissions per second through the full HTTP stack.

    Prepopulates a throwaway store with one entry, starts the service
    on an ephemeral port, and re-submits that entry's config *submits*
    times — every request exercises client, server, routing, the
    single-flight queue, and a store lookup, but no simulation runs.
    """
    from repro.service import JobQueue, ServiceClient, serve

    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        store = RunStore(root)
        config = paper_scenario(
            Algorithm.FIXED,
            4,
            seed=seed,
            sensors_per_robot=5,
            placement="grid",
            sim_time_s=500.0,
        )
        store.put(config, _synthetic_report(config.describe()))
        queue = JobQueue(store, workers=1)
        server = serve(queue=queue, quiet=True)
        threading.Thread(
            target=server.serve_forever, daemon=True
        ).start()
        client = ServiceClient(port=server.port)
        body = config.to_json_dict()
        started = perf_clock()
        for _ in range(submits):
            client.submit(body)
        elapsed = perf_clock() - started
        server.shutdown()
        server.server_close()
        queue.shutdown(wait=False)
        return submits / elapsed
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_benchmarks(
    quick: bool = False,
) -> typing.Dict[str, typing.Dict[str, float]]:
    """Run the full microbenchmark battery; returns throughput numbers.

    The result maps bench name to ``{"throughput_per_s": ..., plus
    shape parameters}`` and is what ``repro-sim bench`` merges into
    ``BENCH_results.json``.  ``quick`` shrinks every workload ~4× for
    CI smoke runs.
    """
    scale = 4 if quick else 1
    results: typing.Dict[str, typing.Dict[str, float]] = {}

    events = 100_000 // scale
    results["kernel_call_in"] = {
        "events": events,
        "throughput_per_s": round(kernel_throughput(events), 1),
    }

    rounds = 20 // scale
    for cached in (True, False):
        name = "spatial_within" + ("_cached" if cached else "_cold")
        results[name] = {
            "sensors": 800,
            "rounds": rounds,
            "throughput_per_s": round(
                spatial_throughput(rounds=rounds, cached=cached), 1
            ),
        }

    fan_rounds = 8 // scale
    for robots, sensors in sorted(PAPER_DENSITIES.items()):
        results[f"channel_fanout_{robots}robots"] = {
            "sensors": sensors,
            "rounds": fan_rounds,
            "throughput_per_s": round(
                channel_fanout_throughput(sensors, rounds=fan_rounds), 1
            ),
        }
    results["channel_fanout_16robots_lossy"] = {
        "sensors": PAPER_DENSITIES[16],
        "loss_rate": 0.1,
        "rounds": fan_rounds,
        "throughput_per_s": round(
            channel_fanout_throughput(
                PAPER_DENSITIES[16], loss_rate=0.1, rounds=fan_rounds
            ),
            1,
        ),
    }
    submits = 200 // scale
    results["service_submit_hit"] = {
        "submits": submits,
        "throughput_per_s": round(
            service_submit_throughput(submits), 1
        ),
    }

    kernel_rounds = 48 // scale
    scalar_membership = voronoi_membership_throughput(
        rounds=kernel_rounds, mode="scalar"
    )
    kernel_membership = voronoi_membership_throughput(
        rounds=kernel_rounds, mode="kernel"
    )
    compiled_membership = voronoi_membership_throughput(
        rounds=kernel_rounds, mode="compiled"
    )
    membership_shape = {"points": 2_000, "sites": 9, "rounds": kernel_rounds}
    results["voronoi_membership_scalar"] = {
        **membership_shape,
        "throughput_per_s": round(scalar_membership, 1),
    }
    results["voronoi_membership_kernel"] = {
        **membership_shape,
        "throughput_per_s": round(kernel_membership, 1),
        "speedup": round(kernel_membership / scalar_membership, 2),
    }
    results["voronoi_membership_compiled"] = {
        **membership_shape,
        "throughput_per_s": round(compiled_membership, 1),
        "speedup": round(compiled_membership / scalar_membership, 2),
    }
    scalar_filter = distance_filter_throughput(
        rounds=kernel_rounds, batched=False
    )
    kernel_filter = distance_filter_throughput(
        rounds=kernel_rounds, batched=True
    )
    filter_shape = {"points": 2_000, "regions": 2, "rounds": kernel_rounds}
    results["distance_filter_scalar"] = {
        **filter_shape,
        "throughput_per_s": round(scalar_filter, 1),
    }
    results["distance_filter_kernel"] = {
        **filter_shape,
        "throughput_per_s": round(kernel_filter, 1),
        "speedup": round(kernel_filter / scalar_filter, 2),
    }

    results["sweep_serial_one_cell"] = sweep_mini_throughput(
        sim_time_s=2_000.0 / scale
    )
    return results
