"""cProfile plumbing for the CLI's ``--profile`` flag.

Profiles a zero-argument callable and prints the top functions by
cumulative time to stderr, keeping stdout clean for the command's
normal output (tables, figures) so pipelines keep working.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import typing

__all__ = ["profile_call"]

T = typing.TypeVar("T")


def profile_call(
    fn: typing.Callable[[], T],
    top: int = 25,
    stream: typing.Optional[typing.TextIO] = None,
) -> T:
    """Run *fn* under cProfile; print the *top* cumulative entries.

    Returns *fn*'s return value unchanged, so callers can wrap a CLI
    handler and pass its exit code through.
    """
    if stream is None:
        stream = sys.stderr
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats("cumulative")
        print(f"\n--- profile: top {top} by cumulative time ---", file=stream)
        stats.print_stats(top)
    return result
