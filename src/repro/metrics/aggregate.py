"""Aggregation of metrics across replicated runs.

The figures average each point over several seeds.  This module provides
the summary statistics (mean, sample standard deviation, normal-theory
confidence half-width) without depending on scipy — the library stays
dependency-free; tests cross-check against numpy where available.
"""

from __future__ import annotations

import dataclasses
import math
import typing

__all__ = ["SummaryStats", "summarize", "mean_of", "aggregate_reports"]


@dataclasses.dataclass(frozen=True, slots=True)
class SummaryStats:
    """Mean / spread summary of one metric over replicates."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    #: Half-width of the ~95 % normal-approximation confidence interval.
    ci95_halfwidth: float

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.ci95_halfwidth:.2f} (n={self.count})"

    # ------------------------------------------------------------------
    # Versioned JSON serialization (repro.store / bench results)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> typing.Dict[str, typing.Any]:
        """All fields as a JSON-native dict."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    @classmethod
    def from_json_dict(
        cls, data: typing.Mapping[str, typing.Any]
    ) -> "SummaryStats":
        """Rebuild summary statistics from :meth:`to_json_dict` output."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown SummaryStats fields: {', '.join(unknown)}"
            )
        return cls(**dict(data))


def summarize(values: typing.Sequence[float]) -> SummaryStats:
    """Summary statistics of *values*, ignoring NaNs.

    Raises
    ------
    ValueError
        If no finite values remain.
    """
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        raise ValueError("no finite values to summarize")
    n = len(finite)
    mean = sum(finite) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in finite) / (n - 1)
        stdev = math.sqrt(variance)
    else:
        stdev = 0.0
    halfwidth = 1.96 * stdev / math.sqrt(n) if n > 1 else 0.0
    return SummaryStats(
        count=n,
        mean=mean,
        stdev=stdev,
        minimum=min(finite),
        maximum=max(finite),
        ci95_halfwidth=halfwidth,
    )


def mean_of(values: typing.Sequence[float]) -> float:
    """Mean ignoring NaNs; NaN if nothing finite remains."""
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return float("nan")
    return sum(finite) / len(finite)


def aggregate_reports(
    reports: typing.Sequence[typing.Any],
    metric: str,
) -> SummaryStats:
    """Summarize attribute *metric* across :class:`RunReport` objects."""
    return summarize([getattr(report, metric) for report in reports])
