"""Metrics: per-failure lifecycle records and cross-run aggregation."""

from repro.metrics.aggregate import (
    SummaryStats,
    aggregate_reports,
    mean_of,
    summarize,
)
from repro.metrics.collector import (
    FailureRecord,
    FalseDispatchRecord,
    MetricsCollector,
    RunReport,
)

__all__ = [
    "FailureRecord",
    "FalseDispatchRecord",
    "MetricsCollector",
    "RunReport",
    "SummaryStats",
    "aggregate_reports",
    "mean_of",
    "summarize",
]
