"""Per-run maintenance metrics.

Tracks every failure through its pipeline — death → detection → report →
dispatch → travel → replacement — and derives the paper's three headline
metrics:

* **motion overhead** — average robot travelling distance per handled
  failure (Figure 2);
* **report / request hops** — average geographic-routing hops of failure
  reports and replacement requests (Figure 3);
* **location-update transmissions** — average wireless transmissions
  spent on robot location updates per failure (Figure 4).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.geometry.point import Point
from repro.net.channel import Channel
from repro.net.frames import Category
from repro.routing.stats import RoutingStats

__all__ = [
    "FailureRecord",
    "FalseDispatchRecord",
    "MetricsCollector",
    "RobotFaultRecord",
    "RunReport",
]


@dataclasses.dataclass(slots=True)
class FailureRecord:
    """The lifecycle of one sensor failure."""

    node_id: str
    position: Point
    death_time: float
    detect_time: typing.Optional[float] = None
    guardian_id: typing.Optional[str] = None
    report_time: typing.Optional[float] = None
    report_hops: typing.Optional[int] = None
    manager_id: typing.Optional[str] = None
    dispatch_time: typing.Optional[float] = None
    request_hops: typing.Optional[int] = None
    robot_id: typing.Optional[str] = None
    travel_distance: typing.Optional[float] = None
    replace_time: typing.Optional[float] = None
    replacement_id: typing.Optional[str] = None
    #: Times this failure was dispatched *again* after the first try
    #: (robot breakdowns, missed deadlines).  Resilience extension.
    redispatches: int = 0
    #: Set when the failure was explicitly given up on, with the reason.
    orphan_reason: typing.Optional[str] = None
    orphan_time: typing.Optional[float] = None

    @property
    def repaired(self) -> bool:
        """True once a replacement node is in place."""
        return self.replace_time is not None

    @property
    def repair_latency(self) -> typing.Optional[float]:
        """Seconds from death to replacement (None if unrepaired)."""
        if self.replace_time is None:
            return None
        return self.replace_time - self.death_time

    # ------------------------------------------------------------------
    # Versioned JSON serialization (repro.store)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> typing.Dict[str, typing.Any]:
        """All fields as a JSON-native dict (``position`` as ``[x, y]``)."""
        data = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }
        data["position"] = [self.position.x, self.position.y]
        return data

    @classmethod
    def from_json_dict(
        cls, data: typing.Mapping[str, typing.Any]
    ) -> "FailureRecord":
        """Rebuild a record from :meth:`to_json_dict` output."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown FailureRecord fields: {', '.join(unknown)}"
            )
        fields = dict(data)
        x, y = fields["position"]
        fields["position"] = Point(float(x), float(y))
        return cls(**fields)


@dataclasses.dataclass(slots=True)
class RobotFaultRecord:
    """One robot (or manager) fault and its detection/recovery times.

    Collector-internal: robot faults summarise into :class:`RunReport`
    counters but are not serialized per-record.
    """

    robot_id: str
    kind: str
    time: float
    permanent: bool
    detect_time: typing.Optional[float] = None
    recover_time: typing.Optional[float] = None


@dataclasses.dataclass(slots=True)
class FalseDispatchRecord:
    """One robot trip triggered by a report about a live sensor.

    Collector-internal: false dispatches summarise into
    :class:`RunReport` counters but are not serialized per-record.
    """

    failed_id: str
    robot_id: str
    time: float
    #: Metres driven for this trip (the wasted leg).
    wasted_m: float
    #: True when on-site verification aborted the replacement; False
    #: when an unverified run actually swapped out a live sensor.
    aborted: bool


class MetricsCollector:
    """Accumulates :class:`FailureRecord` entries during a run.

    The coordination layer calls the ``record_*`` methods at each stage;
    :meth:`report` assembles a :class:`RunReport` at the end, combining
    the failure records with channel and routing statistics.
    """

    def __init__(self) -> None:
        self._records: typing.Dict[str, FailureRecord] = {}
        #: Total distance travelled per robot (includes repositioning
        #: that is not attributable to a single failure).
        self.robot_distance: typing.Dict[str, float] = {}
        self._robot_faults: typing.List[RobotFaultRecord] = []
        #: Verification-protocol counters (all stay zero when the
        #: protocol and network faults are off).
        self._false_dispatches: typing.List[FalseDispatchRecord] = []
        self.suspicions = 0
        self.suspicions_cleared = 0
        self.probes_sent = 0
        self.probes_answered = 0
        self._verification_latencies: typing.List[float] = []
        #: Degraded-mode counters (all stay zero when the adaptive
        #: layer is off).
        self.coop_offers = 0
        self.coop_claims = 0
        self._backlog_drains: typing.List[float] = []
        self.reroutes = 0
        self.reroute_detour_m = 0.0
        self._adaptive_quorums: typing.Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_death(
        self, node_id: str, position: Point, time: float
    ) -> None:
        """A sensor died."""
        self._records[node_id] = FailureRecord(
            node_id=node_id, position=position, death_time=time
        )

    def record_detection(
        self, node_id: str, guardian_id: str, time: float
    ) -> None:
        """A guardian declared *node_id* failed."""
        record = self._records.get(node_id)
        if record is not None and record.detect_time is None:
            record.detect_time = time
            record.guardian_id = guardian_id

    def record_report(
        self, node_id: str, manager_id: str, time: float, hops: int
    ) -> None:
        """A failure report for *node_id* reached a manager."""
        record = self._records.get(node_id)
        if record is not None and record.report_time is None:
            record.report_time = time
            record.manager_id = manager_id
            record.report_hops = hops

    def record_dispatch(
        self, node_id: str, robot_id: str, time: float
    ) -> None:
        """A manager chose *robot_id* to handle *node_id*'s failure."""
        record = self._records.get(node_id)
        if record is not None and record.dispatch_time is None:
            record.dispatch_time = time
            record.robot_id = robot_id

    def record_request_hops(self, node_id: str, hops: int) -> None:
        """A replacement request reached the maintainer (centralized)."""
        record = self._records.get(node_id)
        if record is not None and record.request_hops is None:
            record.request_hops = hops

    def record_travel(self, robot_id: str, distance: float) -> None:
        """Robot *robot_id* travelled *distance* metres (any reason)."""
        self.robot_distance[robot_id] = (
            self.robot_distance.get(robot_id, 0.0) + distance
        )

    def record_replacement(
        self,
        node_id: str,
        robot_id: str,
        time: float,
        travel_distance: float,
        replacement_id: str,
    ) -> None:
        """Robot *robot_id* replaced *node_id* after travelling
        *travel_distance* metres for this failure."""
        record = self._records.get(node_id)
        if record is not None and record.replace_time is None:
            record.replace_time = time
            record.robot_id = robot_id
            record.travel_distance = travel_distance
            record.replacement_id = replacement_id

    # ------------------------------------------------------------------
    # Recording: robot faults & recovery (resilience extension)
    # ------------------------------------------------------------------
    def record_robot_fault(
        self, robot_id: str, kind: str, time: float, permanent: bool
    ) -> None:
        """Robot (or manager) *robot_id* broke down."""
        self._robot_faults.append(
            RobotFaultRecord(
                robot_id=robot_id, kind=kind, time=time, permanent=permanent
            )
        )

    def record_robot_fault_detected(self, robot_id: str, time: float) -> None:
        """Peers declared *robot_id* dead (heartbeat silence)."""
        for fault in self._robot_faults:
            if fault.robot_id == robot_id and fault.detect_time is None:
                fault.detect_time = time
                return

    def record_robot_recovery(self, robot_id: str, time: float) -> None:
        """Robot (or manager) *robot_id* came back into service."""
        for fault in self._robot_faults:
            if fault.robot_id == robot_id and fault.recover_time is None:
                fault.recover_time = time
                return

    def record_redispatch(self, node_id: str) -> None:
        """The failure of *node_id* had to be dispatched again."""
        record = self._records.get(node_id)
        if record is not None:
            record.redispatches += 1

    def record_orphaned(self, node_id: str, reason: str, time: float) -> None:
        """The failure of *node_id* was explicitly given up on."""
        record = self._records.get(node_id)
        if (
            record is not None
            and not record.repaired
            and record.orphan_reason is None
        ):
            record.orphan_reason = reason
            record.orphan_time = time

    def robot_faults(self) -> typing.List[RobotFaultRecord]:
        """All robot fault records in occurrence order."""
        return list(self._robot_faults)

    # ------------------------------------------------------------------
    # Recording: failure verification (network-fault extension)
    # ------------------------------------------------------------------
    def record_suspicion(
        self, node_id: str, guardian_id: str, time: float
    ) -> None:
        """A guardian opened a suspicion case on *node_id*."""
        self.suspicions += 1

    def record_suspicion_resolved(
        self, node_id: str, time: float, latency_s: float, outcome: str
    ) -> None:
        """A suspicion case closed; *outcome* is ``"cleared"`` or the
        confidence the resulting report carried."""
        self._verification_latencies.append(latency_s)
        if outcome == "cleared":
            self.suspicions_cleared += 1

    def record_probe(self, node_id: str) -> None:
        """A dispatcher probed a suspected sensor."""
        self.probes_sent += 1

    def record_probe_answered(
        self, node_id: str, round_trip_s: float
    ) -> None:
        """A suspected sensor answered a dispatcher's probe."""
        self.probes_answered += 1

    def record_false_dispatch(
        self,
        failed_id: str,
        robot_id: str,
        time: float,
        wasted_m: float,
        aborted: bool,
    ) -> None:
        """A robot was sent to a sensor that was in fact alive."""
        self._false_dispatches.append(
            FalseDispatchRecord(
                failed_id=failed_id,
                robot_id=robot_id,
                time=time,
                wasted_m=wasted_m,
                aborted=aborted,
            )
        )

    def false_dispatches(self) -> typing.List[FalseDispatchRecord]:
        """All false-dispatch records in occurrence order."""
        return list(self._false_dispatches)

    # ------------------------------------------------------------------
    # Recording: degraded-mode adaptation (adaptive extension)
    # ------------------------------------------------------------------
    def record_coop_offer(self, failed_id: str, origin_id: str) -> None:
        """An overloaded robot put a backlog item up for auction."""
        self.coop_offers += 1

    def record_coop_claim(
        self, failed_id: str, origin_id: str, helper_id: str
    ) -> None:
        """A helper accepted an auctioned backlog item."""
        self.coop_claims += 1

    def record_backlog_drain(
        self, robot_id: str, duration_s: float
    ) -> None:
        """A robot's backlog episode drained back under the threshold."""
        self._backlog_drains.append(duration_s)

    def record_reroute(self, robot_id: str, detour_m: float) -> None:
        """A robot leg detoured around jam disks by *detour_m* metres."""
        self.reroutes += 1
        self.reroute_detour_m += detour_m

    def record_adaptive_quorum(self, quorum: int) -> None:
        """The adaptive controller resolved a suspicion at *quorum*."""
        self._adaptive_quorums[quorum] = (
            self._adaptive_quorums.get(quorum, 0) + 1
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records(self) -> typing.List[FailureRecord]:
        """All failure records in death-time order."""
        return sorted(self._records.values(), key=lambda r: r.death_time)

    def record_of(self, node_id: str) -> typing.Optional[FailureRecord]:
        """The record for one failed node, if any."""
        return self._records.get(node_id)

    @property
    def failures(self) -> int:
        """Total deaths recorded."""
        return len(self._records)

    @property
    def repaired(self) -> int:
        """Failures with a completed replacement."""
        return sum(1 for r in self._records.values() if r.repaired)

    def report(
        self,
        channel: Channel,
        routing: RoutingStats,
        config_describe: str = "",
    ) -> "RunReport":
        """Summarise the run into a :class:`RunReport`."""
        records = self.records()
        repaired = [r for r in records if r.repaired]
        travel = [
            r.travel_distance
            for r in repaired
            if r.travel_distance is not None
        ]
        latencies = [
            r.repair_latency
            for r in repaired
            if r.repair_latency is not None
        ]
        update_tx = channel.stats.transmissions.get(
            Category.LOCATION_UPDATE, 0
        )
        denominator = max(len(repaired), 1)
        detected_faults = [
            f for f in self._robot_faults if f.detect_time is not None
        ]
        return RunReport(
            description=config_describe,
            failures=len(records),
            detected=sum(1 for r in records if r.detect_time is not None),
            reported=sum(1 for r in records if r.report_time is not None),
            repaired=len(repaired),
            mean_travel_distance=_mean(travel),
            mean_repair_latency=_mean(latencies),
            mean_report_hops=routing.mean_hops(Category.FAILURE_REPORT),
            mean_request_hops=routing.mean_hops(Category.REPAIR_REQUEST),
            update_transmissions_per_failure=update_tx / denominator,
            report_delivery_ratio=routing.delivery_ratio(
                Category.FAILURE_REPORT
            ),
            total_robot_distance=sum(self.robot_distance.values()),
            transmissions_by_category=dict(channel.stats.transmissions),
            routing_snapshot=routing.snapshot(),
            robot_faults=len(self._robot_faults),
            robot_faults_detected=len(detected_faults),
            robot_recoveries=sum(
                1
                for f in self._robot_faults
                if f.recover_time is not None
            ),
            mean_fault_detection_latency_s=_mean(
                [f.detect_time - f.time for f in detected_faults]
            ),
            redispatches=sum(r.redispatches for r in records),
            orphaned=sum(
                1 for r in records if r.orphan_reason is not None
            ),
            suspicions=self.suspicions,
            suspicions_cleared=self.suspicions_cleared,
            probes_sent=self.probes_sent,
            probes_answered=self.probes_answered,
            false_dispatches=len(self._false_dispatches),
            aborted_replacements=sum(
                1 for d in self._false_dispatches if d.aborted
            ),
            false_replacements=sum(
                1 for d in self._false_dispatches if not d.aborted
            ),
            wasted_travel_m=sum(
                d.wasted_m for d in self._false_dispatches
            ),
            mean_verification_latency_s=_mean(
                self._verification_latencies
            ),
            coop_offers=self.coop_offers,
            coop_claims=self.coop_claims,
            backlog_episodes=len(self._backlog_drains),
            mean_backlog_drain_s=_mean(self._backlog_drains),
            reroutes=self.reroutes,
            reroute_detour_m=self.reroute_detour_m,
            adaptive_quorum_histogram={
                str(quorum): count
                for quorum, count in sorted(
                    self._adaptive_quorums.items()
                )
            },
        )


@dataclasses.dataclass(frozen=True, slots=True)
class RunReport:
    """Summary of one simulation run — the unit the figures average."""

    description: str
    failures: int
    detected: int
    reported: int
    repaired: int
    #: Figure 2 metric: metres travelled per repaired failure.
    mean_travel_distance: float
    mean_repair_latency: float
    #: Figure 3 metrics.
    mean_report_hops: float
    mean_request_hops: float
    #: Figure 4 metric.
    update_transmissions_per_failure: float
    report_delivery_ratio: float
    total_robot_distance: float
    transmissions_by_category: typing.Dict[str, int]
    routing_snapshot: typing.Dict[str, typing.Any]
    #: Resilience metrics (all zero/NaN when faults are disabled).
    robot_faults: int = 0
    robot_faults_detected: int = 0
    robot_recoveries: int = 0
    mean_fault_detection_latency_s: float = float("nan")
    redispatches: int = 0
    orphaned: int = 0
    #: Verification metrics (network-fault extension; all zero/NaN when
    #: the protocol and network faults are disabled).
    suspicions: int = 0
    suspicions_cleared: int = 0
    probes_sent: int = 0
    probes_answered: int = 0
    #: Robot trips to sensors that were in fact alive (total).
    false_dispatches: int = 0
    #: ... of which on-site verification aborted the swap.
    aborted_replacements: int = 0
    #: ... of which a live sensor was actually replaced (unverified).
    false_replacements: int = 0
    #: Metres driven on false-dispatch trips.
    wasted_travel_m: float = 0.0
    mean_verification_latency_s: float = float("nan")
    #: Degraded-mode metrics (adaptive extension; all zero/NaN/empty
    #: when the adaptive layer is disabled).
    coop_offers: int = 0
    coop_claims: int = 0
    backlog_episodes: int = 0
    mean_backlog_drain_s: float = float("nan")
    reroutes: int = 0
    reroute_detour_m: float = 0.0
    #: Quorum value → number of suspicions resolved at that quorum
    #: (keys are strings so the histogram is JSON-native).
    adaptive_quorum_histogram: typing.Dict[str, int] = dataclasses.field(
        default_factory=dict
    )

    @property
    def unrepaired_fraction(self) -> float:
        """Fraction of failures never repaired (0.0 with no failures)."""
        if self.failures == 0:
            return 0.0
        return (self.failures - self.repaired) / self.failures

    def summary_lines(self) -> typing.List[str]:
        """Human-readable multi-line summary."""
        lines = [
            f"scenario: {self.description}",
            f"failures: {self.failures} "
            f"(detected {self.detected}, reported {self.reported}, "
            f"repaired {self.repaired})",
            f"motion overhead: {self.mean_travel_distance:.1f} m/failure",
            f"repair latency: {self.mean_repair_latency:.1f} s",
            f"report hops: {self.mean_report_hops:.2f}; "
            f"request hops: {self.mean_request_hops:.2f}",
            "location-update transmissions/failure: "
            f"{self.update_transmissions_per_failure:.1f}",
            f"report delivery ratio: {self.report_delivery_ratio:.3f}",
        ]
        if self.robot_faults or self.redispatches or self.orphaned:
            lines.append(
                f"robot faults: {self.robot_faults} "
                f"(detected {self.robot_faults_detected}, "
                f"recovered {self.robot_recoveries}); "
                f"detection latency: "
                f"{self.mean_fault_detection_latency_s:.1f} s"
            )
            lines.append(
                f"re-dispatches: {self.redispatches}; "
                f"orphaned failures: {self.orphaned}; "
                f"unrepaired fraction: {self.unrepaired_fraction:.3f}"
            )
        if self.suspicions or self.false_dispatches:
            lines.append(
                f"suspicions: {self.suspicions} "
                f"(cleared {self.suspicions_cleared}); "
                f"probes: {self.probes_sent} "
                f"(answered {self.probes_answered}); "
                f"verification latency: "
                f"{self.mean_verification_latency_s:.1f} s"
            )
            lines.append(
                f"false dispatches: {self.false_dispatches} "
                f"(aborted {self.aborted_replacements}, "
                f"replaced-alive {self.false_replacements}); "
                f"wasted travel: {self.wasted_travel_m:.1f} m"
            )
        if self.coop_offers or self.reroutes or self.backlog_episodes:
            lines.append(
                f"coop repair: {self.coop_claims}/{self.coop_offers} "
                f"offers claimed; backlog episodes: "
                f"{self.backlog_episodes} "
                f"(mean drain {self.mean_backlog_drain_s:.1f} s); "
                f"reroutes: {self.reroutes} "
                f"({self.reroute_detour_m:.1f} m detour)"
            )
        return lines

    def headline(self) -> typing.Dict[str, float]:
        """The dashboard headline metrics, flat, with explicit units.

        The keys are stable export vocabulary (``repro.service.export``
        builds its documents and per-algorithm series from them); the
        values may be ``NaN`` for undefined means — exports sanitize.
        """
        return {
            "failures": self.failures,
            "detected": self.detected,
            "reported": self.reported,
            "repaired": self.repaired,
            "unrepaired_fraction": self.unrepaired_fraction,
            "mean_travel_distance_m": self.mean_travel_distance,
            "mean_repair_latency_s": self.mean_repair_latency,
            "mean_report_hops": self.mean_report_hops,
            "mean_request_hops": self.mean_request_hops,
            "update_transmissions_per_failure": (
                self.update_transmissions_per_failure
            ),
            "report_delivery_ratio": self.report_delivery_ratio,
            "total_robot_distance_m": self.total_robot_distance,
        }

    # ------------------------------------------------------------------
    # Versioned JSON serialization (repro.store)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> typing.Dict[str, typing.Any]:
        """All fields as a JSON-native dict.

        Every field is already JSON-native (numbers, strings, and plain
        dicts); ``NaN`` metrics survive the round trip through Python's
        JSON codec, which reads and writes the ``NaN`` literal.
        """
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    @classmethod
    def from_json_dict(
        cls, data: typing.Mapping[str, typing.Any]
    ) -> "RunReport":
        """Rebuild a report from :meth:`to_json_dict` output."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown RunReport fields: {', '.join(unknown)}"
            )
        return cls(**dict(data))


def _mean(values: typing.Sequence[float]) -> float:
    if not values:
        return float("nan")
    return sum(values) / len(values)
