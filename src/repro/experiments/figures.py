"""Per-figure experiment generators (paper §4.3).

Each ``figure*`` function runs the sweep behind one of the paper's
figures and returns a :class:`FigureResult` holding the plotted series,
a rendered text table, and the qualitative *claims* the paper draws from
that figure, each checked against the measured data.

The paper's full evaluation runs 64 000 s; these generators accept
``sim_time_s`` so tests and benches can trade duration for speed — the
failure process is stationary after the first few lifetimes, so shorter
horizons estimate the same means with more variance.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.deploy.scenario import Algorithm, PAPER_ROBOT_COUNTS
from repro.experiments.render import render_series_table
from repro.experiments.runner import SweepResult, sweep

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.store.store import RunStore

__all__ = [
    "ClaimCheck",
    "FigureResult",
    "figure2_motion_overhead",
    "figure3_hops",
    "figure4_update_transmissions",
]


@dataclasses.dataclass(frozen=True, slots=True)
class ClaimCheck:
    """One qualitative claim from the paper, evaluated on our data."""

    claim: str
    holds: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.holds else "FAIL"
        return f"[{mark}] {self.claim} — {self.detail}"


@dataclasses.dataclass(frozen=True, slots=True)
class FigureResult:
    """Everything regenerated for one paper figure."""

    figure: str
    x_values: typing.Tuple[int, ...]
    series: typing.Dict[str, typing.Tuple[float, ...]]
    claims: typing.Tuple[ClaimCheck, ...]
    sweep_result: SweepResult
    #: Label of the x axis (the paper figures sweep robot counts; the
    #: resilience extension sweeps robot MTBF instead).
    x_label: str = "robots"

    def render(self) -> str:
        """The figure as a text table plus claim checklist."""
        table = render_series_table(
            self.x_label,
            list(self.x_values),
            {name: list(values) for name, values in self.series.items()},
            title=self.figure,
        )
        claims = "\n".join(str(claim) for claim in self.claims)
        return f"{table}\n{claims}"

    @property
    def all_claims_hold(self) -> bool:
        """True when every paper claim reproduced."""
        return all(claim.holds for claim in self.claims)


_ALGORITHMS = (Algorithm.FIXED, Algorithm.DYNAMIC, Algorithm.CENTRALIZED)


def figure2_motion_overhead(
    robot_counts: typing.Sequence[int] = PAPER_ROBOT_COUNTS,
    seeds: typing.Sequence[int] = (1, 2),
    parallel: bool = True,
    sweep_result: typing.Optional[SweepResult] = None,
    store: typing.Optional["RunStore"] = None,
    max_workers: typing.Optional[int] = None,
    **overrides: typing.Any,
) -> FigureResult:
    """Figure 2: average robot traveling distance per failure.

    Paper claims: the fixed algorithm has the highest motion overhead;
    the dynamic algorithm tracks the centralized one, saving ~10.8 %
    versus fixed at 16 robots (we assert a 3–25 % band).
    """
    result = sweep_result if sweep_result is not None else sweep(
        _ALGORITHMS,
        robot_counts,
        seeds,
        parallel=parallel,
        store=store,
        max_workers=max_workers,
        **overrides,
    )
    series = {
        algorithm: tuple(
            result.series(algorithm, "mean_travel_distance", robot_counts)
        )
        for algorithm in _ALGORITHMS
    }
    largest = robot_counts[-1]
    fixed_d = result.point(Algorithm.FIXED, largest).mean(
        "mean_travel_distance"
    )
    dynamic_d = result.point(Algorithm.DYNAMIC, largest).mean(
        "mean_travel_distance"
    )
    centralized_d = result.point(Algorithm.CENTRALIZED, largest).mean(
        "mean_travel_distance"
    )
    saving = (fixed_d - dynamic_d) / fixed_d

    claims = (
        ClaimCheck(
            claim="fixed has the highest motion overhead "
            f"(at {largest} robots)",
            holds=fixed_d > dynamic_d and fixed_d > centralized_d,
            detail=(
                f"fixed={fixed_d:.1f}m dynamic={dynamic_d:.1f}m "
                f"centralized={centralized_d:.1f}m"
            ),
        ),
        ClaimCheck(
            claim="dynamic saves ~10.8% travel vs fixed at 16 robots "
            "(band 3-25%)",
            holds=0.03 <= saving <= 0.25,
            detail=f"measured saving {saving * 100:.1f}%",
        ),
        ClaimCheck(
            claim="dynamic tracks centralized (within 15%)",
            holds=abs(dynamic_d - centralized_d) / centralized_d <= 0.15,
            detail=(
                f"dynamic={dynamic_d:.1f}m vs "
                f"centralized={centralized_d:.1f}m"
            ),
        ),
    )
    return FigureResult(
        figure="Figure 2 — average traveling distance per failure (m)",
        x_values=tuple(robot_counts),
        series=series,
        claims=claims,
        sweep_result=result,
    )


def figure3_hops(
    robot_counts: typing.Sequence[int] = PAPER_ROBOT_COUNTS,
    seeds: typing.Sequence[int] = (1, 2),
    parallel: bool = True,
    sweep_result: typing.Optional[SweepResult] = None,
    store: typing.Optional["RunStore"] = None,
    max_workers: typing.Optional[int] = None,
    **overrides: typing.Any,
) -> FigureResult:
    """Figure 3: average message-passing hops per failure.

    Paper claims: fixed/dynamic failure reports stay flat around two
    hops; the centralized algorithm's report and request hops grow with
    the network (it is "less scalable"), and its reports take more hops
    than its requests (sensor vs robot radio range).
    """
    result = sweep_result if sweep_result is not None else sweep(
        _ALGORITHMS,
        robot_counts,
        seeds,
        parallel=parallel,
        store=store,
        max_workers=max_workers,
        **overrides,
    )
    series = {
        "centralized: failure report": tuple(
            result.series(
                Algorithm.CENTRALIZED, "mean_report_hops", robot_counts
            )
        ),
        "centralized: repair request": tuple(
            result.series(
                Algorithm.CENTRALIZED, "mean_request_hops", robot_counts
            )
        ),
        "dynamic: failure report": tuple(
            result.series(
                Algorithm.DYNAMIC, "mean_report_hops", robot_counts
            )
        ),
        "fixed: failure report": tuple(
            result.series(Algorithm.FIXED, "mean_report_hops", robot_counts)
        ),
    }
    central_reports = series["centralized: failure report"]
    central_requests = series["centralized: repair request"]
    flat_series = (
        series["dynamic: failure report"] + series["fixed: failure report"]
    )

    claims = (
        ClaimCheck(
            claim="centralized report hops grow with the network",
            holds=central_reports[-1] > central_reports[0],
            detail=(
                f"{central_reports[0]:.2f} -> {central_reports[-1]:.2f} "
                f"hops from {robot_counts[0]} to {robot_counts[-1]} robots"
            ),
        ),
        ClaimCheck(
            claim="centralized reports take more hops than requests "
            "(sensor 63m vs robot 250m radio)",
            holds=all(
                report > request
                for report, request in zip(central_reports, central_requests)
            ),
            detail=(
                f"reports {[round(v, 2) for v in central_reports]} vs "
                f"requests {[round(v, 2) for v in central_requests]}"
            ),
        ),
        ClaimCheck(
            claim="fixed/dynamic report hops stay flat around two "
            "(band 1.5-3.5)",
            holds=all(1.5 <= v <= 3.5 for v in flat_series),
            detail=f"values {[round(v, 2) for v in flat_series]}",
        ),
    )
    return FigureResult(
        figure="Figure 3 — average message passing hops per failure",
        x_values=tuple(robot_counts),
        series=series,
        claims=claims,
        sweep_result=result,
    )


def figure4_update_transmissions(
    robot_counts: typing.Sequence[int] = PAPER_ROBOT_COUNTS,
    seeds: typing.Sequence[int] = (1, 2),
    parallel: bool = True,
    sweep_result: typing.Optional[SweepResult] = None,
    store: typing.Optional["RunStore"] = None,
    max_workers: typing.Optional[int] = None,
    **overrides: typing.Any,
) -> FigureResult:
    """Figure 4: transmissions for robot location updates per failure.

    Paper claims: the two distributed algorithms flood updates and pay
    an order of magnitude more transmissions than the centralized
    algorithm; the dynamic algorithm pays slightly more than the fixed
    one (its relay scope crosses subarea boundaries).
    """
    result = sweep_result if sweep_result is not None else sweep(
        _ALGORITHMS,
        robot_counts,
        seeds,
        parallel=parallel,
        store=store,
        max_workers=max_workers,
        **overrides,
    )
    series = {
        algorithm: tuple(
            result.series(
                algorithm, "update_transmissions_per_failure", robot_counts
            )
        )
        for algorithm in (
            Algorithm.DYNAMIC,
            Algorithm.FIXED,
            Algorithm.CENTRALIZED,
        )
    }
    dynamic_tx = series[Algorithm.DYNAMIC]
    fixed_tx = series[Algorithm.FIXED]
    central_tx = series[Algorithm.CENTRALIZED]

    claims = (
        ClaimCheck(
            claim="distributed algorithms pay far more update "
            "transmissions than centralized (>=5x)",
            holds=all(
                f >= 5 * c and d >= 5 * c
                for d, f, c in zip(dynamic_tx, fixed_tx, central_tx)
            ),
            detail=(
                f"dynamic {[round(v) for v in dynamic_tx]} / "
                f"fixed {[round(v) for v in fixed_tx]} vs "
                f"centralized {[round(v, 1) for v in central_tx]}"
            ),
        ),
        ClaimCheck(
            claim="dynamic pays slightly more than fixed",
            holds=all(d > f for d, f in zip(dynamic_tx, fixed_tx)),
            detail=(
                f"dynamic {[round(v) for v in dynamic_tx]} vs "
                f"fixed {[round(v) for v in fixed_tx]}"
            ),
        ),
    )
    return FigureResult(
        figure=(
            "Figure 4 — transmissions for location update per failure"
        ),
        x_values=tuple(robot_counts),
        series=series,
        claims=claims,
        sweep_result=result,
    )
