"""Resilience experiment: repair service quality under robot faults.

The paper's evaluation assumes a perfectly reliable maintenance fleet.
:func:`figure_resilience` drops that assumption and sweeps the robot
mean-time-between-failures, measuring how each coordination algorithm's
repair pipeline degrades: what fraction of sensor failures go unrepaired,
how many dispatches must be retried, and how quickly dead robots are
detected by their peers.

The x axis is the robot MTBF in seconds (smaller = more hostile), one
series per (algorithm, loss rate) pair.
"""

from __future__ import annotations

import math
import typing

from repro.deploy.scenario import Algorithm, paper_scenario
from repro.experiments.figures import ClaimCheck, FigureResult
from repro.experiments.runner import SweepPoint, SweepResult, run_many

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.store.store import RunStore

__all__ = ["figure_resilience", "figure_resilience_permanence"]

_ALGORITHMS = (Algorithm.FIXED, Algorithm.DYNAMIC, Algorithm.CENTRALIZED)


def _label(algorithm: str, loss_rate: float) -> str:
    if loss_rate:
        return f"{algorithm} loss={loss_rate:g}"
    return algorithm


def figure_resilience(
    mtbf_values: typing.Sequence[float] = (2_000.0, 8_000.0, 32_000.0),
    loss_rates: typing.Sequence[float] = (0.0,),
    robot_count: int = 4,
    seeds: typing.Sequence[int] = (1, 2),
    parallel: bool = True,
    store: typing.Optional["RunStore"] = None,
    max_workers: typing.Optional[int] = None,
    **overrides: typing.Any,
) -> FigureResult:
    """Unrepaired-failure fraction vs robot MTBF, per algorithm.

    Claims checked (extension, not from the paper): faults actually
    occur and are detected at every grid point; detection latency is
    finite whenever something was detected; and for each series the
    most hostile MTBF is no easier than the most benign one (within a
    small tolerance, since shorter MTBF also means more recoveries).
    """
    configs = []
    cells = []
    for algorithm in _ALGORITHMS:
        for loss_rate in loss_rates:
            for mtbf in mtbf_values:
                for seed in seeds:
                    configs.append(
                        paper_scenario(
                            algorithm,
                            robot_count,
                            seed=seed,
                            loss_rate=loss_rate,
                            robot_mtbf_s=mtbf,
                            **overrides,
                        )
                    )
                    cells.append((_label(algorithm, loss_rate), mtbf))

    ordered, cache = run_many(
        configs,
        parallel=parallel,
        max_workers=max_workers,
        store=store,
    )

    groups: typing.Dict[typing.Tuple[str, float], list] = {}
    for cell, report in zip(cells, ordered):
        groups.setdefault(cell, []).append(report)

    labels = [
        _label(algorithm, loss_rate)
        for algorithm in _ALGORITHMS
        for loss_rate in loss_rates
    ]
    points = tuple(
        SweepPoint(
            algorithm=label,
            robot_count=int(mtbf),
            reports=tuple(groups[(label, mtbf)]),
        )
        for label in labels
        for mtbf in mtbf_values
    )
    result = SweepResult(points=points, cache=cache)

    series = {
        label: tuple(
            result.point(label, int(mtbf)).mean("unrepaired_fraction")
            for mtbf in mtbf_values
        )
        for label in labels
    }

    total_faults = sum(
        report.robot_faults for reports in groups.values() for report in reports
    )
    total_detected = sum(
        report.robot_faults_detected
        for reports in groups.values()
        for report in reports
    )
    latencies = [
        report.mean_fault_detection_latency_s
        for reports in groups.values()
        for report in reports
        if report.robot_faults_detected
    ]
    hostile_not_easier = all(
        series[label][0] >= series[label][-1] - 0.05 for label in labels
    )

    claims = (
        ClaimCheck(
            claim="robot faults occur and are detected across the grid",
            holds=total_faults > 0 and total_detected > 0,
            detail=(
                f"{total_faults} faults, {total_detected} detected "
                f"over {len(configs)} runs"
            ),
        ),
        ClaimCheck(
            claim="fault detection latency is finite when detected",
            holds=all(math.isfinite(value) for value in latencies),
            detail=f"latencies {[round(v, 1) for v in latencies]}",
        ),
        ClaimCheck(
            claim=(
                "shortest MTBF leaves no smaller unrepaired fraction "
                "than the longest (tolerance 0.05)"
            ),
            holds=hostile_not_easier,
            detail="; ".join(
                f"{label}: {[round(v, 3) for v in series[label]]}"
                for label in labels
            ),
        ),
    )
    return FigureResult(
        figure=(
            "Resilience — unrepaired failure fraction vs robot MTBF "
            f"({robot_count} robots)"
        ),
        x_values=tuple(int(mtbf) for mtbf in mtbf_values),
        series=series,
        claims=claims,
        sweep_result=result,
        x_label="robot MTBF (s)",
    )


def figure_resilience_permanence(
    permanent_p_values: typing.Sequence[float] = (0.0, 0.5, 1.0),
    robot_mtbf_s: float = 6_000.0,
    robot_count: int = 4,
    seeds: typing.Sequence[int] = (1, 2),
    parallel: bool = True,
    store: typing.Optional["RunStore"] = None,
    max_workers: typing.Optional[int] = None,
    **overrides: typing.Any,
) -> FigureResult:
    """Unrepaired-failure fraction vs breakdown permanence, per algorithm.

    Holds the robot MTBF fixed and sweeps
    ``robot_fault_permanent_p`` — the probability that a stochastic
    breakdown is a permanent crash rather than a recoverable outage.
    At 0.0 every broken robot returns after its downtime; at 1.0 the
    fleet only shrinks.

    Claims checked (extension): faults occur at every grid point, and
    for each algorithm an all-permanent fleet leaves no smaller
    unrepaired fraction than an all-recoverable one (small tolerance
    for seed noise).
    """
    configs = []
    cells = []
    for algorithm in _ALGORITHMS:
        for permanent_p in permanent_p_values:
            for seed in seeds:
                configs.append(
                    paper_scenario(
                        algorithm,
                        robot_count,
                        seed=seed,
                        robot_mtbf_s=robot_mtbf_s,
                        robot_fault_permanent_p=permanent_p,
                        **overrides,
                    )
                )
                cells.append((algorithm, permanent_p))

    ordered, cache = run_many(
        configs,
        parallel=parallel,
        max_workers=max_workers,
        store=store,
    )

    groups: typing.Dict[typing.Tuple[str, float], list] = {}
    for cell, report in zip(cells, ordered):
        groups.setdefault(cell, []).append(report)

    # SweepPoint keys x by an int; index into the p grid instead of the
    # (fractional) probability itself.
    points = tuple(
        SweepPoint(
            algorithm=algorithm,
            robot_count=index,
            reports=tuple(groups[(algorithm, permanent_p)]),
        )
        for algorithm in _ALGORITHMS
        for index, permanent_p in enumerate(permanent_p_values)
    )
    result = SweepResult(points=points, cache=cache)

    series = {
        algorithm: tuple(
            result.point(algorithm, index).mean("unrepaired_fraction")
            for index in range(len(permanent_p_values))
        )
        for algorithm in _ALGORITHMS
    }

    total_faults = sum(
        report.robot_faults for reports in groups.values() for report in reports
    )
    permanence_hurts = all(
        series[algorithm][-1] >= series[algorithm][0] - 0.05
        for algorithm in _ALGORITHMS
    )
    claims = (
        ClaimCheck(
            claim="robot faults occur across the permanence grid",
            holds=total_faults > 0,
            detail=f"{total_faults} faults over {len(configs)} runs",
        ),
        ClaimCheck(
            claim=(
                "permanent crashes leave no smaller unrepaired fraction "
                "than recoverable ones (tolerance 0.05)"
            ),
            holds=permanence_hurts,
            detail="; ".join(
                f"{algorithm}: {[round(v, 3) for v in series[algorithm]]}"
                for algorithm in _ALGORITHMS
            ),
        ),
    )
    return FigureResult(
        figure=(
            "Resilience — unrepaired failure fraction vs breakdown "
            f"permanence (MTBF {robot_mtbf_s:g} s, {robot_count} robots)"
        ),
        x_values=tuple(range(len(permanent_p_values))),
        series=series,
        claims=claims,
        sweep_result=result,
        x_label="permanent-crash probability (grid index: "
        + ", ".join(f"{i}={p:g}" for i, p in enumerate(permanent_p_values))
        + ")",
    )
