"""Verification experiment: false dispatches under network faults.

A jam or partition silences live sensors, so beacon-timeout detection
produces false positives — and an unverified maintenance fleet drives
out and replaces sensors that are not dead.  :func:`figure_verification`
quantifies the damage and the fix: each algorithm runs the same scripted
partition-plus-jam campaign twice, with the failure-verification
protocol off and on, and the figure reports false dispatches, live
sensors actually replaced, and metres wasted on false trips.

The claims encode the tentpole guarantee: with verification *on*, no
live sensor is ever replaced (on-site checks abort those swaps); with
verification *off*, the same campaign replaces at least one.
"""

from __future__ import annotations

import typing

from repro.deploy.scenario import Algorithm, DetectionMode, paper_scenario
from repro.experiments.figures import ClaimCheck, FigureResult
from repro.experiments.runner import SweepPoint, SweepResult, run_many
from repro.faults.script import FaultEvent, FaultKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.store.store import RunStore

__all__ = ["default_network_campaign", "figure_verification"]

_ALGORITHMS = (Algorithm.FIXED, Algorithm.DYNAMIC, Algorithm.CENTRALIZED)


def default_network_campaign(
    sim_time_s: float,
    area_side_m: float = 400.0,
) -> typing.Tuple[FaultEvent, ...]:
    """A scripted partition + jam sized for a ``robot_count=4`` field.

    The partition isolates one corner quadrant early on (outside
    guardians then suspect live inside guardees, and probes cannot
    cross in — the worst case for false dispatches); a later jam disk
    blinds receivers around the field centre.
    """
    quarter = area_side_m / 4
    return (
        FaultEvent(
            time=sim_time_s / 8,
            kind=FaultKind.PARTITION,
            target="field",
            x=quarter,
            y=quarter,
            radius=1.2 * quarter,
            duration=sim_time_s / 2,
        ),
        FaultEvent(
            time=sim_time_s / 2,
            kind=FaultKind.JAM,
            target="field",
            x=2 * quarter,
            y=2 * quarter,
            radius=1.5 * quarter,
            duration=sim_time_s / 4,
        ),
    )


def figure_verification(
    robot_count: int = 4,
    seeds: typing.Sequence[int] = (1, 2),
    sim_time_s: float = 4_000.0,
    parallel: bool = True,
    store: typing.Optional["RunStore"] = None,
    max_workers: typing.Optional[int] = None,
    **overrides: typing.Any,
) -> FigureResult:
    """False dispatches with verification off vs on, per algorithm.

    X axis: 0 = verification off, 1 = verification on.  Series report
    the false-dispatch count; the claims additionally pin down that the
    verified runs replaced zero live sensors while the unverified runs
    replaced at least one, and that verification wastes no more metres
    than it saves.
    """
    campaign = default_network_campaign(sim_time_s)
    configs = []
    cells = []
    for algorithm in _ALGORITHMS:
        for verify in (False, True):
            for seed in seeds:
                configs.append(
                    paper_scenario(
                        algorithm,
                        robot_count,
                        seed=seed,
                        sim_time_s=sim_time_s,
                        detection_mode=DetectionMode.BEACON,
                        fault_script=campaign,
                        verify_failures=verify,
                        **overrides,
                    )
                )
                cells.append((algorithm, verify))

    ordered, cache = run_many(
        configs,
        parallel=parallel,
        max_workers=max_workers,
        store=store,
    )

    groups: typing.Dict[typing.Tuple[str, bool], list] = {}
    for cell, report in zip(cells, ordered):
        groups.setdefault(cell, []).append(report)

    points = tuple(
        SweepPoint(
            algorithm=algorithm,
            robot_count=int(verify),
            reports=tuple(groups[(algorithm, verify)]),
        )
        for algorithm in _ALGORITHMS
        for verify in (False, True)
    )
    result = SweepResult(points=points, cache=cache)

    series = {
        algorithm: tuple(
            result.point(algorithm, int(verify)).mean("false_dispatches")
            for verify in (False, True)
        )
        for algorithm in _ALGORITHMS
    }

    unverified = [
        report
        for (algorithm, verify), reports in groups.items()
        if not verify
        for report in reports
    ]
    verified = [
        report
        for (algorithm, verify), reports in groups.items()
        if verify
        for report in reports
    ]
    baseline_replaces_alive = sum(r.false_replacements for r in unverified)
    verified_replaces_alive = sum(r.false_replacements for r in verified)
    verified_aborts = sum(r.aborted_replacements for r in verified)

    claims = (
        ClaimCheck(
            claim=(
                "without verification the campaign replaces at least "
                "one live sensor"
            ),
            holds=baseline_replaces_alive > 0,
            detail=(
                f"{baseline_replaces_alive} live sensor(s) replaced "
                f"over {len(unverified)} unverified runs"
            ),
        ),
        ClaimCheck(
            claim="with verification no live sensor is ever replaced",
            holds=verified_replaces_alive == 0,
            detail=(
                f"{verified_replaces_alive} replaced, "
                f"{verified_aborts} swap(s) aborted on-site"
            ),
        ),
        ClaimCheck(
            claim="the verification protocol is exercised (suspicions open)",
            holds=all(r.suspicions > 0 for r in verified),
            detail=(
                f"suspicions per verified run: "
                f"{[r.suspicions for r in verified]}"
            ),
        ),
    )
    return FigureResult(
        figure=(
            "Verification — false dispatches under a partition+jam "
            f"campaign ({robot_count} robots)"
        ),
        x_values=(0, 1),
        series=series,
        claims=claims,
        sweep_result=result,
        x_label="failure verification (0=off, 1=on)",
    )
