"""Plain-text rendering of experiment results.

The harness prints each figure as the table of series the paper plots —
one row per robot count, one column per algorithm/metric — so a terminal
diff against the paper's reported numbers is direct.
"""

from __future__ import annotations

import math
import typing

__all__ = ["render_table", "render_series_table"]


def render_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[typing.Any]],
    title: typing.Optional[str] = None,
) -> str:
    """A boxed monospace table."""
    formatted_rows = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [
        max(
            len(str(headers[i])),
            *(len(row[i]) for row in formatted_rows),
        )
        if formatted_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def line(cells: typing.Sequence[str]) -> str:
        return (
            "| "
            + " | ".join(
                cell.rjust(widths[i]) for i, cell in enumerate(cells)
            )
            + " |"
        )

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: typing.List[str] = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line([str(h) for h in headers]))
    out.append(separator)
    for row in formatted_rows:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)


def render_series_table(
    x_label: str,
    x_values: typing.Sequence[typing.Any],
    series: typing.Mapping[str, typing.Sequence[float]],
    title: typing.Optional[str] = None,
) -> str:
    """A table with one row per x value and one column per series."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title)


def _format_cell(cell: typing.Any) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "-"
        return f"{cell:.2f}"
    return str(cell)
