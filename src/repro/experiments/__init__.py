"""Experiment harness: sweeps, figures, ablations, text rendering."""

from repro.experiments.ablations import (
    AblationResult,
    dispatch_policy_ablation,
    efficient_broadcast_ablation,
    partition_ablation,
    update_threshold_ablation,
)
from repro.experiments.figures import (
    ClaimCheck,
    FigureResult,
    figure2_motion_overhead,
    figure3_hops,
    figure4_update_transmissions,
)
from repro.experiments.degraded import (
    default_degraded_campaign,
    figure_degraded,
)
from repro.experiments.render import render_series_table, render_table
from repro.experiments.resilience import (
    figure_resilience,
    figure_resilience_permanence,
)
from repro.experiments.verification import (
    default_network_campaign,
    figure_verification,
)
from repro.experiments.runner import (
    CacheStats,
    SweepPoint,
    SweepResult,
    run_config,
    run_config_timed,
    run_many,
    sweep,
)

__all__ = [
    "AblationResult",
    "CacheStats",
    "ClaimCheck",
    "FigureResult",
    "SweepPoint",
    "SweepResult",
    "dispatch_policy_ablation",
    "efficient_broadcast_ablation",
    "partition_ablation",
    "update_threshold_ablation",
    "figure2_motion_overhead",
    "figure3_hops",
    "figure4_update_transmissions",
    "default_degraded_campaign",
    "default_network_campaign",
    "figure_degraded",
    "figure_resilience",
    "figure_resilience_permanence",
    "figure_verification",
    "render_series_table",
    "render_table",
    "run_config",
    "run_config_timed",
    "run_many",
    "sweep",
]
