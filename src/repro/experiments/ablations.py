"""Programmatic ablation studies.

The benchmark suite prints these; the functions live here so library
users can run the same studies and get structured results back.  Each
returns an :class:`AblationResult` with one labelled
:class:`~repro.metrics.RunReport` (or metric dict) per variant.

Every study executes through :func:`~repro.experiments.runner.run_many`,
so an optional :class:`~repro.store.RunStore` serves previously computed
variants from disk, and ``max_workers`` fans fresh variants out over a
process pool.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.deploy.scenario import (
    Algorithm,
    DispatchPolicy,
    PartitionStyle,
    ScenarioConfig,
    paper_scenario,
)
from repro.experiments.render import render_table
from repro.experiments.runner import run_many
from repro.metrics.collector import RunReport

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.store.store import RunStore

__all__ = [
    "AblationResult",
    "partition_ablation",
    "update_threshold_ablation",
    "dispatch_policy_ablation",
    "efficient_broadcast_ablation",
]


@dataclasses.dataclass(frozen=True, slots=True)
class AblationResult:
    """Labelled run reports for one ablation study."""

    name: str
    variants: typing.Dict[str, RunReport]
    #: Which columns of the reports the study is about.
    metrics: typing.Tuple[str, ...]

    def table(self) -> str:
        """Rendered comparison table."""
        rows = [
            [label] + [getattr(report, metric) for metric in self.metrics]
            for label, report in self.variants.items()
        ]
        return render_table(
            ["variant", *self.metrics], rows, title=self.name
        )

    def metric(self, label: str, metric: str) -> float:
        """One cell of the study."""
        return getattr(self.variants[label], metric)


def _run_variants(
    configs: typing.Sequence[ScenarioConfig],
    store: typing.Optional["RunStore"],
    max_workers: typing.Optional[int],
) -> typing.List[RunReport]:
    """Execute a study's configs (parallel only when asked via --jobs)."""
    reports, _cache = run_many(
        configs,
        parallel=max_workers is not None and max_workers > 1,
        max_workers=max_workers,
        store=store,
    )
    return reports


def partition_ablation(
    robot_count: int = 9,
    seeds: typing.Sequence[int] = (1,),
    store: typing.Optional["RunStore"] = None,
    max_workers: typing.Optional[int] = None,
    **overrides: typing.Any,
) -> AblationResult:
    """Square vs staggered subarea shape for the fixed algorithm
    (paper §4.3.1: "negligible difference")."""
    styles = (PartitionStyle.SQUARE, PartitionStyle.STAGGERED)
    configs = [
        paper_scenario(
            Algorithm.FIXED,
            robot_count,
            seed=seed,
            partition=style,
            **overrides,
        )
        for style in styles
        for seed in seeds
    ]
    reports = _run_variants(configs, store, max_workers)
    variants = {}
    for position, style in enumerate(styles):
        cell = reports[position * len(seeds):(position + 1) * len(seeds)]
        variants[style] = _mean_report(cell)
    return AblationResult(
        name="fixed-algorithm partition shape",
        variants=variants,
        metrics=(
            "mean_travel_distance",
            "update_transmissions_per_failure",
            "mean_report_hops",
        ),
    )


def update_threshold_ablation(
    thresholds: typing.Sequence[float] = (10.0, 20.0, 40.0),
    algorithm: str = Algorithm.DYNAMIC,
    robot_count: int = 9,
    seed: int = 1,
    store: typing.Optional["RunStore"] = None,
    max_workers: typing.Optional[int] = None,
    **overrides: typing.Any,
) -> AblationResult:
    """Location-update threshold sweep (paper §4.2 uses 20 m)."""
    configs = [
        paper_scenario(
            algorithm,
            robot_count,
            seed=seed,
            update_threshold_m=threshold,
            **overrides,
        )
        for threshold in thresholds
    ]
    reports = _run_variants(configs, store, max_workers)
    variants = {
        f"{threshold:g} m": report
        for threshold, report in zip(thresholds, reports)
    }
    return AblationResult(
        name="robot location-update threshold",
        variants=variants,
        metrics=(
            "update_transmissions_per_failure",
            "report_delivery_ratio",
            "repaired",
        ),
    )


def dispatch_policy_ablation(
    robot_count: int = 9,
    seed: int = 1,
    store: typing.Optional["RunStore"] = None,
    max_workers: typing.Optional[int] = None,
    **overrides: typing.Any,
) -> AblationResult:
    """Closest (paper) vs load-aware dispatch in the centralized
    algorithm."""
    configs = [
        paper_scenario(
            Algorithm.CENTRALIZED,
            robot_count,
            seed=seed,
            dispatch_policy=policy,
            **overrides,
        )
        for policy in DispatchPolicy.ALL
    ]
    reports = _run_variants(configs, store, max_workers)
    variants = dict(zip(DispatchPolicy.ALL, reports))
    return AblationResult(
        name="central-manager dispatch policy",
        variants=variants,
        metrics=(
            "mean_travel_distance",
            "mean_repair_latency",
            "repaired",
        ),
    )


def efficient_broadcast_ablation(
    algorithms: typing.Sequence[str] = (
        Algorithm.FIXED,
        Algorithm.DYNAMIC,
    ),
    robot_count: int = 9,
    seed: int = 1,
    store: typing.Optional["RunStore"] = None,
    max_workers: typing.Optional[int] = None,
    **overrides: typing.Any,
) -> AblationResult:
    """Flood-everyone vs connected-dominating-set relays (paper future
    work)."""
    cells = [
        (algorithm, efficient)
        for algorithm in algorithms
        for efficient in (False, True)
    ]
    configs = [
        paper_scenario(
            algorithm,
            robot_count,
            seed=seed,
            efficient_broadcast=efficient,
            **overrides,
        )
        for algorithm, efficient in cells
    ]
    reports = _run_variants(configs, store, max_workers)
    variants = {
        f"{algorithm}/{'cds' if efficient else 'all'}": report
        for (algorithm, efficient), report in zip(cells, reports)
    }
    return AblationResult(
        name="efficient (dominating-set) broadcast",
        variants=variants,
        metrics=(
            "update_transmissions_per_failure",
            "repaired",
            "report_delivery_ratio",
        ),
    )


def _mean_report(reports: typing.Sequence[RunReport]) -> RunReport:
    """Average the numeric fields of several reports (same shape)."""
    if len(reports) == 1:
        return reports[0]
    first = reports[0]
    n = len(reports)
    return dataclasses.replace(
        first,
        mean_travel_distance=sum(
            r.mean_travel_distance for r in reports
        )
        / n,
        mean_repair_latency=sum(r.mean_repair_latency for r in reports)
        / n,
        mean_report_hops=sum(r.mean_report_hops for r in reports) / n,
        mean_request_hops=sum(r.mean_request_hops for r in reports) / n,
        update_transmissions_per_failure=sum(
            r.update_transmissions_per_failure for r in reports
        )
        / n,
        report_delivery_ratio=sum(
            r.report_delivery_ratio for r in reports
        )
        / n,
        failures=sum(r.failures for r in reports) // n,
        repaired=sum(r.repaired for r in reports) // n,
    )
