"""Experiment runner: replicated sweeps over scenario configurations.

The paper's figures plot one metric against the number of maintenance
robots (4, 9, 16) for each algorithm.  :func:`sweep` runs the cross
product of algorithms × robot counts × seeds and returns every
:class:`~repro.metrics.RunReport`, optionally in parallel across
processes (each run is an independent, deterministic simulation).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import typing

from repro.core.runtime import ScenarioRuntime
from repro.deploy.scenario import ScenarioConfig, paper_scenario
from repro.metrics.aggregate import SummaryStats, summarize
from repro.metrics.collector import RunReport

__all__ = ["SweepPoint", "SweepResult", "run_config", "sweep"]


def run_config(config: ScenarioConfig) -> RunReport:
    """Run one scenario to completion and return its report.

    Module-level so it can cross a process boundary.
    """
    return ScenarioRuntime(config).run()


@dataclasses.dataclass(frozen=True, slots=True)
class SweepPoint:
    """One (algorithm, robot count) grid point with its replicates."""

    algorithm: str
    robot_count: int
    reports: typing.Tuple[RunReport, ...]

    def stat(self, metric: str) -> SummaryStats:
        """Summary of attribute *metric* over the replicates."""
        return summarize(
            [getattr(report, metric) for report in self.reports]
        )

    def mean(self, metric: str) -> float:
        """Mean of attribute *metric* over the replicates."""
        return self.stat(metric).mean


@dataclasses.dataclass(frozen=True, slots=True)
class SweepResult:
    """All grid points of one sweep."""

    points: typing.Tuple[SweepPoint, ...]

    def point(self, algorithm: str, robot_count: int) -> SweepPoint:
        """The grid point for (*algorithm*, *robot_count*)."""
        for point in self.points:
            if (
                point.algorithm == algorithm
                and point.robot_count == robot_count
            ):
                return point
        raise KeyError((algorithm, robot_count))

    def series(
        self,
        algorithm: str,
        metric: str,
        robot_counts: typing.Sequence[int],
    ) -> typing.List[float]:
        """Metric means for *algorithm* across *robot_counts*, in order."""
        return [
            self.point(algorithm, count).mean(metric)
            for count in robot_counts
        ]

    def algorithms(self) -> typing.List[str]:
        """Distinct algorithms present, in first-seen order."""
        seen: typing.List[str] = []
        for point in self.points:
            if point.algorithm not in seen:
                seen.append(point.algorithm)
        return seen

    def robot_counts(self) -> typing.List[int]:
        """Distinct robot counts present, ascending."""
        return sorted({point.robot_count for point in self.points})


def sweep(
    algorithms: typing.Sequence[str],
    robot_counts: typing.Sequence[int],
    seeds: typing.Sequence[int] = (1,),
    parallel: bool = True,
    progress: typing.Optional[typing.Callable[[str], None]] = None,
    **overrides: typing.Any,
) -> SweepResult:
    """Run every (algorithm, robot_count, seed) combination.

    Parameters
    ----------
    algorithms, robot_counts, seeds:
        The grid.  Each cell uses the paper's §4.1 parameters with
        *overrides* applied (e.g. ``sim_time_s=16_000`` to shorten runs).
    parallel:
        Fan runs out over a process pool (runs are independent).
    progress:
        Optional callback invoked with a human-readable line as each run
        finishes.
    """
    configs: typing.List[ScenarioConfig] = []
    for algorithm in algorithms:
        for robot_count in robot_counts:
            for seed in seeds:
                configs.append(
                    paper_scenario(
                        algorithm, robot_count, seed=seed, **overrides
                    )
                )

    reports: typing.Dict[ScenarioConfig, RunReport] = {}
    if parallel and len(configs) > 1:
        with concurrent.futures.ProcessPoolExecutor() as pool:
            futures = {
                pool.submit(run_config, config): config
                for config in configs
            }
            for future in concurrent.futures.as_completed(futures):
                config = futures[future]
                reports[config] = future.result()
                if progress is not None:
                    progress(f"done: {config.describe()}")
    else:
        for config in configs:
            reports[config] = run_config(config)
            if progress is not None:
                progress(f"done: {config.describe()}")

    points: typing.List[SweepPoint] = []
    for algorithm in algorithms:
        for robot_count in robot_counts:
            cell = tuple(
                reports[config]
                for config in configs
                if config.algorithm == algorithm
                and config.robot_count == robot_count
            )
            points.append(
                SweepPoint(
                    algorithm=algorithm,
                    robot_count=robot_count,
                    reports=cell,
                )
            )
    return SweepResult(points=tuple(points))
