"""Experiment runner: replicated sweeps over scenario configurations.

The paper's figures plot one metric against the number of maintenance
robots (4, 9, 16) for each algorithm.  :func:`sweep` runs the cross
product of algorithms × robot counts × seeds and returns every
:class:`~repro.metrics.RunReport`, optionally in parallel across
processes (each run is an independent, deterministic simulation).

When a :class:`~repro.store.RunStore` is supplied, the grid is first
partitioned into cache **hits** (loaded from disk, zero simulation) and
**misses** (fanned out to the process pool, then persisted as each run
finishes).  Because every completed run is written before the next one
is awaited, an interrupted sweep resumes for free: rerunning it only
executes the missing cells.

The parallel path is a **chunked executor**: misses are grouped by
their placement-relevant config subset (see
:func:`~repro.deploy.placement_cache.placement_key`), sliced into a
bounded number of contiguous chunks, and each chunk runs sequentially
inside one persistent worker of a spawn-context pool.  One process
task per *chunk* instead of per *run* amortizes task pickling and the
spawn interpreter/import cost over many runs, and grouping means a
worker's per-process placement cache is hot for every run in its chunk
(replicates and algorithm variants sharing a deployment reuse the
computed node positions).  Results still come back per run into the
parent, which writes them to the store one by one — a killed batch
loses at most its in-flight chunks — and are returned in input order.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import os
import typing

from repro.core.runtime import ScenarioRuntime
from repro.deploy.placement_cache import placement_key
from repro.deploy.scenario import ScenarioConfig, paper_scenario
from repro.net.radio import sensor_radio
from repro.metrics.aggregate import SummaryStats, summarize
from repro.metrics.collector import RunReport
from repro.store.provenance import perf_clock

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.store.store import RunStore

__all__ = [
    "CacheStats",
    "SweepPoint",
    "SweepResult",
    "run_config",
    "run_config_timed",
    "run_many",
    "sweep",
]


def run_config(config: ScenarioConfig) -> RunReport:
    """Run one scenario to completion and return its report.

    Module-level so it can cross a process boundary.
    """
    return ScenarioRuntime(config).run()


def run_config_timed(
    config: ScenarioConfig,
    on_runtime: typing.Optional[
        typing.Callable[[ScenarioRuntime], None]
    ] = None,
) -> typing.Tuple[RunReport, float]:
    """:func:`run_config` plus the measured wall-clock duration.

    The duration is provenance for store manifests only — it never
    feeds back into the simulation (which runs purely on virtual time).

    *on_runtime*, when given, receives the wired
    :class:`ScenarioRuntime` just before the simulation starts.  The
    service's worker uses it to watch ``sim.now`` /
    ``sim.processed_events`` as a liveness signal: its lease keeper
    only renews while the simulation is actually advancing, so an
    alive-but-wedged worker goes lease-stale and gets requeued.
    """
    started = perf_clock()
    if on_runtime is None:
        report = run_config(config)
    else:
        runtime = ScenarioRuntime(config)
        on_runtime(runtime)
        report = runtime.run()
    return report, perf_clock() - started


#: Chunks produced per pool worker.  More than one keeps the pool
#: load-balanced when run durations differ; a small factor keeps chunks
#: big enough to amortize per-task overhead and bounds how much work an
#: interrupted batch can lose (completed chunks are already persisted).
_CHUNKS_PER_WORKER = 4

#: Worker pools use the spawn start method, matching the service's
#: process pools: workers start from a fresh interpreter, so
#: fork-inherited module state (monkeypatches, caches, open handles)
#: cannot leak into sweep runs.
_MP_START_METHOD = "spawn"


def _run_chunk(
    configs: typing.Sequence[ScenarioConfig],
) -> typing.List[typing.Tuple[RunReport, float]]:
    """Run a chunk of configs sequentially in one worker process.

    Module-level so it can cross a process boundary.  Runs in chunk
    order, which the parent arranged to be placement-grouped, so the
    worker's placement cache is hot from the second run of each group
    on.
    """
    return [run_config_timed(config) for config in configs]


def _split_chunks(
    items: typing.List[typing.Tuple[int, ScenarioConfig]],
    chunk_count: int,
) -> typing.List[typing.List[typing.Tuple[int, ScenarioConfig]]]:
    """Split *items* into *chunk_count* contiguous, balanced slices."""
    base, extra = divmod(len(items), chunk_count)
    chunks = []
    start = 0
    for index in range(chunk_count):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return [chunk for chunk in chunks if chunk]


@dataclasses.dataclass(frozen=True, slots=True)
class CacheStats:
    """How a batch of runs split between store hits and executions."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of runs served from the store (0.0 when empty)."""
        return self.hits / self.total if self.total else 0.0


def run_many(
    configs: typing.Sequence[ScenarioConfig],
    parallel: bool = True,
    max_workers: typing.Optional[int] = None,
    store: typing.Optional["RunStore"] = None,
    progress: typing.Optional[typing.Callable[[str], None]] = None,
) -> typing.Tuple[typing.List[RunReport], CacheStats]:
    """Run *configs*, consulting and feeding *store* when given.

    Returns the reports in the same order as *configs*, plus the
    hit/miss split.  Misses are persisted one by one as they complete,
    so a killed batch leaves everything already finished reusable.

    The parallel path groups misses by placement key into contiguous
    chunks executed by a spawn-context worker pool (one process task
    per chunk — see the module docstring); the serial path runs
    in-process in input order.
    """
    reports: typing.Dict[int, RunReport] = {}
    misses: typing.List[typing.Tuple[int, ScenarioConfig]] = []
    hits = 0
    for index, config in enumerate(configs):
        cached = store.get(config) if store is not None else None
        if cached is not None:
            reports[index] = cached
            hits += 1
            if progress is not None:
                progress(f"cached: {config.describe()}")
        else:
            misses.append((index, config))

    if max_workers is not None and max_workers < 2:
        parallel = False
    if parallel and len(misses) > 1:
        workers = (
            max_workers
            if max_workers is not None
            else os.cpu_count() or 1
        )
        # Stable-sort misses so configs sharing a deployment sit next
        # to each other (then in input order); contiguous chunks then
        # maximize each worker's placement-cache reuse.
        radio_range_m = sensor_radio().range_m
        grouped = sorted(
            misses,
            key=lambda item: (
                placement_key(item[1], radio_range_m),
                item[0],
            ),
        )
        chunks = _split_chunks(
            grouped, min(len(grouped), workers * _CHUNKS_PER_WORKER)
        )
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(chunks)),
            mp_context=multiprocessing.get_context(_MP_START_METHOD),
        ) as pool:
            futures = {
                pool.submit(
                    _run_chunk, [config for _, config in chunk]
                ): chunk
                for chunk in chunks
            }
            for future in concurrent.futures.as_completed(futures):
                chunk = futures[future]
                for (index, config), (report, duration) in zip(
                    chunk, future.result()
                ):
                    if store is not None:
                        store.put(config, report, duration_s=duration)
                    reports[index] = report
                    if progress is not None:
                        progress(f"done: {config.describe()}")
    else:
        for index, config in misses:
            report, duration = run_config_timed(config)
            if store is not None:
                store.put(config, report, duration_s=duration)
            reports[index] = report
            if progress is not None:
                progress(f"done: {config.describe()}")

    ordered = [reports[index] for index in range(len(configs))]
    return ordered, CacheStats(hits=hits, misses=len(misses))


@dataclasses.dataclass(frozen=True, slots=True)
class SweepPoint:
    """One (algorithm, robot count) grid point with its replicates."""

    algorithm: str
    robot_count: int
    reports: typing.Tuple[RunReport, ...]

    def stat(self, metric: str) -> SummaryStats:
        """Summary of attribute *metric* over the replicates."""
        return summarize(
            [getattr(report, metric) for report in self.reports]
        )

    def mean(self, metric: str) -> float:
        """Mean of attribute *metric* over the replicates."""
        return self.stat(metric).mean


@dataclasses.dataclass(frozen=True, slots=True)
class SweepResult:
    """All grid points of one sweep."""

    points: typing.Tuple[SweepPoint, ...]
    #: Store hit/miss split of the sweep (all misses when no store).
    cache: CacheStats = CacheStats()

    def point(self, algorithm: str, robot_count: int) -> SweepPoint:
        """The grid point for (*algorithm*, *robot_count*)."""
        for point in self.points:
            if (
                point.algorithm == algorithm
                and point.robot_count == robot_count
            ):
                return point
        raise KeyError((algorithm, robot_count))

    def series(
        self,
        algorithm: str,
        metric: str,
        robot_counts: typing.Sequence[int],
    ) -> typing.List[float]:
        """Metric means for *algorithm* across *robot_counts*, in order."""
        return [
            self.point(algorithm, count).mean(metric)
            for count in robot_counts
        ]

    def algorithms(self) -> typing.List[str]:
        """Distinct algorithms present, in first-seen order."""
        seen: typing.List[str] = []
        for point in self.points:
            if point.algorithm not in seen:
                seen.append(point.algorithm)
        return seen

    def robot_counts(self) -> typing.List[int]:
        """Distinct robot counts present, ascending."""
        return sorted({point.robot_count for point in self.points})


def sweep(
    algorithms: typing.Sequence[str],
    robot_counts: typing.Sequence[int],
    seeds: typing.Sequence[int] = (1,),
    parallel: bool = True,
    progress: typing.Optional[typing.Callable[[str], None]] = None,
    store: typing.Optional["RunStore"] = None,
    max_workers: typing.Optional[int] = None,
    **overrides: typing.Any,
) -> SweepResult:
    """Run every (algorithm, robot_count, seed) combination.

    Parameters
    ----------
    algorithms, robot_counts, seeds:
        The grid.  Each cell uses the paper's §4.1 parameters with
        *overrides* applied (e.g. ``sim_time_s=16_000`` to shorten runs).
    parallel:
        Fan runs out over a process pool (runs are independent).
    progress:
        Optional callback invoked with a human-readable line as each run
        finishes (or is served from the store).
    store:
        Optional :class:`~repro.store.RunStore`.  Cached cells are
        loaded without simulating; executed cells are persisted as they
        complete, making interrupted sweeps resumable.
    max_workers:
        Process-pool width for the parallel path (``None`` lets the
        executor pick; ``1`` forces serial execution).
    """
    configs: typing.List[ScenarioConfig] = []
    for algorithm in algorithms:
        for robot_count in robot_counts:
            for seed in seeds:
                configs.append(
                    paper_scenario(
                        algorithm, robot_count, seed=seed, **overrides
                    )
                )

    ordered, cache = run_many(
        configs,
        parallel=parallel,
        max_workers=max_workers,
        store=store,
        progress=progress,
    )

    # Group reports in one pass keyed on (algorithm, robot_count); the
    # grid is rebuilt in sweep order below, so a full rescan per cell
    # (O(grid²)) is never needed.
    groups: typing.Dict[
        typing.Tuple[str, int], typing.List[RunReport]
    ] = {}
    for config, report in zip(configs, ordered):
        groups.setdefault(
            (config.algorithm, config.robot_count), []
        ).append(report)

    points = [
        SweepPoint(
            algorithm=algorithm,
            robot_count=robot_count,
            reports=tuple(groups.get((algorithm, robot_count), ())),
        )
        for algorithm in algorithms
        for robot_count in robot_counts
    ]
    return SweepResult(points=tuple(points), cache=cache)
