"""Degraded-mode experiment: outage backlog + jam, adaptation off vs on.

:func:`figure_degraded` runs one scripted *degraded-mode campaign* —
three staggered robot breakdowns (a fleet outage that dumps their
queues on the survivors) under a long-lived central jam disk, on a
lossy channel with failure verification armed — twice per algorithm:
once with every degraded-mode flag off (the PR-8 fault-tolerant
baseline) and once with cooperative backlog repair, adaptive
verification, and jam-aware dispatch all on.

A separate clean-channel pair (no faults, zero loss) isolates the
adaptive-verification latency claim: on a clean channel the observed
loss controller tightens the suspicion timeout, so verified failures
confirm measurably faster than with the static config timeout.
"""

from __future__ import annotations

import typing

from repro.deploy.scenario import Algorithm, DetectionMode, paper_scenario
from repro.experiments.figures import ClaimCheck, FigureResult
from repro.experiments.runner import SweepPoint, SweepResult, run_many
from repro.faults.script import FaultEvent, FaultKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.store.store import RunStore

__all__ = ["default_degraded_campaign", "figure_degraded"]

_ALGORITHMS = (Algorithm.FIXED, Algorithm.DYNAMIC, Algorithm.CENTRALIZED)

#: The clean-channel latency comparison runs on one algorithm only —
#: centralized exercises the full desk/probe ladder.
_CLEAN_ALGORITHM = Algorithm.CENTRALIZED


def default_degraded_campaign(
    sim_time_s: float,
    area_side_m: float = 400.0,
) -> typing.Tuple[FaultEvent, ...]:
    """Staggered 3-robot outage under a long central jam disk.

    Sized for a ``robot_count=4`` field: three of the four robots break
    down within 100 s of each other early in the run and stay down for
    a quarter of it, so the survivor inherits (via re-dispatch) a
    backlog well over any reasonable ``coop_backlog_threshold``; the
    jam disk covers the field centre for most of the outage, blinding
    receivers inside it and obstructing cross-field repair legs.
    """
    outage_start = sim_time_s / 10
    outage_duration = sim_time_s / 4
    return (
        FaultEvent(
            time=0.075 * sim_time_s,
            kind=FaultKind.JAM,
            target="field",
            x=area_side_m / 2,
            y=area_side_m / 2,
            radius=0.325 * area_side_m,
            duration=0.625 * sim_time_s,
        ),
        FaultEvent(
            time=outage_start,
            kind=FaultKind.BREAKDOWN,
            target="robot-00",
            duration=outage_duration,
        ),
        FaultEvent(
            time=outage_start + 50.0,
            kind=FaultKind.BREAKDOWN,
            target="robot-01",
            duration=outage_duration,
        ),
        FaultEvent(
            time=outage_start + 100.0,
            kind=FaultKind.BREAKDOWN,
            target="robot-02",
            duration=outage_duration,
        ),
    )


def figure_degraded(
    robot_count: int = 4,
    seeds: typing.Sequence[int] = (1, 2),
    sim_time_s: float = 4_000.0,
    parallel: bool = True,
    store: typing.Optional["RunStore"] = None,
    max_workers: typing.Optional[int] = None,
    **overrides: typing.Any,
) -> FigureResult:
    """Repair latency under the degraded campaign, adaptation off vs on.

    X axis: 0 = degraded-mode flags off, 1 = cooperative repair +
    adaptive verification + jam-aware dispatch all on.  Series report
    mean repair latency per algorithm; the claims pin down that the
    new machinery is actually exercised (backlog items transferred,
    jam detours driven), that it stays safe (zero live sensors
    replaced under loss + jam + robot chaos), and that on a clean
    channel adaptive verification confirms failures faster.
    """
    campaign = default_degraded_campaign(sim_time_s)
    configs = []
    cells = []
    for algorithm in _ALGORITHMS:
        for degraded in (False, True):
            for seed in seeds:
                configs.append(
                    paper_scenario(
                        algorithm,
                        robot_count,
                        seed=seed,
                        sim_time_s=sim_time_s,
                        detection_mode=DetectionMode.BEACON,
                        loss_rate=0.05,
                        mean_lifetime_s=900.0,
                        fault_script=campaign,
                        verify_failures=True,
                        adaptive_verify=degraded,
                        coop_repair=degraded,
                        jam_aware=degraded,
                        **overrides,
                    )
                )
                cells.append((algorithm, degraded))

    # Clean-channel pair: same field, no faults, lossless air; only the
    # adaptive flag differs, so any latency delta is the controller's.
    clean_cells = []
    for adaptive in (False, True):
        for seed in seeds:
            configs.append(
                paper_scenario(
                    _CLEAN_ALGORITHM,
                    robot_count,
                    seed=seed,
                    sim_time_s=sim_time_s,
                    detection_mode=DetectionMode.BEACON,
                    loss_rate=0.0,
                    mean_lifetime_s=900.0,
                    verify_failures=True,
                    adaptive_verify=adaptive,
                    **overrides,
                )
            )
            clean_cells.append(adaptive)

    ordered, cache = run_many(
        configs,
        parallel=parallel,
        max_workers=max_workers,
        store=store,
    )
    campaign_reports = ordered[: len(cells)]
    clean_reports = ordered[len(cells):]

    groups: typing.Dict[typing.Tuple[str, bool], list] = {}
    for cell, report in zip(cells, campaign_reports):
        groups.setdefault(cell, []).append(report)
    clean_groups: typing.Dict[bool, list] = {}
    for adaptive, report in zip(clean_cells, clean_reports):
        clean_groups.setdefault(adaptive, []).append(report)

    points = tuple(
        SweepPoint(
            algorithm=algorithm,
            robot_count=int(degraded),
            reports=tuple(groups[(algorithm, degraded)]),
        )
        for algorithm in _ALGORITHMS
        for degraded in (False, True)
    )
    result = SweepResult(points=points, cache=cache)

    series = {
        algorithm: tuple(
            result.point(algorithm, int(degraded)).mean(
                "mean_repair_latency"
            )
            for degraded in (False, True)
        )
        for algorithm in _ALGORITHMS
    }

    degraded_on = [
        report
        for (algorithm, degraded), reports in groups.items()
        if degraded
        for report in reports
    ]
    coop_claims = sum(r.coop_claims for r in degraded_on)
    coop_offers = sum(r.coop_offers for r in degraded_on)
    episodes = sum(r.backlog_episodes for r in degraded_on)
    reroutes = sum(r.reroutes for r in degraded_on)
    detour_m = sum(r.reroute_detour_m for r in degraded_on)
    false_replacements = sum(r.false_replacements for r in degraded_on)
    quorums: typing.Dict[str, int] = {}
    for report in degraded_on:
        for quorum, count in report.adaptive_quorum_histogram.items():
            quorums[quorum] = quorums.get(quorum, 0) + count

    def _clean_latency(adaptive: bool) -> float:
        reports = clean_groups.get(adaptive, [])
        values = [
            r.mean_verification_latency_s
            for r in reports
            if r.mean_verification_latency_s == r.mean_verification_latency_s
        ]
        return sum(values) / len(values) if values else float("nan")

    static_latency = _clean_latency(False)
    adaptive_latency = _clean_latency(True)

    claims = (
        ClaimCheck(
            claim=(
                "cooperative repair transfers backlog items during the "
                "outage (offers made, claims accepted, episodes drained)"
            ),
            holds=coop_offers > 0 and coop_claims > 0 and episodes > 0,
            detail=(
                f"{coop_offers} offer(s), {coop_claims} transfer(s), "
                f"{episodes} backlog episode(s) across "
                f"{len(degraded_on)} degraded runs"
            ),
        ),
        ClaimCheck(
            claim=(
                "jam-aware dispatch drives tangent detours around the "
                "jam disk"
            ),
            holds=reroutes > 0 and detour_m > 0.0,
            detail=f"{reroutes} reroute(s), {detour_m:.1f} detour metres",
        ),
        ClaimCheck(
            claim=(
                "no live sensor is replaced under loss + jam + robot "
                "chaos with adaptation on"
            ),
            holds=false_replacements == 0,
            detail=(
                f"{false_replacements} false replacement(s); adaptive "
                f"quorum histogram {quorums}"
            ),
        ),
        ClaimCheck(
            claim=(
                "on a clean channel adaptive verification confirms "
                "failures faster than the static timeout"
            ),
            holds=adaptive_latency < static_latency,
            detail=(
                f"mean verification latency {adaptive_latency:.1f} s "
                f"adaptive vs {static_latency:.1f} s static"
            ),
        ),
    )
    return FigureResult(
        figure=(
            "Degraded mode — outage backlog under a jam, adaptation "
            f"off vs on ({robot_count} robots)"
        ),
        x_values=(0, 1),
        series=series,
        claims=claims,
        sweep_result=result,
        x_label="degraded-mode adaptation (0=off, 1=on)",
    )
