"""Dashboard-friendly JSON export of stored run results.

Renders :class:`~repro.store.StoreEntry` objects into **flat, strict
JSON** documents (in the style of a static web export): headline
metrics, per-algorithm series over robot counts, and the
fault/verification counter families.  Strict means non-finite floats
(``NaN``/``inf``) become ``null`` — unlike the store files and the job
API, which keep Python's ``NaN`` literals for lossless round-trips,
these documents are meant to be fetched by browsers and plotting
tools that reject non-standard JSON.
"""

from __future__ import annotations

import math
import typing

from repro.metrics.collector import RunReport
from repro.store import STORE_SCHEMA_VERSION, StoreEntry
from repro.store.provenance import wall_clock

__all__ = [
    "EXPORT_SCHEMA_VERSION",
    "SERIES_METRICS",
    "export_entry",
    "export_runs",
]

#: Version of the export document layout.
#:
#: v2 added the degraded-mode scenario flags (``adaptive_verify``,
#: ``coop_repair``, ``jam_aware``) and the ``degraded`` counter family.
EXPORT_SCHEMA_VERSION = 2

#: Headline metrics plotted as per-algorithm series over robot counts
#: (the x-axis of every figure in the paper).
SERIES_METRICS = (
    "mean_travel_distance_m",
    "mean_repair_latency_s",
    "mean_report_hops",
    "update_transmissions_per_failure",
    "unrepaired_fraction",
)


def _jsonable(value: typing.Any) -> typing.Any:
    """*value* with non-finite floats replaced by ``None``, recursively."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def _fault_counters(report: RunReport) -> typing.Dict[str, typing.Any]:
    return {
        "robot_faults": report.robot_faults,
        "robot_faults_detected": report.robot_faults_detected,
        "robot_recoveries": report.robot_recoveries,
        "mean_fault_detection_latency_s": (
            report.mean_fault_detection_latency_s
        ),
        "redispatches": report.redispatches,
        "orphaned": report.orphaned,
    }


def _verification_counters(
    report: RunReport,
) -> typing.Dict[str, typing.Any]:
    return {
        "suspicions": report.suspicions,
        "suspicions_cleared": report.suspicions_cleared,
        "probes_sent": report.probes_sent,
        "probes_answered": report.probes_answered,
        "false_dispatches": report.false_dispatches,
        "aborted_replacements": report.aborted_replacements,
        "false_replacements": report.false_replacements,
        "wasted_travel_m": report.wasted_travel_m,
        "mean_verification_latency_s": (
            report.mean_verification_latency_s
        ),
    }


def _degraded_counters(report: RunReport) -> typing.Dict[str, typing.Any]:
    return {
        "coop_offers": report.coop_offers,
        "coop_claims": report.coop_claims,
        "backlog_episodes": report.backlog_episodes,
        "mean_backlog_drain_s": report.mean_backlog_drain_s,
        "reroutes": report.reroutes,
        "reroute_detour_m": report.reroute_detour_m,
        "adaptive_quorum_histogram": dict(
            sorted(report.adaptive_quorum_histogram.items())
        ),
    }


def export_entry(entry: StoreEntry) -> typing.Dict[str, typing.Any]:
    """One store entry as a flat dashboard document (strict JSON)."""
    config = entry.config
    report = entry.report
    manifest = entry.manifest
    document = {
        "schema": EXPORT_SCHEMA_VERSION,
        "digest": entry.digest,
        "store_schema": entry.schema,
        "description": config.describe(),
        "scenario": {
            "algorithm": config.algorithm,
            "robot_count": config.robot_count,
            "seed": config.seed,
            "sensor_count": config.sensor_count,
            "area_side_m": config.area_side_m,
            "sim_time_s": config.sim_time_s,
            "robot_speed_mps": config.robot_speed_mps,
            "loss_rate": config.loss_rate,
            "faults_enabled": config.faults_enabled,
            "verify_failures": config.verify_failures,
            "adaptive_verify": config.adaptive_verify,
            "coop_repair": config.coop_repair,
            "jam_aware": config.jam_aware,
        },
        "headline": report.headline(),
        "transmissions_by_category": dict(
            sorted(report.transmissions_by_category.items())
        ),
        "faults": _fault_counters(report),
        "verification": _verification_counters(report),
        "degraded": _degraded_counters(report),
        "provenance": {
            "created_unix": manifest.get("created_unix"),
            "duration_s": manifest.get("duration_s"),
            "package_version": manifest.get("package_version"),
        },
    }
    return typing.cast(typing.Dict[str, typing.Any], _jsonable(document))


def export_runs(
    entries: typing.Iterable[StoreEntry],
) -> typing.Dict[str, typing.Any]:
    """Many entries as one document with per-algorithm series.

    ``series`` maps ``algorithm → metric → [[robot_count, mean], ...]``
    with the mean taken over every run (seed/replicate) of that
    algorithm at that robot count — the exact shape a dashboard needs
    to redraw the paper's figures without touching the simulator.
    """
    runs = sorted(
        (export_entry(entry) for entry in entries),
        key=lambda run: str(run["digest"]),
    )
    cells: typing.Dict[
        typing.Tuple[str, int], typing.List[typing.Dict[str, typing.Any]]
    ] = {}
    for run in runs:
        scenario = run["scenario"]
        key = (str(scenario["algorithm"]), int(scenario["robot_count"]))
        cells.setdefault(key, []).append(run["headline"])
    series: typing.Dict[
        str, typing.Dict[str, typing.List[typing.List[float]]]
    ] = {}
    for (algorithm, robot_count), headlines in sorted(cells.items()):
        for metric in SERIES_METRICS:
            values = [
                headline[metric]
                for headline in headlines
                if headline.get(metric) is not None
            ]
            if not values:
                continue
            series.setdefault(algorithm, {}).setdefault(metric, []).append(
                [float(robot_count), sum(values) / len(values)]
            )
    return {
        "schema": EXPORT_SCHEMA_VERSION,
        "store_schema": STORE_SCHEMA_VERSION,
        "generated_unix": wall_clock(),
        "count": len(runs),
        "runs": runs,
        "series": series,
    }
