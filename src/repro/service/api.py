"""The HTTP face of simulation-as-a-service (stdlib only).

A :class:`ThreadingHTTPServer` whose handler threads talk to one shared
:class:`~repro.service.queue.JobQueue`.  Endpoints (see
``docs/SERVICE.md`` for curl examples):

* ``POST /v1/runs`` — validate a ``ScenarioConfig`` JSON body, answer
  immediately with the content digest and job state (``202`` while the
  job is in flight, ``200`` for a cache hit).
* ``GET /v1/runs`` — list job records (``?status=``, ``?limit=``).
* ``GET /v1/runs/<digest>`` — job status; includes the full
  ``RunReport`` once done.  ``?wait=SECONDS`` blocks until the
  in-flight execution settles (bounded by the server's wait cap).
* ``GET /v1/runs/<digest>/export`` — the run as a strict-JSON
  dashboard document (:mod:`repro.service.export`).
* ``GET /v1/store/stats`` — hit/miss/coalesce counters + store
  entry count and byte footprint.
* ``GET /v1/service/stats`` — execution-health counters (retries,
  timeouts, pool rebuilds, rejections), the retry policy, and pool
  supervision state.
* ``GET /healthz`` — liveness (``degraded`` while the pool is broken).

Responses are JSON throughout.  Job/report payloads may contain
Python-style ``NaN`` literals (lossless for the bundled client); the
``/export`` documents are strict JSON with ``null`` instead.

Graceful degradation (``docs/SERVICE.md`` "Failure semantics"): a
submission the queue cannot take — depth cap reached, worker pool
broken beyond rebuilding, shutdown in progress — is answered with
``503`` plus a ``Retry-After`` header, never a ``500``.  By default
``serve`` builds a :class:`~repro.service.resilience.SupervisedQueue`
and reconciles stale job records before accepting traffic.
"""

from __future__ import annotations

import http.server
import json
import re
import socket
import typing
import urllib.parse

from repro.deploy.scenario import ScenarioConfig
from repro.service.export import export_entry
from repro.service.queue import JobQueue, ServiceUnavailable
from repro.service.resilience import (
    RetryPolicy,
    SupervisedQueue,
    reconcile_queue,
)
from repro.store import JobStatus, RunStore

__all__ = ["ServiceHandler", "ServiceServer", "serve"]

#: Largest accepted request body — a ScenarioConfig is a few KiB even
#: with a long fault script; anything bigger is not a config.
MAX_BODY_BYTES = 1 << 20

#: Upper bound on one ``?wait=`` long-poll, seconds.
MAX_WAIT_S = 60.0

_RUN_PATH = re.compile(
    r"^/v1/runs/(?P<digest>[0-9a-f]{64})(?P<export>/export)?$"
)


def _first(
    query: typing.Mapping[str, typing.List[str]], key: str
) -> typing.Optional[str]:
    values = query.get(key)
    return values[0] if values else None


class ServiceServer(http.server.ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`JobQueue`."""

    daemon_threads = True

    def __init__(
        self,
        address: typing.Tuple[str, int],
        queue: JobQueue,
        quiet: bool = False,
    ) -> None:
        self.queue = queue
        self.quiet = quiet
        super().__init__(address, ServiceHandler)

    @property
    def port(self) -> int:
        """The bound TCP port (useful with an ephemeral ``port=0``)."""
        return int(self.server_address[1])


class ServiceHandler(http.server.BaseHTTPRequestHandler):
    """Routes one request; all state lives on the server's queue."""

    #: Keep-alive requires accurate Content-Length on every response —
    #: ``_send_json`` always sets it.
    protocol_version = "HTTP/1.1"

    #: True once any byte of the current response hit the wire;
    #: reset per request, consulted by the catch-all recovery.
    _response_begun = False

    @property
    def queue(self) -> JobQueue:
        return typing.cast(ServiceServer, self.server).queue

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._response_begun = False
        try:
            self._route_get()
        except Exception as error:
            # The degradation contract: the only 5xx this server emits
            # is a retryable 503 (docs/SERVICE.md, failure semantics).
            self._recover(error)

    def _route_get(self) -> None:
        split = urllib.parse.urlsplit(self.path)
        query = urllib.parse.parse_qs(split.query)
        path = split.path
        if path == "/healthz":
            self._get_health()
        elif path == "/v1/runs":
            self._get_runs(query)
        elif path == "/v1/store/stats":
            self._send_json(200, self.queue.stats())
        elif path == "/v1/service/stats":
            self._send_json(200, self.queue.service_stats())
        else:
            match = _RUN_PATH.match(path)
            if match is None:
                self._send_error(404, f"no such resource: {path}")
            elif match.group("export"):
                self._get_export(match.group("digest"))
            else:
                self._get_run(match.group("digest"), query)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._response_begun = False
        try:
            path = urllib.parse.urlsplit(self.path).path
            if path != "/v1/runs":
                self._send_error(404, f"no such resource: {path}")
                return
            self._post_run()
        except Exception as error:
            self._recover(error)

    def _recover(self, error: Exception) -> None:
        """Last-resort handling for a handler that raised.

        Before any bytes of a response went out, the documented 503 is
        still a clean answer.  After a status line has been written, a
        second response on the same connection would interleave with
        the first into garbage — drop the connection instead, which
        clients see as a truncated response they must not trust.
        """
        if self._response_begun:
            self.close_connection = True
            return
        self._send_unavailable(f"handler failure: {error}")

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _get_health(self) -> None:
        broken = bool(getattr(self.queue.pool, "broken", False))
        self._send_json(
            200,
            {
                "status": "degraded" if broken else "ok",
                "workers": self.queue.pool.workers,
                "inflight": self.queue.inflight_count(),
            },
        )

    def _post_run(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            self._send_error(400, f"invalid JSON body: {error}")
            return
        if isinstance(document, dict) and "config" in document:
            document = document["config"]
        if not isinstance(document, dict):
            self._send_error(400, "body must be a config JSON object")
            return
        try:
            config = ScenarioConfig.from_json_dict(document)
        except (TypeError, ValueError) as error:
            self._send_error(400, f"invalid scenario config: {error}")
            return
        try:
            outcome = self.queue.submit(config, source="api")
        except ServiceUnavailable as error:
            self._send_unavailable(str(error), error.retry_after_s)
            return
        record = outcome.record
        self._send_json(
            200 if record.terminal else 202,
            {
                "digest": outcome.digest,
                "status": record.status,
                "cached": outcome.cached,
                "coalesced": outcome.coalesced,
                "submissions": record.submissions,
                "url": f"/v1/runs/{outcome.digest}",
            },
        )

    def _get_runs(
        self, query: typing.Dict[str, typing.List[str]]
    ) -> None:
        status = _first(query, "status")
        limit_text = _first(query, "limit")
        limit: typing.Optional[int] = None
        if limit_text is not None:
            try:
                limit = int(limit_text)
            except ValueError:
                self._send_error(400, f"bad limit: {limit_text!r}")
                return
        records = self.queue.list_records(status=status, limit=limit)
        self._send_json(
            200,
            {
                "count": len(records),
                "runs": [record.to_json_dict() for record in records],
            },
        )

    def _get_run(
        self, digest: str, query: typing.Dict[str, typing.List[str]]
    ) -> None:
        wait_text = _first(query, "wait")
        if wait_text is not None:
            try:
                wait_s = min(float(wait_text), MAX_WAIT_S)
            except ValueError:
                self._send_error(400, f"bad wait: {wait_text!r}")
                return
            self.queue.wait(digest, wait_s)
        record = self.queue.status(digest)
        if record is None:
            self._send_error(404, f"unknown digest: {digest}")
            return
        payload: typing.Dict[str, typing.Any] = {
            "digest": digest,
            "job": record.to_json_dict(),
        }
        if record.status == JobStatus.DONE:
            entry = self.queue.result(digest)
            if entry is not None:
                payload["report"] = entry.report.to_json_dict()
                payload["config"] = entry.config.to_json_dict()
        self._send_json(200, payload)

    def _get_export(self, digest: str) -> None:
        entry = self.queue.result(digest)
        if entry is not None:
            self._send_json(200, export_entry(entry), strict=True)
            return
        record = self.queue.status(digest)
        if record is None:
            self._send_error(404, f"unknown digest: {digest}")
        else:
            self._send_error(
                409,
                f"run {digest[:12]} is {record.status}; "
                "export needs a finished result",
            )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_body(self) -> typing.Optional[bytes]:
        length_text = self.headers.get("Content-Length")
        try:
            length = int(length_text) if length_text is not None else -1
        except ValueError:
            length = -1
        if length < 0:
            self._send_error(411, "Content-Length required")
            return None
        if length > MAX_BODY_BYTES:
            self._send_error(413, f"body over {MAX_BODY_BYTES} bytes")
            return None
        return self.rfile.read(length)

    def _send_json(
        self,
        code: int,
        payload: typing.Mapping[str, typing.Any],
        strict: bool = False,
        headers: typing.Optional[typing.Mapping[str, str]] = None,
    ) -> None:
        text = json.dumps(
            payload, sort_keys=True, indent=1, allow_nan=not strict
        )
        body = (text + "\n").encode("utf-8")
        # Everything that can fail for content reasons (serialization)
        # has; from here any bytes written commit this response.
        self._response_begun = True
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if headers:
            for name, value in headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message, "code": code})

    def _send_unavailable(
        self, message: str, retry_after_s: float = 1.0
    ) -> None:
        """The documented 503: overloaded/broken/shutting down, not lost.

        Carries ``Retry-After`` (whole seconds, rounded up) so clients
        — including the bundled :class:`ServiceClient` — know when to
        come back.  Best-effort: a half-written or torn-down connection
        must not raise out of the handler.
        """
        retry_after = max(1, int(-(-retry_after_s // 1)))
        try:
            self._send_json(
                503,
                {
                    "error": message,
                    "code": 503,
                    "retry_after_s": retry_after,
                },
                headers={"Retry-After": str(retry_after)},
            )
        except OSError:
            pass

    def log_message(self, format: str, *args: typing.Any) -> None:
        """Default request logging, silenced under ``quiet``."""
        if not typing.cast(ServiceServer, self.server).quiet:
            super().log_message(format, *args)


def serve(
    store: typing.Optional[RunStore] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    quiet: bool = False,
    queue: typing.Optional[JobQueue] = None,
    policy: typing.Optional[RetryPolicy] = None,
    reconcile: bool = True,
) -> ServiceServer:
    """Build a ready-to-run server (not yet serving).

    ``port=0`` binds an ephemeral port — read it back from
    :attr:`ServiceServer.port`.  The caller owns the loop: call
    ``serve_forever()`` (blocking) or run it in a thread, and pair
    ``server.shutdown()`` with ``server.queue.shutdown()`` on exit.

    Without an explicit *queue*, a
    :class:`~repro.service.resilience.SupervisedQueue` is built with
    *policy* (default :class:`RetryPolicy`), so retries, timeouts, and
    pool supervision are on out of the box.  Unless *reconcile* is
    False, stale non-terminal job records from a previous server life
    are settled to ``failed`` ("server restart") before the socket
    binds — i.e. before the API accepts any traffic.
    """
    if queue is None:
        queue = SupervisedQueue(
            store if store is not None else RunStore(),
            policy=policy,
            workers=workers,
        )
    if reconcile:
        reconcile_queue(queue)
    try:
        return ServiceServer((host, port), queue, quiet=quiet)
    except socket.error:
        queue.shutdown(wait=False)
        raise
