"""Fault-tolerant job execution: supervision, retries, timeouts, leases.

The queue in :mod:`repro.service.queue` assumes the world cooperates: a
worker that is SIGKILLed mid-job breaks the whole
``ProcessPoolExecutor``, a hung simulation wedges its slot forever, and
a server crash leaves ``queued``/``running`` records that nothing ever
settles.  This module is the supervision layer that makes the service
degrade instead of die — the same detect → verify → recover ladder the
simulated robots apply to failed sensors, applied to the service's own
workers:

* :class:`SupervisedPool` detects a broken executor
  (``BrokenProcessPool`` after a worker death, submits after teardown)
  and transparently rebuilds it, keeping a generation counter so N
  broken futures trigger one rebuild;
* :class:`SupervisedQueue` retries failed-retryable executions with
  bounded attempts and **deterministic** exponential backoff (jitter
  drawn from a seeded :class:`~repro.sim.rng.RandomStreams` stream —
  no wall-clock randomness, simlint R1 applies to service code too),
  cancels and requeues runs that exceed their per-job timeout or whose
  worker lease went stale, and rejects work beyond a queue-depth cap
  with :class:`~repro.service.queue.QueueDepthExceeded` (HTTP 503);
* :func:`reconcile_queue` settles stale non-terminal records from a
  previous server life into ``failed`` (cause ``"server restart"``) —
  failed records are retryable, so the next submission re-runs them.

Because simulations are pure functions of their config, re-executing a
failed attempt is always semantically safe: a retried result is
byte-equivalent to a first-try result (the chaos tests pin this
against the trace-hash baselines).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import threading
import typing

from repro.service.queue import (
    JobQueue,
    Runner,
    ServiceUnavailable,
    WorkerPool,
    _InflightJob,
    execute_job,
)
from repro.sim.rng import RandomStreams
from repro.store import JobStatus, JobStore, RunStore
from repro.store.codec import JobRecord
from repro.store.provenance import perf_clock, wall_clock

__all__ = [
    "JobTimeoutError",
    "PoolUnavailable",
    "RETRYABLE_ERRORS",
    "RetryPolicy",
    "SupervisedPool",
    "SupervisedQueue",
    "is_retryable",
    "reconcile_queue",
    "reconcile_stale_records",
]


class JobTimeoutError(TimeoutError):
    """An execution exceeded its time budget and was requeued."""


class PoolUnavailable(ServiceUnavailable):
    """The worker pool is broken and could not be rebuilt."""


#: Failure types worth re-executing: infrastructure died, not the
#: simulation.  ``OSError`` covers injected store IO faults and
#: :class:`JobTimeoutError` (a ``TimeoutError``); ``BrokenExecutor``
#: covers SIGKILLed/OOM-killed workers; ``CancelledError`` covers
#: futures cancelled by a pool teardown; :class:`ServiceUnavailable`
#: covers a dispatch that hit a momentarily-broken pool.  Everything
#: else (a ``ValueError`` from a bad config, a simulator bug) is
#: deterministic and would fail every retry identically.
RETRYABLE_ERRORS: typing.Tuple[typing.Type[BaseException], ...] = (
    concurrent.futures.BrokenExecutor,
    concurrent.futures.CancelledError,
    OSError,
    ServiceUnavailable,
)


def is_retryable(error: BaseException) -> bool:
    """True when re-executing after *error* could plausibly succeed."""
    return isinstance(error, RETRYABLE_ERRORS)


@dataclasses.dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How the supervised queue reacts to failures.  Immutable.

    Backoff for retry attempt ``n`` (the second execution is attempt 2)
    is ``base * factor**(n-2)`` capped at ``backoff_max_s``, stretched
    by a deterministic jitter in ``[0, jitter)`` drawn from a stream
    seeded by ``(seed, digest, n)`` — two servers with the same policy
    retry the same job on the same schedule, and nothing reads the wall
    clock to decide it.
    """

    #: Automatic re-executions after the first attempt (0 disables).
    max_retries: int = 2
    #: Delay before the first retry.
    backoff_base_s: float = 0.5
    #: Growth factor per further retry.
    backoff_factor: float = 2.0
    #: Upper bound on any single backoff delay.
    backoff_max_s: float = 30.0
    #: Jitter fraction in ``[0, 1]``: each delay is stretched by
    #: ``1 + jitter * u`` with ``u`` from the seeded stream.
    jitter: float = 0.1
    #: Seed for the backoff jitter streams.
    seed: int = 0
    #: Cancel-and-requeue budget per execution attempt; ``None``
    #: disables the watchdog.
    job_timeout_s: typing.Optional[float] = None
    #: Requeue a running job whose worker stopped renewing its lease
    #: for this long (the worker is alive-but-wedged or silently dead).
    lease_grace_s: float = 15.0
    #: Maximum simultaneously in-flight digests; ``None`` uncapped.
    queue_depth: typing.Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base_s <= 0.0 or self.backoff_max_s <= 0.0:
            raise ValueError("backoff bounds must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")
        if self.job_timeout_s is not None and self.job_timeout_s <= 0.0:
            raise ValueError(
                f"job_timeout_s must be positive: {self.job_timeout_s}"
            )
        if self.lease_grace_s <= 0.0:
            raise ValueError(
                f"lease_grace_s must be positive: {self.lease_grace_s}"
            )
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1: {self.queue_depth}"
            )

    def backoff_s(self, digest: str, attempt: int) -> float:
        """Deterministic delay before dispatching *attempt* of *digest*."""
        exponent = max(0, attempt - 2)
        delay_s = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor**exponent,
        )
        if self.jitter > 0.0:
            stream = RandomStreams(self.seed).stream(
                f"backoff:{digest}:{attempt}"
            )
            delay_s *= 1.0 + self.jitter * stream.random()
        return delay_s

    def to_json_dict(self) -> typing.Dict[str, typing.Any]:
        """Policy knobs as a JSON-native dict (``/v1/service/stats``)."""
        return dataclasses.asdict(self)


def _kill_workers(executor: concurrent.futures.Executor) -> None:
    """SIGKILL a ``ProcessPoolExecutor``'s workers; no-op otherwise.

    ``shutdown(wait=False, cancel_futures=True)`` only cancels *queued*
    work — a worker wedged inside a task would run to completion (and
    the interpreter's exit hook would join it).  A rebuild exists
    precisely to free such workers, so reach into the private process
    table the same way the chaos harness does and kill them.
    """
    processes = getattr(executor, "_processes", None)
    if not processes:
        return
    for process in list(processes.values()):
        try:
            if process.is_alive():
                process.kill()
        except OSError:
            pass


class SupervisedPool(WorkerPool):
    """A :class:`WorkerPool` that survives the death of its executor.

    A SIGKILLed (or OOM-killed) worker process breaks the whole
    ``ProcessPoolExecutor``: every pending future raises
    ``BrokenProcessPool`` and all further submits fail.  This pool
    detects that, tears the executor down, and lazily builds a fresh
    one — at most one rebuild per breakage, tracked by ``generation``.
    Tests inject *executor_factory* to supervise thread pools or
    deliberately-failing factories.
    """

    def __init__(
        self,
        workers: int = 2,
        runner: Runner = execute_job,
        executor_factory: typing.Optional[
            typing.Callable[[], concurrent.futures.Executor]
        ] = None,
        on_rebuild: typing.Optional[typing.Callable[[], None]] = None,
    ) -> None:
        super().__init__(workers=workers, runner=runner, executor=None)
        self._factory = executor_factory
        #: Called once per rebuild (the queue counts them).
        self.on_rebuild = on_rebuild
        #: Bumped on every rebuild; lets N broken futures share one.
        self.generation = 0
        self.rebuilds = 0
        #: True while the pool cannot produce a working executor.
        self.broken = False
        self._supervision = threading.Lock()
        self._closed = False

    def _pool(self) -> concurrent.futures.Executor:
        return self._acquire()[0]

    def _acquire(
        self,
    ) -> typing.Tuple[concurrent.futures.Executor, int]:
        """The working executor plus the generation it belongs to.

        The generation is captured under the same lock that produced
        the executor, so a submitter that later finds the executor
        broken can ask for a rebuild *of that generation* — and no-op
        when a sibling already replaced it.
        """
        with self._supervision:
            if self._closed:
                raise PoolUnavailable("worker pool is shut down")
            if self._executor is None:
                try:
                    self._executor = self._build()
                except Exception as error:
                    self.broken = True
                    raise PoolUnavailable(
                        f"cannot build worker pool: {error}"
                    ) from error
            self.broken = False
            return self._executor, self.generation

    def _build(self) -> concurrent.futures.Executor:
        if self._factory is not None:
            return self._factory()
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("spawn"),
        )

    def heal(self) -> bool:
        """Try to produce a working executor; True on success."""
        try:
            self._pool()
        except ServiceUnavailable:
            return False
        return True

    def submit(
        self, config: typing.Any, store_root: str
    ) -> "concurrent.futures.Future[typing.Any]":
        """Schedule *config*, rebuilding the pool once if it is broken."""
        for already_rebuilt in (False, True):
            executor, generation = self._acquire()
            try:
                return executor.submit(self.runner, config, store_root)
            except (
                concurrent.futures.BrokenExecutor,
                RuntimeError,
            ) as error:
                if already_rebuilt or self._closed:
                    self.broken = True
                    raise PoolUnavailable(
                        f"worker pool broken: {error}"
                    ) from error
                self.rebuild_if(generation)
        raise AssertionError("unreachable")

    def rebuild(self) -> None:
        """Tear the current executor down; the next use builds fresh."""
        self.rebuild_if(self.generation)

    def rebuild_if(self, generation: int) -> bool:
        """Rebuild only while *generation* is still the current one.

        This is how N broken futures share one rebuild: every submitter
        that found generation G broken asks to replace exactly G; the
        first request wins, the rest no-op instead of SIGKILLing the
        fresh executor a sibling just built (and submitted to).

        Running worker processes of the replaced executor are killed
        (their futures settle with ``BrokenProcessPool`` /
        ``CancelledError``, which the supervised queue treats as
        retryable).  Thread-based executors cannot be killed — their
        threads are abandoned and ignored via the stale-future guard.
        Returns True when this call actually rebuilt.
        """
        with self._supervision:
            if self._closed or self.generation != generation:
                return False
            stale = self._executor
            self._executor = None
            self.generation += 1
            self.rebuilds += 1
            hook = self.on_rebuild
        if stale is not None:
            _kill_workers(stale)
            stale.shutdown(wait=False, cancel_futures=True)
        if hook is not None:
            hook()
        return True

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool for good; further submits raise.

        ``wait=False`` means "now": wedged workers are killed rather
        than joined at interpreter exit.
        """
        with self._supervision:
            self._closed = True
            executor = self._executor
        if not wait and executor is not None:
            _kill_workers(executor)
        super().shutdown(wait=wait)


class SupervisedQueue(JobQueue):
    """A :class:`JobQueue` that keeps its promises under failure.

    Every accepted submission reaches a terminal state: retryable
    failures (dead workers, store IO faults, timeouts) are re-executed
    up to ``policy.max_retries`` times with deterministic backoff;
    anything beyond that settles as ``failed``.  A daemon monitor
    thread enforces per-job timeouts and worker-lease staleness every
    *monitor_interval_s* (pass ``None`` for manual
    :meth:`check_timeouts` calls in tests).
    """

    def __init__(
        self,
        store: RunStore,
        policy: typing.Optional[RetryPolicy] = None,
        workers: int = 2,
        pool: typing.Optional[WorkerPool] = None,
        monitor_interval_s: typing.Optional[float] = 0.25,
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        if pool is None:
            pool = SupervisedPool(workers=workers)
        super().__init__(
            store, pool=pool, max_inflight=self.policy.queue_depth
        )
        if isinstance(pool, SupervisedPool) and pool.on_rebuild is None:
            pool.on_rebuild = self._count_rebuild
        self._monitor_interval_s = monitor_interval_s
        self._monitor_stop = threading.Event()
        self._monitor: typing.Optional[threading.Thread] = None
        if monitor_interval_s is not None and monitor_interval_s > 0:
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                name="service-monitor",
                daemon=True,
            )
            self._monitor.start()

    # ------------------------------------------------------------------
    # Degradation: reject instead of accept-and-lose
    # ------------------------------------------------------------------
    def submit(
        self, config: typing.Any, source: str = "api"
    ) -> typing.Any:
        pool = self.pool
        if (
            isinstance(pool, SupervisedPool)
            and pool.broken
            and not pool.heal()
        ):
            with self._lock:
                self.counters.rejected += 1
            raise PoolUnavailable(
                "worker pool unavailable and could not be rebuilt",
                retry_after_s=5.0,
            )
        return super().submit(config, source)

    # ------------------------------------------------------------------
    # Retry ladder
    # ------------------------------------------------------------------
    def _retry_after_failure(
        self, digest: str, job: _InflightJob, error: BaseException
    ) -> bool:
        """Schedule a bounded, backed-off re-execution when sensible."""
        with self._lock:
            if self._closing or self._inflight.get(digest) is not job:
                return False
            record = job.record
            if record.attempts > self.policy.max_retries:
                return False
            if not is_retryable(error):
                return False
            record.attempts += 1
            record.status = JobStatus.QUEUED
            record.worker = None
            record.started_unix = None
            record.lease_unix = None
            record.error = f"retrying after: {error}"
            self.counters.retries += 1
            delay_s = self.policy.backoff_s(digest, record.attempts)
            self.jobs.save(record)
            if job.timer is not None:
                # Defensive: never leave two live timers racing to
                # redispatch the same job.
                job.timer.cancel()
            timer = threading.Timer(
                delay_s, self._redispatch, args=(digest, job)
            )
            timer.daemon = True
            job.timer = timer
            job.future = None
            job.dispatched_s = None
        timer.start()
        return True

    def _redispatch(self, digest: str, job: _InflightJob) -> None:
        """Backoff elapsed: hand the job back to the pool."""
        with self._lock:
            job.timer = None
            if self._closing or self._inflight.get(digest) is not job:
                return
        self._dispatch(digest, job)

    def _dispatch(self, digest: str, job: _InflightJob) -> None:
        """Dispatch, converting synchronous pool failures into the
        same retry ladder asynchronous ones take."""
        try:
            super()._dispatch(digest, job)
        except Exception as error:
            if not self._retry_after_failure(digest, job, error):
                self._settle_failed(digest, job, error)

    # ------------------------------------------------------------------
    # Timeouts and leases
    # ------------------------------------------------------------------
    def check_timeouts(self) -> typing.List[str]:
        """Expire overdue attempts; returns the digests requeued.

        Two triggers: the dispatch is older than ``policy.job_timeout_s``
        (hung or just too slow), or the worker's persisted lease has
        not been renewed within ``policy.lease_grace_s`` (the worker is
        silently dead — only meaningful once a worker wrote a lease).
        Called by the monitor thread; tests call it directly.
        """
        policy = self.policy
        now_s = perf_clock()
        candidates: typing.List[
            typing.Tuple[str, _InflightJob, typing.Optional[float]]
        ] = []
        with self._lock:
            for digest, job in self._inflight.items():
                if job.future is None or job.timer is not None:
                    continue
                if job.future.done():
                    continue
                candidates.append((digest, job, job.dispatched_s))
        expired: typing.List[str] = []
        for digest, job, dispatched_s in candidates:
            reason: typing.Optional[str] = None
            if (
                policy.job_timeout_s is not None
                and dispatched_s is not None
                and now_s - dispatched_s > policy.job_timeout_s
            ):
                reason = (
                    f"execution exceeded its "
                    f"{policy.job_timeout_s:g}s budget"
                )
            else:
                persisted = self.jobs.load(digest)
                wall_now = wall_clock()
                if (
                    persisted is not None
                    and not persisted.terminal
                    and persisted.lease_unix is not None
                    and wall_now - persisted.lease_unix
                    > policy.lease_grace_s
                ):
                    reason = (
                        f"worker lease stale beyond "
                        f"{policy.lease_grace_s:g}s"
                    )
            if reason is not None:
                self._expire(digest, job, reason)
                expired.append(digest)
        return expired

    def _expire(
        self, digest: str, job: _InflightJob, reason: str
    ) -> None:
        """Cancel an overdue attempt and route it into the retry ladder."""
        with self._lock:
            if self._inflight.get(digest) is not job:
                return
            future = job.future
            if future is None or job.timer is not None:
                return
            if future.done():
                # Completed between the timeout scan and now: its
                # ``_finish`` callback owns settlement.  Expiring it
                # anyway would discard a finished result, and — since
                # ``cancel()`` returns False on done futures — tear
                # down a pool full of healthy workers.
                return
            # Everything the old attempt does from here on is stale:
            # its eventual completion hits the guard in ``_finish``.
            job.future = None
            job.dispatched_s = None
            self.counters.timeouts += 1
        if not future.cancel():
            # Already running on a worker we cannot reach into — tear
            # the pool down to free the slot.  Process workers die
            # (other in-flight futures break and retry); thread
            # workers are merely abandoned.
            if isinstance(self.pool, SupervisedPool):
                self.pool.rebuild()
        error = JobTimeoutError(reason)
        if not self._retry_after_failure(digest, job, error):
            self._settle_failed(digest, job, error)

    def _monitor_loop(self) -> None:
        interval = self._monitor_interval_s
        assert interval is not None
        while not self._monitor_stop.wait(interval):
            self.check_timeouts()

    def _count_rebuild(self) -> None:
        with self._lock:
            self.counters.pool_rebuilds += 1

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------
    def service_stats(self) -> typing.Dict[str, typing.Any]:
        """Base payload plus retry policy and pool supervision state."""
        payload = super().service_stats()
        payload["supervised"] = True
        payload["policy"] = self.policy.to_json_dict()
        pool = self.pool
        if isinstance(pool, SupervisedPool):
            payload["pool"] = {
                "broken": pool.broken,
                "generation": pool.generation,
                "rebuilds": pool.rebuilds,
            }
        return payload

    def shutdown(self, wait: bool = True) -> None:
        """Stop monitoring, cancel pending backoffs, release waiters."""
        self._monitor_stop.set()
        with self._lock:
            self._closing = True
            timers = [
                job.timer
                for job in self._inflight.values()
                if job.timer is not None
            ]
        for timer in timers:
            timer.cancel()
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
        super().shutdown(wait=wait)


# ----------------------------------------------------------------------
# Startup reconciliation
# ----------------------------------------------------------------------
def reconcile_stale_records(
    store: RunStore,
    jobs: JobStore,
    cause: str = "server restart",
    skip: typing.Collection[str] = (),
) -> typing.List[JobRecord]:
    """Settle non-terminal records left behind by a dead server.

    A ``queued``/``running`` record with a store entry really finished
    (the result landed but the record save was lost) — it becomes
    ``done``.  One without an entry becomes ``failed`` with *cause*;
    failed records are retryable, so the next submission re-runs them.
    Returns the records that changed.
    """
    changed: typing.List[JobRecord] = []
    for record in jobs.records():
        if record.terminal or record.digest in skip:
            continue
        stamp = wall_clock()
        if store.load(record.digest) is not None:
            record.status = JobStatus.DONE
            record.error = None
        else:
            record.status = JobStatus.FAILED
            record.error = cause
        record.finished_unix = stamp
        jobs.save(record)
        changed.append(record)
    return changed


def reconcile_queue(
    queue: JobQueue, cause: str = "server restart"
) -> typing.List[JobRecord]:
    """Run :func:`reconcile_stale_records` for *queue*'s stores.

    Digests currently in flight are skipped (they are being handled);
    call this before the queue accepts traffic — ``serve`` does.
    """
    changed = reconcile_stale_records(
        queue.store,
        queue.jobs,
        cause=cause,
        skip=frozenset(queue.inflight_digests()),
    )
    queue.counters.reconciled += len(changed)
    return changed
