"""Simulation-as-a-service: HTTP job API over the content-addressed store.

``repro.service`` turns the simulator into a long-running service: a
zero-dependency HTTP API (:mod:`repro.service.api`) accepting
``ScenarioConfig`` JSON, a process-backed worker pool with
**single-flight dedup** (:mod:`repro.service.queue` — identical
concurrent configs coalesce into one execution, keyed by the canonical
config digest), and a static JSON exporter
(:mod:`repro.service.export`) rendering finished runs into
dashboard-friendly documents.

Start it with ``repro-sim serve``; talk to it with
:class:`repro.service.client.ServiceClient` or plain curl.  The full
API reference lives in ``docs/SERVICE.md``.
"""

from repro.service.api import ServiceHandler, ServiceServer, serve
from repro.service.client import ServiceClient, ServiceError
from repro.service.export import (
    EXPORT_SCHEMA_VERSION,
    export_entry,
    export_runs,
)
from repro.service.queue import (
    JobQueue,
    ServiceCounters,
    SubmitOutcome,
    WorkerPool,
    execute_job,
    worker_identity,
)

__all__ = [
    "EXPORT_SCHEMA_VERSION",
    "JobQueue",
    "ServiceClient",
    "ServiceCounters",
    "ServiceError",
    "ServiceHandler",
    "ServiceServer",
    "SubmitOutcome",
    "WorkerPool",
    "execute_job",
    "export_entry",
    "export_runs",
    "serve",
    "worker_identity",
]
