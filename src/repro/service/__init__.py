"""Simulation-as-a-service: HTTP job API over the content-addressed store.

``repro.service`` turns the simulator into a long-running service: a
zero-dependency HTTP API (:mod:`repro.service.api`) accepting
``ScenarioConfig`` JSON, a process-backed worker pool with
**single-flight dedup** (:mod:`repro.service.queue` — identical
concurrent configs coalesce into one execution, keyed by the canonical
config digest), and a static JSON exporter
(:mod:`repro.service.export`) rendering finished runs into
dashboard-friendly documents.

The execution plane is supervised (:mod:`repro.service.resilience`):
dead workers rebuild the pool, failed-retryable jobs re-execute with
deterministic backoff, hung jobs are cancelled and requeued, and
overload degrades to ``503 + Retry-After`` instead of falling over.
:mod:`repro.service.chaos` is the matching fault-injection harness.

Start it with ``repro-sim serve``; talk to it with
:class:`repro.service.client.ServiceClient` or plain curl.  The full
API reference lives in ``docs/SERVICE.md``.
"""

from repro.service.api import ServiceHandler, ServiceServer, serve
from repro.service.chaos import (
    ChaosPlan,
    FlakyStore,
    WorkerCrash,
    chaos_runner,
    kill_one_worker,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.export import (
    EXPORT_SCHEMA_VERSION,
    export_entry,
    export_runs,
)
from repro.service.queue import (
    JobQueue,
    QueueDepthExceeded,
    ServiceCounters,
    ServiceUnavailable,
    SubmitOutcome,
    WorkerPool,
    execute_job,
    worker_identity,
)
from repro.service.resilience import (
    JobTimeoutError,
    PoolUnavailable,
    RetryPolicy,
    SupervisedPool,
    SupervisedQueue,
    is_retryable,
    reconcile_queue,
    reconcile_stale_records,
)

__all__ = [
    "ChaosPlan",
    "EXPORT_SCHEMA_VERSION",
    "FlakyStore",
    "JobQueue",
    "JobTimeoutError",
    "PoolUnavailable",
    "QueueDepthExceeded",
    "RetryPolicy",
    "ServiceClient",
    "ServiceCounters",
    "ServiceError",
    "ServiceHandler",
    "ServiceServer",
    "ServiceUnavailable",
    "SubmitOutcome",
    "SupervisedPool",
    "SupervisedQueue",
    "WorkerCrash",
    "WorkerPool",
    "chaos_runner",
    "execute_job",
    "export_entry",
    "export_runs",
    "is_retryable",
    "kill_one_worker",
    "reconcile_queue",
    "reconcile_stale_records",
    "serve",
    "worker_identity",
]
