"""Deterministic fault injection for the service layer.

The simulator already has a rich fault story (``repro.faults``) — this
module is the same idea aimed at the service itself: kill a worker
mid-job, crash an attempt, wedge it, or make the result store's disk
misbehave, all on a **deterministic schedule** (attempt counts, not
wall-clock randomness) so chaos tests replay identically.

Two injection points:

* :func:`chaos_runner` wraps the real worker entrypoint
  (:func:`~repro.service.queue.execute_job`) with a
  :class:`ChaosPlan`: the first ``kill_first`` attempts of a digest
  SIGKILL their own worker process mid-job (the parent sees
  ``BrokenProcessPool`` — the real failure mode of an OOM kill), the
  next ``fail_first`` raise :class:`WorkerCrash`, the next
  ``hang_first`` sleep far past any sane job timeout.  The attempt
  number is read from the persisted job record, so the schedule
  survives process boundaries.
* :class:`FlakyStore` is a :class:`~repro.store.RunStore` whose first
  ``fail_puts`` writes raise ``OSError`` (loud — the supervised queue
  retries the job) and whose first ``fail_loads`` reads degrade to
  misses (quiet — mirroring ``RunStore``'s own handling of read
  errors).

Used by ``tests/integration/test_service_chaos.py`` and the
``chaos-service`` CI job, which prove that every submitted job reaches
a terminal state and that retried results stay byte-equivalent to the
trace-hash baselines.
"""

from __future__ import annotations

import dataclasses
import functools
import os
import signal
import time
import typing

from repro.deploy.scenario import ScenarioConfig
from repro.metrics.collector import RunReport
from repro.service.queue import Runner, execute_job
from repro.store import JobStore, RunStore, StoreEntry
from repro.store.keys import config_digest

__all__ = [
    "ChaosPlan",
    "FlakyStore",
    "WorkerCrash",
    "chaos_runner",
    "kill_one_worker",
]


class WorkerCrash(OSError):
    """An injected worker failure (retryable by classification)."""


@dataclasses.dataclass(frozen=True, slots=True)
class ChaosPlan:
    """Which attempts of a digest misbehave, and how.

    Effects are laddered by attempt number: attempts
    ``1..kill_first`` die by SIGKILL, the next ``fail_first`` raise
    :class:`WorkerCrash`, the next ``hang_first`` sleep ``hang_s``
    seconds, and everything after runs normally.  With
    ``only_digest`` set, other digests are untouched.
    """

    #: Attempts that SIGKILL their own worker process mid-job.  In a
    #: thread-based executor (same pid as the parent) this degrades to
    #: a :class:`WorkerCrash` raise — killing the test process would
    #: be a little too chaotic.
    kill_first: int = 0
    #: Attempts (after the kills) that raise :class:`WorkerCrash`.
    fail_first: int = 0
    #: Attempts (after the crashes) that hang for ``hang_s``.
    hang_first: int = 0
    #: How long a hung attempt sleeps.
    hang_s: float = 3600.0
    #: Restrict the chaos to one digest (``None`` = all digests).
    only_digest: typing.Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("kill_first", "fail_first", "hang_first"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.hang_s <= 0.0:
            raise ValueError(f"hang_s must be positive: {self.hang_s}")


def chaos_runner(
    plan: ChaosPlan, runner: Runner = execute_job
) -> Runner:
    """A picklable runner applying *plan* before delegating to *runner*.

    Safe to hand to a ``spawn``-context process pool: the plan, the
    parent pid, and the inner runner all pickle (the inner runner must
    be a module-level function).
    """
    return typing.cast(
        Runner,
        functools.partial(_chaos_execute, plan, os.getpid(), runner),
    )


def _chaos_execute(
    plan: ChaosPlan,
    parent_pid: int,
    runner: Runner,
    config: ScenarioConfig,
    store_root: str,
) -> typing.Tuple[RunReport, float, str]:
    """Worker-side entrypoint: misbehave per *plan*, else run for real."""
    digest = config_digest(config)
    if plan.only_digest is not None and digest != plan.only_digest:
        return runner(config, store_root)
    record = JobStore(store_root).load(digest)
    attempt = record.attempts if record is not None else 1
    if attempt <= plan.kill_first:
        if os.getpid() != parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)
        raise WorkerCrash(
            f"injected worker death (attempt {attempt}, in-process)"
        )
    if attempt <= plan.kill_first + plan.fail_first:
        raise WorkerCrash(f"injected worker crash (attempt {attempt})")
    if attempt <= plan.kill_first + plan.fail_first + plan.hang_first:
        time.sleep(plan.hang_s)
    return runner(config, store_root)


class FlakyStore(RunStore):
    """A :class:`RunStore` whose disk misbehaves on a fixed schedule.

    The first *fail_puts* calls to :meth:`put` raise ``OSError``; the
    first *fail_loads* calls to :meth:`load` answer ``None`` (a miss),
    matching how the real store degrades on unreadable files.  The
    counters are deliberately approximate under concurrency — chaos
    schedules only need "roughly the first N", not exact attribution.
    """

    def __init__(
        self,
        root: typing.Optional[typing.Union[str, os.PathLike]] = None,
        fail_puts: int = 0,
        fail_loads: int = 0,
    ) -> None:
        super().__init__(root)
        self.fail_puts = fail_puts
        self.fail_loads = fail_loads
        self.failed_puts = 0
        self.failed_loads = 0

    def put(
        self,
        config: ScenarioConfig,
        report: RunReport,
        duration_s: float = float("nan"),
    ) -> str:
        if self.failed_puts < self.fail_puts:
            self.failed_puts += 1
            raise OSError(
                f"injected store write fault ({self.failed_puts}"
                f"/{self.fail_puts})"
            )
        return super().put(config, report, duration_s=duration_s)

    def load(self, digest: str) -> typing.Optional[StoreEntry]:
        if self.failed_loads < self.fail_loads:
            self.failed_loads += 1
            return None
        return super().load(digest)


def kill_one_worker(
    executor: typing.Any, sig: int = signal.SIGKILL
) -> typing.Optional[int]:
    """SIGKILL one live worker of a ``ProcessPoolExecutor``.

    Reaches into the executor's private process table — acceptable for
    a chaos harness, useless against thread pools (returns ``None``).
    Returns the pid killed, or ``None`` when there was nothing to kill.
    """
    processes = getattr(executor, "_processes", None)
    if not processes:
        return None
    for pid, process in sorted(processes.items()):
        if process.is_alive():
            os.kill(pid, sig)
            return int(pid)
    return None
