"""Job queue + worker pool: single-flight execution over the store.

The service's core invariant is **single-flight dedup**: at any moment,
at most one execution per content digest.  A submission of a config
whose digest

* already has a store entry — is a **cache hit** (no execution);
* is currently queued or running — **coalesces** into the in-flight
  job (its ``submissions`` counter grows, nothing new runs);
* is unknown — creates a :class:`~repro.store.JobRecord`, persists it
  beside the (future) store entry, and hands the config to the worker
  pool.

Workers are separate *processes* (simulations are CPU-bound and the
kernel holds the GIL tight), created from a ``spawn`` context so the
multi-threaded HTTP parent never forks mid-lock.  Each worker marks the
job record ``running`` with its own identity before simulating and
renews a lease timestamp while it runs; the parent finishes the record
(``done``/``failed``) and persists the result, so a crashed worker
leaves a truthful trail on disk.

Failure handling is layered: this module settles every execution into
a terminal record exactly once (including injected store IO errors on
the result ``put``), and exposes the ``_retry_after_failure`` hook that
:class:`repro.service.resilience.SupervisedQueue` overrides to retry
failed-retryable jobs with deterministic backoff instead of settling.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import os
import threading
import traceback
import typing

from repro.deploy.scenario import ScenarioConfig
from repro.experiments.runner import run_config_timed
from repro.metrics.collector import RunReport
from repro.store import JobRecord, JobStatus, JobStore, RunStore, StoreEntry
from repro.store.keys import config_digest
from repro.store.provenance import perf_clock, wall_clock

__all__ = [
    "JobQueue",
    "QueueDepthExceeded",
    "ServiceCounters",
    "ServiceUnavailable",
    "SubmitOutcome",
    "WorkerPool",
    "execute_job",
    "worker_identity",
]

#: A runner executes one config and returns (report, duration, worker).
Runner = typing.Callable[
    [ScenarioConfig, str], typing.Tuple[RunReport, float, str]
]

#: How often a worker re-stamps ``lease_unix`` on its running record.
LEASE_INTERVAL_S = 1.0


class ServiceUnavailable(Exception):
    """The service cannot accept this submission right now (HTTP 503).

    Carries the suggested client back-off so the API layer can answer
    with a ``Retry-After`` header.
    """

    def __init__(self, reason: str, retry_after_s: float = 1.0) -> None:
        super().__init__(reason)
        self.retry_after_s = retry_after_s


class QueueDepthExceeded(ServiceUnavailable):
    """Submission rejected: the in-flight queue is at its depth cap."""


def worker_identity() -> str:
    """Stable identity of the executing worker process."""
    return f"pid-{os.getpid()}"


def execute_job(
    config: ScenarioConfig,
    store_root: str,
    lease_interval_s: float = LEASE_INTERVAL_S,
) -> typing.Tuple[RunReport, float, str]:
    """Run one scenario in a worker process.

    Marks the persisted job record ``running`` (best effort — the
    record is advisory) before simulating, renews its ``lease_unix``
    every *lease_interval_s* while the run is live so the supervisor
    can tell a slow worker from a dead one, and returns
    ``(report, duration_s, worker)`` for the parent to finish the
    record and persist the result.

    Renewal is tied to the simulation's own progress: once the run is
    live, the keeper samples ``sim.now`` / ``sim.processed_events`` and
    only re-stamps the lease when they moved since the last renewal.
    An alive-but-wedged worker therefore goes lease-stale exactly like
    a dead one, and the supervisor's staleness check fires for both.
    The keeper also stops touching the record as soon as its persisted
    ``attempts`` no longer match this dispatch — after a timeout the
    parent requeues the job, and the record belongs to the next
    attempt, not to this one.
    """
    jobs = JobStore(store_root)
    digest = config_digest(config)
    record = jobs.load(digest)
    attempt = record.attempts if record is not None else None
    if record is not None and not record.terminal:
        record.status = JobStatus.RUNNING
        record.started_unix = wall_clock()
        record.worker = worker_identity()
        record.lease_unix = wall_clock()
        jobs.save(record)
    stop = threading.Event()
    #: Filled with the live ScenarioRuntime once the simulation starts;
    #: until then the keeper renews unconditionally (setup is progress).
    started: typing.List[typing.Any] = []

    def renew() -> None:
        last: typing.Optional[typing.Tuple[float, int]] = None
        while not stop.wait(lease_interval_s):
            if started:
                sim = started[0].sim
                mark = (sim.now, sim.processed_events)
                if mark == last:
                    # No simulation progress since the last renewal:
                    # wedged, not slow.  Withhold the stamp and let the
                    # lease go stale so the supervisor requeues.
                    continue
                last = mark
            current = jobs.load(digest)
            if current is None or current.terminal:
                return
            if attempt is not None and current.attempts != attempt:
                # The parent already requeued this job; the record now
                # describes a newer attempt this worker must not touch.
                return
            current.lease_unix = wall_clock()
            jobs.save(current)

    keeper = threading.Thread(
        target=renew, name=f"lease-{digest[:12]}", daemon=True
    )
    keeper.start()
    try:
        report, duration = run_config_timed(
            config, on_runtime=started.append
        )
    finally:
        stop.set()
        keeper.join(timeout=2 * lease_interval_s)
    return report, duration, worker_identity()


class WorkerPool:
    """A fixed-width pool of scenario-executing worker processes.

    Thin wrapper over :class:`concurrent.futures.ProcessPoolExecutor`
    (``spawn`` context) that pins the runner function and exposes only
    what the queue needs.  Tests inject a thread-based *executor* and a
    synchronous *runner* to make coalescing windows deterministic.
    """

    def __init__(
        self,
        workers: int = 2,
        runner: Runner = execute_job,
        executor: typing.Optional[concurrent.futures.Executor] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.runner = runner
        self._executor = executor

    def _pool(self) -> concurrent.futures.Executor:
        if self._executor is None:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return self._executor

    def submit(
        self, config: ScenarioConfig, store_root: str
    ) -> "concurrent.futures.Future[typing.Tuple[RunReport, float, str]]":
        """Schedule *config* for execution; returns its future."""
        return self._pool().submit(self.runner, config, store_root)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool (idempotent; lazily-created pools may not exist)."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=not wait)
            self._executor = None


@dataclasses.dataclass(slots=True)
class ServiceCounters:
    """Mutable hit/miss/failure accounting for one queue lifetime."""

    #: Submissions answered from an existing store entry.
    hits: int = 0
    #: Submissions that created a new execution.
    misses: int = 0
    #: Submissions folded into an already-in-flight execution.
    coalesced: int = 0
    #: Executions that completed and persisted a result.
    executed: int = 0
    #: Executions that settled as failed (after any retries).
    failed: int = 0
    #: Automatic re-executions scheduled after a retryable failure.
    retries: int = 0
    #: Jobs cancelled and requeued for exceeding their time budget
    #: (per-job timeout or a stale worker lease).
    timeouts: int = 0
    #: Worker-pool teardowns after a broken/hung executor.
    pool_rebuilds: int = 0
    #: Submissions rejected with 503 (queue depth cap / broken pool).
    rejected: int = 0
    #: Stale non-terminal records reconciled at startup.
    reconciled: int = 0

    def to_json_dict(self) -> typing.Dict[str, int]:
        """Counter values as a JSON-native dict."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }


@dataclasses.dataclass(slots=True)
class SubmitOutcome:
    """What happened to one submission."""

    digest: str
    record: JobRecord
    #: Served from an existing store entry (terminal immediately).
    cached: bool = False
    #: Folded into an in-flight execution of the same digest.
    coalesced: bool = False

    @property
    def created(self) -> bool:
        """True when this submission started a new execution."""
        return not (self.cached or self.coalesced)


@dataclasses.dataclass(slots=True)
class _InflightJob:
    """Parent-side state of one running execution."""

    config: ScenarioConfig
    record: JobRecord
    settled: threading.Event
    #: The *current* attempt's future.  ``_finish`` ignores futures
    #: that are no longer current (a timed-out attempt whose worker
    #: eventually answers must not double-settle the job).
    future: typing.Optional[
        "concurrent.futures.Future[typing.Tuple[RunReport, float, str]]"
    ] = None
    #: ``perf_clock`` stamp of the current dispatch (timeout budget).
    dispatched_s: typing.Optional[float] = None
    #: Pending backoff timer while a retry waits to re-dispatch.
    timer: typing.Optional[threading.Timer] = None


class JobQueue:
    """Single-flight scenario executions keyed by content digest.

    All public methods are thread-safe (the HTTP layer calls them from
    many handler threads).  ``submit`` never blocks on simulation work;
    ``wait`` blocks until a digest's in-flight execution settles.

    *max_inflight* caps the number of simultaneously in-flight digests:
    a submission that would start a fresh execution beyond the cap
    raises :class:`QueueDepthExceeded` (cache hits and coalescing
    submissions are always accepted — they add no load).
    """

    def __init__(
        self,
        store: RunStore,
        workers: int = 2,
        pool: typing.Optional[WorkerPool] = None,
        max_inflight: typing.Optional[int] = None,
    ) -> None:
        self.store = store
        self.jobs = JobStore(store.root)
        self.pool = pool if pool is not None else WorkerPool(workers)
        self.counters = ServiceCounters()
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._inflight: typing.Dict[str, _InflightJob] = {}
        self._closing = False

    # ------------------------------------------------------------------
    # Submission (single-flight)
    # ------------------------------------------------------------------
    def submit(
        self, config: ScenarioConfig, source: str = "api"
    ) -> SubmitOutcome:
        """Submit *config*; returns immediately with its digest + state.

        Exactly one of three things happens (see the module docstring):
        cache hit, coalesce, or a fresh execution.  In every case the
        returned record snapshot reflects the state at return time.

        Raises
        ------
        ServiceUnavailable
            When the queue is shutting down, or a fresh execution would
            exceed *max_inflight* (:class:`QueueDepthExceeded`).
        """
        digest = config_digest(config)
        with self._lock:
            if self._closing:
                raise ServiceUnavailable("queue is shutting down")
            inflight = self._inflight.get(digest)
            if inflight is not None:
                inflight.record.submissions += 1
                self.counters.coalesced += 1
                self.jobs.save(inflight.record)
                return SubmitOutcome(
                    digest=digest,
                    record=_copy_record(inflight.record),
                    coalesced=True,
                )
            entry = self.store.load(digest)
            if entry is not None:
                self.counters.hits += 1
                record = self._terminal_record(digest, entry, source)
                return SubmitOutcome(
                    digest=digest, record=record, cached=True
                )
            if (
                self.max_inflight is not None
                and len(self._inflight) >= self.max_inflight
            ):
                self.counters.rejected += 1
                raise QueueDepthExceeded(
                    f"queue depth cap reached "
                    f"({len(self._inflight)}/{self.max_inflight} in flight)"
                )
            self.counters.misses += 1
            record = JobRecord(
                digest=digest,
                status=JobStatus.QUEUED,
                submitted_unix=wall_clock(),
                source=source,
                description=config.describe(),
            )
            self.jobs.save(record)
            job = _InflightJob(
                config=config, record=record, settled=threading.Event()
            )
            self._inflight[digest] = job
            snapshot = _copy_record(record)
        self._dispatch(digest, job)
        return SubmitOutcome(digest=digest, record=snapshot)

    def _dispatch(self, digest: str, job: _InflightJob) -> None:
        """Hand *job* to the worker pool and wire up settlement.

        Runs OUTSIDE the queue lock: ``add_done_callback`` runs
        ``_finish`` inline when the future already settled, and
        ``_finish`` takes the lock — holding it here would deadlock on
        fast executors.  Subclasses override to add pool supervision
        and timeout stamping.
        """
        future = self.pool.submit(job.config, self.store.root)
        with self._lock:
            job.future = future
            job.dispatched_s = perf_clock()
        future.add_done_callback(
            lambda done, digest=digest: self._finish(digest, done)
        )

    def _finish(
        self,
        digest: str,
        future: "concurrent.futures.Future[typing.Tuple[RunReport, float, str]]",
    ) -> None:
        """Settle one execution: persist result + final job record."""
        with self._lock:
            job = self._inflight.get(digest)
            if job is None:
                # Never wired, or already settled (e.g. at shutdown).
                return
            if job.future is not future:
                # A stale attempt: this future was timed out and
                # requeued (``job.future`` is now ``None`` or a newer
                # dispatch); whatever it produced is no longer wanted.
                return
            # Claim settlement: clearing the current future makes this
            # callback the job's sole settler — a concurrent expiry (or
            # any later callback) finds no current future and backs off.
            job.future = None
            job.dispatched_s = None
        try:
            report, duration, worker = future.result()
        except (concurrent.futures.CancelledError, Exception) as error:
            # CancelledError is a BaseException since 3.8: a future
            # cancelled by a pool teardown must still settle the job.
            if self._retry_after_failure(digest, job, error):
                return
            self._settle_failed(digest, job, error)
            return
        try:
            self.store.put(job.config, report, duration_s=duration)
        except Exception as error:
            # The simulation succeeded but the result could not be
            # persisted (store IO fault).  The run is deterministic, so
            # re-executing is a correct — if expensive — way back.
            if self._retry_after_failure(digest, job, error):
                return
            self._settle_failed(digest, job, error)
            return
        self._settle_done(digest, job, duration, worker)

    def _retry_after_failure(
        self, digest: str, job: _InflightJob, error: BaseException
    ) -> bool:
        """Hook: arrange a retry for a failed execution.

        The base queue never retries; the supervised queue
        (:mod:`repro.service.resilience`) schedules bounded retries
        with deterministic backoff and returns True, which keeps the
        job in flight (``settled`` stays unset, coalescing continues).
        """
        return False

    def _settle_failed(
        self, digest: str, job: _InflightJob, error: BaseException
    ) -> None:
        """Terminal failure: persist the record and release waiters."""
        detail = "".join(
            traceback.format_exception_only(type(error), error)
        ).strip()
        record = job.record
        with self._lock:
            if self._inflight.get(digest) is not job:
                # Already settled by a racing path (or superseded by a
                # fresh submission of the same digest): never overwrite
                # a terminal record or pop a successor's state.
                return
            record.status = JobStatus.FAILED
            record.finished_unix = wall_clock()
            record.error = detail
            self.counters.failed += 1
            self._merge_worker_fields(record)
            self.jobs.save(record)
            self._inflight.pop(digest, None)
        job.settled.set()

    def _settle_done(
        self,
        digest: str,
        job: _InflightJob,
        duration: float,
        worker: str,
    ) -> None:
        """Terminal success: persist the record and release waiters."""
        record = job.record
        with self._lock:
            if self._inflight.get(digest) is not job:
                return  # settled elsewhere — same guard as _settle_failed
            record.status = JobStatus.DONE
            record.finished_unix = wall_clock()
            record.duration_s = duration
            record.worker = worker
            record.error = None  # clear any retry breadcrumb
            self.counters.executed += 1
            self._merge_worker_fields(record)
            self.jobs.save(record)
            self._inflight.pop(digest, None)
        job.settled.set()

    def _merge_worker_fields(self, record: JobRecord) -> None:
        """Fold the worker's ``running`` save into the parent's record.

        The worker persisted ``started_unix``/``worker``/``lease_unix``
        from its own process; the parent's in-memory record is
        authoritative for everything else (notably coalesced
        ``submissions`` and retry ``attempts``).
        """
        persisted = self.jobs.load(record.digest)
        if persisted is not None:
            if record.started_unix is None:
                record.started_unix = persisted.started_unix
            if record.worker is None:
                record.worker = persisted.worker
            if record.lease_unix is None:
                record.lease_unix = persisted.lease_unix

    def _terminal_record(
        self, digest: str, entry: StoreEntry, source: str
    ) -> JobRecord:
        """The record answering a cache hit.

        Reuses the persisted record when one exists; otherwise
        synthesizes a ``done`` record from the entry's manifest (the
        entry may predate the service — a sweep or CI put it there).
        """
        record = self.jobs.load(digest)
        if record is not None and record.terminal:
            return record
        manifest = entry.manifest
        created = manifest.get("created_unix")
        stamp = (
            float(created)
            if isinstance(created, (int, float))
            else wall_clock()
        )
        duration = manifest.get("duration_s")
        synthesized = JobRecord(
            digest=digest,
            status=JobStatus.DONE,
            submitted_unix=stamp,
            finished_unix=stamp,
            duration_s=(
                float(duration)
                if isinstance(duration, (int, float))
                else float("nan")
            ),
            source="store" if record is None else source,
            description=entry.config.describe(),
        )
        self.jobs.save(synthesized)
        return synthesized

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def status(self, digest: str) -> typing.Optional[JobRecord]:
        """Current record for *digest*, or ``None`` if unknown.

        Resolution order: in-flight state, persisted record, then a
        record synthesized from a bare store entry.
        """
        with self._lock:
            inflight = self._inflight.get(digest)
            if inflight is not None:
                persisted = self.jobs.load(digest)
                record = _copy_record(inflight.record)
                if persisted is not None and persisted.started_unix:
                    record.status = persisted.status
                    record.started_unix = persisted.started_unix
                    record.worker = persisted.worker
                    record.lease_unix = persisted.lease_unix
                return record
        record = self.jobs.load(digest)
        if record is not None:
            return record
        entry = self.store.load(digest)
        if entry is not None:
            with self._lock:
                return self._terminal_record(digest, entry, "store")
        return None

    def result(self, digest: str) -> typing.Optional[StoreEntry]:
        """The store entry for *digest* once done, else ``None``."""
        return self.store.load(digest)

    def wait(self, digest: str, timeout: typing.Optional[float]) -> bool:
        """Block until *digest*'s in-flight execution settles.

        True when the digest is not (or no longer) in flight within
        *timeout* seconds; a digest that was never submitted returns
        True immediately (there is nothing to wait for).  Shutdown
        settles every in-flight event, so waiters never outlive the
        queue.
        """
        with self._lock:
            job = self._inflight.get(digest)
        if job is None:
            return True
        return job.settled.wait(timeout)

    def list_records(
        self,
        status: typing.Optional[str] = None,
        limit: typing.Optional[int] = None,
    ) -> typing.List[JobRecord]:
        """All known job records, newest submission first.

        In-flight state wins over the persisted copy of the same
        digest.  *status* filters exactly; *limit* truncates after
        sorting.
        """
        merged: typing.Dict[str, JobRecord] = {
            record.digest: record for record in self.jobs.records()
        }
        with self._lock:
            for digest, job in self._inflight.items():
                merged[digest] = _copy_record(job.record)
        records = sorted(
            merged.values(),
            key=lambda record: (-record.submitted_unix, record.digest),
        )
        if status is not None:
            records = [
                record for record in records if record.status == status
            ]
        if limit is not None and limit >= 0:
            records = records[:limit]
        return records

    def inflight_count(self) -> int:
        """Digests currently queued or running."""
        with self._lock:
            return len(self._inflight)

    def inflight_digests(self) -> typing.List[str]:
        """Snapshot of the digests currently queued or running."""
        with self._lock:
            return sorted(self._inflight)

    def stats(self) -> typing.Dict[str, typing.Any]:
        """The ``/v1/store/stats`` payload: counters + store footprint."""
        entries, total_bytes = self.store.size_stats()
        return {
            "root": self.store.root,
            "entries": entries,
            "bytes": total_bytes,
            "inflight": self.inflight_count(),
            "workers": self.pool.workers,
            "counters": self.counters.to_json_dict(),
        }

    def service_stats(self) -> typing.Dict[str, typing.Any]:
        """The ``/v1/service/stats`` payload: execution health only.

        The supervised queue extends this with its retry policy and
        pool supervision state.
        """
        return {
            "counters": self.counters.to_json_dict(),
            "inflight": self.inflight_count(),
            "workers": self.pool.workers,
            "max_inflight": self.max_inflight,
            "supervised": False,
        }

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool and release every blocked waiter.

        In-flight jobs are abandoned (their records are reconciled to
        ``failed`` at the next startup); their ``settled`` events fire
        so ``wait``/long-poll callers return instead of hanging on a
        queue that will never settle them.
        """
        with self._lock:
            self._closing = True
            abandoned = list(self._inflight.values())
        for job in abandoned:
            job.settled.set()
        self.pool.shutdown(wait=wait)


def _copy_record(record: JobRecord) -> JobRecord:
    """A detached snapshot safe to hand outside the queue lock."""
    return dataclasses.replace(record)
