"""A minimal stdlib HTTP client for the service API.

Used by the test-suite and the CI smoke job; handy interactively too::

    from repro.service.client import ServiceClient
    client = ServiceClient("127.0.0.1", 8373)
    out = client.submit(config.to_json_dict())
    client.wait(out["digest"])
    print(client.export(out["digest"])["headline"])

One :class:`http.client.HTTPConnection` per request — boring, correct,
and thread-safe by construction.  Non-2xx responses raise
:class:`ServiceError` carrying the status code and the server's JSON
error body.
"""

from __future__ import annotations

import http.client
import json
import typing
import urllib.parse

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(
        self, code: int, payload: typing.Mapping[str, typing.Any]
    ) -> None:
        self.code = code
        self.payload = dict(payload)
        detail = self.payload.get("error", "")
        super().__init__(f"HTTP {code}: {detail}")


class ServiceClient:
    """Talk JSON to one running :class:`~repro.service.api.ServiceServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8373,
        timeout_s: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> typing.Dict[str, typing.Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def submit(
        self, config: typing.Mapping[str, typing.Any]
    ) -> typing.Dict[str, typing.Any]:
        """``POST /v1/runs`` with a ``ScenarioConfig`` JSON dict."""
        return self._request("POST", "/v1/runs", body={"config": config})

    def job(
        self, digest: str, wait_s: typing.Optional[float] = None
    ) -> typing.Dict[str, typing.Any]:
        """``GET /v1/runs/<digest>``, optionally long-polling."""
        query = {"wait": f"{wait_s:g}"} if wait_s is not None else None
        return self._request("GET", f"/v1/runs/{digest}", query=query)

    def wait(
        self, digest: str, timeout_s: float = 60.0
    ) -> typing.Dict[str, typing.Any]:
        """Long-poll until *digest* settles; returns the job payload."""
        return self.job(digest, wait_s=timeout_s)

    def jobs(
        self,
        status: typing.Optional[str] = None,
        limit: typing.Optional[int] = None,
    ) -> typing.Dict[str, typing.Any]:
        """``GET /v1/runs`` with optional filters."""
        query: typing.Dict[str, str] = {}
        if status is not None:
            query["status"] = status
        if limit is not None:
            query["limit"] = str(limit)
        return self._request("GET", "/v1/runs", query=query or None)

    def stats(self) -> typing.Dict[str, typing.Any]:
        """``GET /v1/store/stats``."""
        return self._request("GET", "/v1/store/stats")

    def export(self, digest: str) -> typing.Dict[str, typing.Any]:
        """``GET /v1/runs/<digest>/export`` (strict JSON document)."""
        return self._request("GET", f"/v1/runs/{digest}/export")

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: typing.Optional[typing.Mapping[str, typing.Any]] = None,
        query: typing.Optional[typing.Mapping[str, str]] = None,
    ) -> typing.Dict[str, typing.Any]:
        if query:
            path = f"{path}?{urllib.parse.urlencode(query)}"
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        headers = {"Content-Type": "application/json"} if payload else {}
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8")
        finally:
            connection.close()
        try:
            document = json.loads(text) if text else {}
        except ValueError as error:
            raise ServiceError(
                response.status, {"error": f"non-JSON body: {error}"}
            ) from error
        if not isinstance(document, dict):
            document = {"value": document}
        if not 200 <= response.status < 300:
            raise ServiceError(response.status, document)
        return typing.cast(typing.Dict[str, typing.Any], document)
