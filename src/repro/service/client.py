"""A minimal stdlib HTTP client for the service API.

Used by the test-suite and the CI smoke jobs; handy interactively too::

    from repro.service.client import ServiceClient
    client = ServiceClient("127.0.0.1", 8373)
    out = client.submit(config.to_json_dict())
    client.wait(out["digest"])
    print(client.export(out["digest"])["headline"])

One :class:`http.client.HTTPConnection` per request — boring, correct,
and thread-safe by construction.  Non-2xx responses raise
:class:`ServiceError` carrying the status code and the server's JSON
error body.

The client participates in the service's failure semantics
(``docs/SERVICE.md``): transport failures (connection refused/reset,
timeouts, a server torn down mid-response) are retried up to
``retries`` times with bounded exponential backoff, and a ``503``
answer is retried after honoring the server's ``Retry-After`` header.
Retrying a ``POST /v1/runs`` is always safe — submissions are
idempotent by content digest (single-flight dedup).  Every call may
override the connection timeout via ``timeout_s``.
"""

from __future__ import annotations

import http.client
import json
import time
import typing
import urllib.parse

__all__ = ["ServiceClient", "ServiceError"]

#: Transport-level failures worth retrying: the request may never have
#: reached the server (refused, reset, torn down mid-handshake) or the
#: server went away mid-response.  ``OSError`` covers connection
#: errors and socket timeouts; ``HTTPException`` covers
#: ``RemoteDisconnected``/``BadStatusLine`` during a server restart.
_TRANSPORT_ERRORS: typing.Tuple[typing.Type[BaseException], ...] = (
    OSError,
    http.client.HTTPException,
)

#: Sanity cap on honoring a server-sent ``Retry-After`` value.
_MAX_RETRY_AFTER_S = 30.0


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(
        self, code: int, payload: typing.Mapping[str, typing.Any]
    ) -> None:
        self.code = code
        self.payload = dict(payload)
        detail = self.payload.get("error", "")
        super().__init__(f"HTTP {code}: {detail}")

    @property
    def retry_after_s(self) -> typing.Optional[float]:
        """The server's suggested back-off, when it sent one."""
        value = self.payload.get("retry_after_s")
        if isinstance(value, (int, float)):
            return float(value)
        return None


class ServiceClient:
    """Talk JSON to one running :class:`~repro.service.api.ServiceServer`.

    *retries* bounds re-attempts per call (0 disables); the delay
    before attempt ``n`` is ``backoff_base_s * 2**(n-1)`` capped at
    ``backoff_max_s``, except after a ``503``, where the server's
    ``Retry-After`` wins.  *sleep* is injectable for tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8373,
        timeout_s: float = 120.0,
        retries: int = 2,
        backoff_base_s: float = 0.25,
        backoff_max_s: float = 4.0,
        sleep: typing.Optional[typing.Callable[[float], None]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self._sleep = sleep if sleep is not None else time.sleep

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> typing.Dict[str, typing.Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def submit(
        self, config: typing.Mapping[str, typing.Any]
    ) -> typing.Dict[str, typing.Any]:
        """``POST /v1/runs`` with a ``ScenarioConfig`` JSON dict."""
        return self._request("POST", "/v1/runs", body={"config": config})

    def job(
        self,
        digest: str,
        wait_s: typing.Optional[float] = None,
        timeout_s: typing.Optional[float] = None,
    ) -> typing.Dict[str, typing.Any]:
        """``GET /v1/runs/<digest>``, optionally long-polling."""
        query = {"wait": f"{wait_s:g}"} if wait_s is not None else None
        return self._request(
            "GET", f"/v1/runs/{digest}", query=query, timeout_s=timeout_s
        )

    def wait(
        self, digest: str, timeout_s: float = 60.0
    ) -> typing.Dict[str, typing.Any]:
        """Long-poll until *digest* settles; returns the job payload.

        The connection timeout stretches past the long-poll window so
        a full-length wait is not misread as a dead server.
        """
        return self.job(
            digest,
            wait_s=timeout_s,
            timeout_s=max(self.timeout_s, timeout_s + 10.0),
        )

    def jobs(
        self,
        status: typing.Optional[str] = None,
        limit: typing.Optional[int] = None,
    ) -> typing.Dict[str, typing.Any]:
        """``GET /v1/runs`` with optional filters."""
        query: typing.Dict[str, str] = {}
        if status is not None:
            query["status"] = status
        if limit is not None:
            query["limit"] = str(limit)
        return self._request("GET", "/v1/runs", query=query or None)

    def stats(self) -> typing.Dict[str, typing.Any]:
        """``GET /v1/store/stats``."""
        return self._request("GET", "/v1/store/stats")

    def service_stats(self) -> typing.Dict[str, typing.Any]:
        """``GET /v1/service/stats``."""
        return self._request("GET", "/v1/service/stats")

    def export(self, digest: str) -> typing.Dict[str, typing.Any]:
        """``GET /v1/runs/<digest>/export`` (strict JSON document)."""
        return self._request("GET", f"/v1/runs/{digest}/export")

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _backoff_s(self, attempt: int) -> float:
        """Delay before retry *attempt* (1-based), no server hint."""
        return min(
            self.backoff_max_s,
            self.backoff_base_s * 2.0 ** (attempt - 1),
        )

    def _request(
        self,
        method: str,
        path: str,
        body: typing.Optional[typing.Mapping[str, typing.Any]] = None,
        query: typing.Optional[typing.Mapping[str, str]] = None,
        timeout_s: typing.Optional[float] = None,
    ) -> typing.Dict[str, typing.Any]:
        if query:
            path = f"{path}?{urllib.parse.urlencode(query)}"
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload, timeout_s)
            except ServiceError as error:
                if error.code != 503 or attempt >= self.retries:
                    raise
                attempt += 1
                hinted = error.retry_after_s
                delay_s = (
                    min(hinted, _MAX_RETRY_AFTER_S)
                    if hinted is not None
                    else self._backoff_s(attempt)
                )
                self._sleep(delay_s)
            except _TRANSPORT_ERRORS:
                if attempt >= self.retries:
                    raise
                attempt += 1
                self._sleep(self._backoff_s(attempt))

    def _request_once(
        self,
        method: str,
        path: str,
        payload: typing.Optional[bytes],
        timeout_s: typing.Optional[float],
    ) -> typing.Dict[str, typing.Any]:
        headers = {"Content-Type": "application/json"} if payload else {}
        connection = http.client.HTTPConnection(
            self.host,
            self.port,
            timeout=timeout_s if timeout_s is not None else self.timeout_s,
        )
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8")
        finally:
            connection.close()
        try:
            document = json.loads(text) if text else {}
        except ValueError as error:
            raise ServiceError(
                response.status, {"error": f"non-JSON body: {error}"}
            ) from error
        if not isinstance(document, dict):
            document = {"value": document}
        if not 200 <= response.status < 300:
            retry_after = response.getheader("Retry-After")
            if retry_after is not None and "retry_after_s" not in document:
                try:
                    document["retry_after_s"] = float(retry_after)
                except ValueError:
                    pass
            raise ServiceError(response.status, document)
        return typing.cast(typing.Dict[str, typing.Any], document)
