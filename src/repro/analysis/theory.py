"""Closed-form expectations behind the paper's figures.

The paper's curves have simple geometric explanations, and this module
computes them.  The tests compare these predictions against the
simulator; EXPERIMENTS.md cites them when explaining the measured
magnitudes.

* The **fixed** algorithm's motion overhead is the mean distance
  between two independent uniform points in the 200 m × 200 m subarea —
  the robot sits at its previous repair, the next failure is uniform
  (:func:`mean_distance_uniform_square` ≈ 0.5214 · side ≈ 104 m).
* The **centralized / dynamic** overhead at low utilization is the mean
  distance from a uniform failure to the *nearest* of n uniform robots
  (:func:`mean_nearest_robot_distance` ≈ ½·√(A/n) ≈ 100 m at the
  paper's density — and strictly below the fixed value once robots can
  cross subarea lines).
* The **centralized report hop count** grows like the mean distance to
  the field centre (:func:`mean_distance_to_center` ≈ 0.3826 · side)
  divided by the per-hop greedy progress, while the distributed
  algorithms' reports span one subarea (≈ 100 m / progress ≈ 2 hops) —
  Figure 3's exact shape.
* The **location-update transmissions** per failure are (travel / update
  threshold) floods, each relayed once by every sensor in scope
  (:func:`expected_update_transmissions`) — Figure 4's magnitude.
"""

from __future__ import annotations

import math
import typing

from repro.sim.rng import RandomStream, RandomStreams

__all__ = [
    "MEAN_DISTANCE_UNIFORM_UNIT_SQUARE",
    "MEAN_DISTANCE_TO_CENTER_UNIT_SQUARE",
    "mean_distance_uniform_square",
    "mean_distance_to_center",
    "mean_nearest_robot_distance",
    "expected_greedy_hops",
    "expected_update_transmissions",
    "monte_carlo_mean_distance",
]

#: Exact constant: E|P-Q| for P,Q uniform on the unit square
#: ( (2 + √2 + 5·asinh(1)) / 15 ).
MEAN_DISTANCE_UNIFORM_UNIT_SQUARE = (
    2.0 + math.sqrt(2.0) + 5.0 * math.asinh(1.0)
) / 15.0

#: Exact constant: E|P-c| for P uniform on the unit square, c its centre
#: ( (√2 + asinh(1)) / 6 ).
MEAN_DISTANCE_TO_CENTER_UNIT_SQUARE = (
    math.sqrt(2.0) + math.asinh(1.0)
) / 6.0


def mean_distance_uniform_square(side: float) -> float:
    """E[distance] between two uniform points in a ``side``² square.

    The fixed algorithm's steady-state motion overhead: its robot's
    position and the next failure are both uniform in the subarea.
    """
    return MEAN_DISTANCE_UNIFORM_UNIT_SQUARE * side


def mean_distance_to_center(side: float) -> float:
    """E[distance] from a uniform point to the centre of a square.

    The centralized algorithm's mean failure-report distance (§3.1 puts
    the manager at the field centre).
    """
    return MEAN_DISTANCE_TO_CENTER_UNIT_SQUARE * side


def mean_nearest_robot_distance(
    area_m2: float, robot_count: int
) -> float:
    """E[distance] from a uniform point to the nearest of n uniform
    robots, Poisson approximation ``0.5·sqrt(A/n)``.

    The centralized/dynamic motion overhead at low utilization, modulo
    boundary effects (the approximation ignores the field edge, so it
    runs a few percent low at small n).
    """
    if robot_count < 1:
        raise ValueError(f"need at least one robot: {robot_count}")
    return 0.5 * math.sqrt(area_m2 / robot_count)


def expected_greedy_hops(
    distance_m: float,
    radio_range_m: float,
    progress_fraction: float = 0.72,
) -> float:
    """Hops for greedy geographic forwarding over *distance_m*.

    Each hop advances about ``progress_fraction · range`` towards the
    destination at the paper's density (~15 neighbours per sensor); the
    default fraction matches the simulator's measured per-hop progress.
    """
    if distance_m <= 0:
        return 0.0
    return max(1.0, distance_m / (radio_range_m * progress_fraction))


def expected_update_transmissions(
    travel_per_failure_m: float,
    update_threshold_m: float,
    sensors_in_scope: float,
    redundancy: float = 1.1,
) -> float:
    """Figure 4's magnitude for the distributed algorithms.

    ``travel / threshold`` floods per failure (one per threshold
    crossing, plus the arrival update rolls into the same count), each
    relayed once by every sensor in the flood scope; *redundancy*
    absorbs the origin transmission and boundary re-relays.
    """
    floods = travel_per_failure_m / update_threshold_m
    return floods * sensors_in_scope * redundancy


def monte_carlo_mean_distance(
    sampler: typing.Callable[[RandomStream], float],
    samples: int = 20_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo mean of a distance functional — the test oracle used
    to validate the closed forms above."""
    rng = RandomStreams(seed).stream("monte-carlo")
    total = 0.0
    for _ in range(samples):
        total += sampler(rng)
    return total / samples
