"""Energy accounting for sensors and robots.

The paper's objective function is energy-shaped: "minimize the motion
energy of mobile robots and the messaging overhead incurred to the
sensor network" (§1), with motion overhead "measured as the robots'
traveling distance which reflects the energy consumed" (§2).  This
module converts the simulator's native counts — metres travelled and
frames transmitted/received — into joules under a parametric energy
model, so the two overhead currencies can be compared on one axis.

Default coefficients (documented substitutions, not paper values):

* radio energy follows the classic first-order model used throughout
  the WSN literature (Heinzelman et al.): ~50 nJ/bit electronics plus
  ~100 pJ/bit/m² amplifier at short range — rolled into per-bit send
  and receive costs at the paper's 63 m sensor range;
* robot motion cost uses the Pioneer 3DX figure the authors themselves
  measured in their cited robot-energy study [9] (Mei et al., ICAR
  2005): on the order of 20 J per metre at ~1 m/s.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.metrics.collector import MetricsCollector
from repro.net.channel import Channel

__all__ = ["EnergyModel", "EnergyReport", "energy_report"]


@dataclasses.dataclass(frozen=True, slots=True)
class EnergyModel:
    """Coefficients converting counts into joules."""

    #: Sensor radio: energy to transmit one bit (electronics + amp).
    tx_j_per_bit: float = 1.0e-6
    #: Sensor radio: energy to receive one bit.
    rx_j_per_bit: float = 0.5e-6
    #: Robot locomotion energy per metre (Pioneer 3DX class, ~1 m/s).
    motion_j_per_m: float = 20.0
    #: Average frame size used when converting frame counts to bits.
    frame_size_bits: int = 512

    def __post_init__(self) -> None:
        if min(
            self.tx_j_per_bit, self.rx_j_per_bit, self.motion_j_per_m
        ) < 0:
            raise ValueError("energy coefficients must be non-negative")
        if self.frame_size_bits <= 0:
            raise ValueError(
                f"non-positive frame size: {self.frame_size_bits}"
            )


@dataclasses.dataclass(frozen=True, slots=True)
class EnergyReport:
    """Energy totals for one run."""

    #: Joules spent transmitting, by message category.
    tx_by_category: typing.Dict[str, float]
    #: Total transmit energy across categories.
    tx_total_j: float
    #: Total receive energy (every delivered frame costs the receiver).
    rx_total_j: float
    #: Joules of robot locomotion, by robot.
    motion_by_robot: typing.Dict[str, float]
    #: Total locomotion energy.
    motion_total_j: float

    @property
    def messaging_total_j(self) -> float:
        """Radio energy (transmit + receive)."""
        return self.tx_total_j + self.rx_total_j

    @property
    def grand_total_j(self) -> float:
        """Messaging plus motion."""
        return self.messaging_total_j + self.motion_total_j

    def summary_lines(self) -> typing.List[str]:
        """Human-readable multi-line summary."""
        lines = [
            f"motion energy:    {self.motion_total_j:12.1f} J",
            f"messaging energy: {self.messaging_total_j:12.1f} J "
            f"(tx {self.tx_total_j:.1f} + rx {self.rx_total_j:.1f})",
            f"total:            {self.grand_total_j:12.1f} J",
        ]
        for category, joules in sorted(
            self.tx_by_category.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  tx {category:20s} {joules:10.2f} J")
        return lines


def energy_report(
    channel: Channel,
    metrics: MetricsCollector,
    model: typing.Optional[EnergyModel] = None,
) -> EnergyReport:
    """Convert a finished run's counters into an :class:`EnergyReport`."""
    model = model or EnergyModel()
    bit_cost = model.frame_size_bits

    tx_by_category = {
        category: count * bit_cost * model.tx_j_per_bit
        for category, count in channel.stats.transmissions.items()
    }
    tx_total = sum(tx_by_category.values())
    rx_total = (
        channel.stats.frames_delivered * bit_cost * model.rx_j_per_bit
    )
    motion_by_robot = {
        robot_id: distance * model.motion_j_per_m
        for robot_id, distance in metrics.robot_distance.items()
    }
    return EnergyReport(
        tx_by_category=tx_by_category,
        tx_total_j=tx_total,
        rx_total_j=rx_total,
        motion_by_robot=motion_by_robot,
        motion_total_j=sum(motion_by_robot.values()),
    )
