"""Sensing-coverage analysis.

The paper's motivation (§1) is that failed nodes "leave holes in
coverage" and that replacement "maintains the coverage".  The figures
never quantify coverage directly, but it is the quantity the whole
system exists to protect — so this module measures it:

* :func:`coverage_fraction` — fraction of the field within sensing range
  of at least one live sensor, estimated on a sampling lattice;
* :class:`CoverageTracker` — samples coverage periodically during a run
  and integrates the *coverage deficit* (fraction-seconds of field left
  unsensed), which is the natural end-to-end score of a maintenance
  algorithm: faster repair ⇒ smaller deficit.

The sensing radius is a modelling input (sensing ≠ radio range); the
default follows the common WSN convention of half the communication
range, giving ~98 % initial coverage at the paper's densities.
"""

from __future__ import annotations

import typing

from repro.geometry.point import Point
from repro.geometry.polygon import Rect
from repro.net.spatial import SpatialGrid

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import ScenarioRuntime

__all__ = [
    "DEFAULT_SENSING_RADIUS_M",
    "coverage_fraction",
    "CoverageSample",
    "CoverageTracker",
]

#: Half the paper's 63 m sensor radio range.
DEFAULT_SENSING_RADIUS_M = 31.5


def coverage_fraction(
    sensor_positions: typing.Iterable[Point],
    bounds: Rect,
    sensing_radius: float = DEFAULT_SENSING_RADIUS_M,
    resolution: int = 50,
) -> float:
    """Fraction of *bounds* within *sensing_radius* of any sensor.

    Estimated on a ``resolution × resolution`` lattice of cell centres —
    deterministic, and accurate to ~1/resolution of the field side.
    """
    if resolution < 1:
        raise ValueError(f"resolution must be positive: {resolution}")
    grid = SpatialGrid(cell_size=max(sensing_radius, 1.0))
    count = 0
    for index, position in enumerate(sensor_positions):
        grid.insert(f"s{index}", position)
        count += 1
    if count == 0:
        return 0.0

    step_x = bounds.width / resolution
    step_y = bounds.height / resolution
    covered = 0
    total = resolution * resolution
    for row in range(resolution):
        y = bounds.y_min + (row + 0.5) * step_y
        for col in range(resolution):
            x = bounds.x_min + (col + 0.5) * step_x
            if grid.within(Point(x, y), sensing_radius):
                covered += 1
    return covered / total


class CoverageSample(typing.NamedTuple):
    """One timestamped coverage measurement."""

    time: float
    fraction: float
    live_sensors: int


class CoverageTracker:
    """Samples a running scenario's sensing coverage on a fixed period.

    Attach before :meth:`ScenarioRuntime.run`::

        runtime = ScenarioRuntime(config)
        tracker = CoverageTracker(runtime, period=500.0)
        report = runtime.run()
        print(tracker.mean_coverage(), tracker.deficit_integral())
    """

    def __init__(
        self,
        runtime: "ScenarioRuntime",
        period: float = 500.0,
        sensing_radius: float = DEFAULT_SENSING_RADIUS_M,
        resolution: int = 40,
    ) -> None:
        if period <= 0:
            raise ValueError(f"non-positive sampling period: {period}")
        self.runtime = runtime
        self.period = period
        self.sensing_radius = sensing_radius
        self.resolution = resolution
        self.samples: typing.List[CoverageSample] = []
        runtime.sim.process(self._sample_loop(), name="coverage-tracker")

    def _sample_loop(self) -> typing.Generator:
        sim = self.runtime.sim
        while True:
            self._take_sample()
            yield sim.timeout(self.period)

    def _take_sample(self) -> None:
        positions = [
            sensor.position
            for sensor in self.runtime.sensors.values()
            if sensor.alive
        ]
        fraction = coverage_fraction(
            positions,
            self.runtime.config.bounds,
            self.sensing_radius,
            self.resolution,
        )
        self.samples.append(
            CoverageSample(
                time=self.runtime.sim.now,
                fraction=fraction,
                live_sensors=len(positions),
            )
        )

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def mean_coverage(self) -> float:
        """Time-averaged covered fraction (trapezoid over samples)."""
        if len(self.samples) < 2:
            return self.samples[0].fraction if self.samples else 0.0
        area = 0.0
        span = self.samples[-1].time - self.samples[0].time
        for earlier, later in zip(self.samples, self.samples[1:]):
            area += (
                (earlier.fraction + later.fraction)
                / 2.0
                * (later.time - earlier.time)
            )
        return area / span if span > 0 else self.samples[0].fraction

    def minimum_coverage(self) -> float:
        """The worst coverage observed."""
        if not self.samples:
            return 0.0
        return min(sample.fraction for sample in self.samples)

    def deficit_integral(self, baseline: typing.Optional[float] = None) -> float:
        """Integrated coverage deficit in fraction·seconds.

        The deficit at each instant is ``max(0, baseline - coverage)``;
        *baseline* defaults to the first sample (the as-deployed
        coverage).  Lower is better; a maintenance algorithm that
        repairs faster accumulates less deficit.
        """
        if len(self.samples) < 2:
            return 0.0
        if baseline is None:
            baseline = self.samples[0].fraction
        total = 0.0
        for earlier, later in zip(self.samples, self.samples[1:]):
            deficit_a = max(0.0, baseline - earlier.fraction)
            deficit_b = max(0.0, baseline - later.fraction)
            total += (deficit_a + deficit_b) / 2.0 * (
                later.time - earlier.time
            )
        return total

    def __repr__(self) -> str:
        return (
            f"<CoverageTracker samples={len(self.samples)} "
            f"period={self.period}>"
        )
