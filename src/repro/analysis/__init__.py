"""Analysis layer: coverage, energy accounting, and closed-form theory."""

from repro.analysis.coverage import (
    CoverageSample,
    CoverageTracker,
    DEFAULT_SENSING_RADIUS_M,
    coverage_fraction,
)
from repro.analysis.energy import EnergyModel, EnergyReport, energy_report
from repro.analysis.holes import CoverageGap, HoleTracker, worst_gap
from repro.analysis.theory import (
    expected_greedy_hops,
    expected_update_transmissions,
    mean_distance_to_center,
    mean_distance_uniform_square,
    mean_nearest_robot_distance,
)

__all__ = [
    "CoverageGap",
    "CoverageSample",
    "CoverageTracker",
    "DEFAULT_SENSING_RADIUS_M",
    "EnergyModel",
    "EnergyReport",
    "HoleTracker",
    "coverage_fraction",
    "energy_report",
    "worst_gap",
    "expected_greedy_hops",
    "expected_update_transmissions",
    "mean_distance_to_center",
    "mean_distance_uniform_square",
    "mean_nearest_robot_distance",
]
