"""Coverage-hole geometry: where is the field worst covered?

The paper's problem statement is that failed nodes "leave holes in
coverage", and it cites the Voronoi-based coverage literature
(Meguerdichian et al. [8]; Carbunar et al. [3]).  This module implements
the classic result those works build on: over a convex field, the point
farthest from every sensor — the centre of the **largest empty circle**,
i.e. the worst-covered spot — lies on a Voronoi vertex of the sensor
set, on an intersection of a Voronoi edge with the field boundary, or on
a field corner.  We enumerate exactly those candidates using our own
bounded-Voronoi construction.

:func:`worst_gap` returns that point and its distance to the nearest
sensor; a deployment has a coverage hole iff the gap exceeds the sensing
radius.  :class:`HoleTracker` follows the gap through a run, showing how
failures open holes and repairs close them.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.geometry.point import Point
from repro.geometry.polygon import Rect
from repro.geometry.voronoi import voronoi_cells

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import ScenarioRuntime

__all__ = ["CoverageGap", "worst_gap", "HoleTracker"]


@dataclasses.dataclass(frozen=True, slots=True)
class CoverageGap:
    """The worst-covered point of the field."""

    location: Point
    #: Distance from :attr:`location` to the nearest live sensor.
    distance: float

    def is_hole(self, sensing_radius: float) -> bool:
        """True when the gap exceeds the sensing radius."""
        return self.distance > sensing_radius


def worst_gap(
    sensor_positions: typing.Sequence[Point],
    bounds: Rect,
) -> CoverageGap:
    """The largest-empty-circle centre over *bounds* and its radius.

    Exact (up to floating point) via Voronoi-vertex enumeration — no
    sampling grid.  With no sensors the gap is the field diagonal from
    a corner.
    """
    corners = list(bounds.corners)
    if not sensor_positions:
        return CoverageGap(location=corners[0], distance=bounds.diagonal())

    candidates: typing.List[Point] = list(corners)
    cells = voronoi_cells(list(sensor_positions), bounds)
    for cell in cells:
        # Bounded-cell vertices include both true Voronoi vertices and
        # the boundary/edge intersections — exactly the candidate set.
        candidates.extend(cell.vertices)

    best_location = candidates[0]
    best_distance = -1.0
    for candidate in candidates:
        nearest = min(
            candidate.distance_to(position)
            for position in sensor_positions
        )
        if nearest > best_distance:
            best_distance = nearest
            best_location = candidate
    return CoverageGap(location=best_location, distance=best_distance)


class HoleTracker:
    """Samples the worst coverage gap through a run.

    Like :class:`~repro.analysis.coverage.CoverageTracker` but tracking
    the *extreme* rather than the mean: the gap spikes when a sensor
    dies and relaxes when its replacement arrives.

    Note: each sample costs a Voronoi construction over all live
    sensors — O(n²) — so use generous periods on big deployments.
    """

    def __init__(
        self,
        runtime: "ScenarioRuntime",
        period: float = 1_000.0,
    ) -> None:
        if period <= 0:
            raise ValueError(f"non-positive sampling period: {period}")
        self.runtime = runtime
        self.period = period
        self.samples: typing.List[typing.Tuple[float, CoverageGap]] = []
        runtime.sim.process(self._sample_loop(), name="hole-tracker")

    def _sample_loop(self) -> typing.Generator:
        while True:
            positions = [
                sensor.position
                for sensor in self.runtime.sensors.values()
                if sensor.alive
            ]
            gap = worst_gap(positions, self.runtime.config.bounds)
            self.samples.append((self.runtime.sim.now, gap))
            yield self.runtime.sim.timeout(self.period)

    def max_gap(self) -> float:
        """The largest gap observed across all samples."""
        if not self.samples:
            return 0.0
        return max(gap.distance for _time, gap in self.samples)

    def hole_fraction(self, sensing_radius: float) -> float:
        """Fraction of samples where a coverage hole existed."""
        if not self.samples:
            return 0.0
        holes = sum(
            1
            for _time, gap in self.samples
            if gap.is_hole(sensing_radius)
        )
        return holes / len(self.samples)
