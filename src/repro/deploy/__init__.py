"""Deployment: placement, lifetimes/failures, and scenario configs."""

from repro.deploy.failure import (
    DEFAULT_MEAN_LIFETIME_S,
    ExponentialLifetime,
    FailureProcess,
    FixedLifetime,
    LifetimeDistribution,
    WeibullLifetime,
)
from repro.deploy.placement import (
    connected_uniform_positions,
    is_connected,
    jittered_grid_positions,
    uniform_random_positions,
)
from repro.deploy.placement_cache import (
    placement_key,
    reset_placement_cache,
    sensor_positions_for,
)
from repro.deploy.scenario import (
    Algorithm,
    DetectionMode,
    DispatchPolicy,
    PAPER_ROBOT_COUNTS,
    PartitionStyle,
    PlacementStyle,
    ScenarioConfig,
    paper_scenario,
)

__all__ = [
    "Algorithm",
    "DEFAULT_MEAN_LIFETIME_S",
    "DetectionMode",
    "DispatchPolicy",
    "ExponentialLifetime",
    "FailureProcess",
    "FixedLifetime",
    "LifetimeDistribution",
    "PAPER_ROBOT_COUNTS",
    "PartitionStyle",
    "PlacementStyle",
    "ScenarioConfig",
    "WeibullLifetime",
    "connected_uniform_positions",
    "is_connected",
    "jittered_grid_positions",
    "paper_scenario",
    "placement_key",
    "reset_placement_cache",
    "sensor_positions_for",
    "uniform_random_positions",
]
