"""Sensor lifetime distributions and the failure process.

Paper §2 assumption (a): "The lifetime of a node is limited, and follows
an exponential distribution with an expected value of T", with
T = 16 000 s in the evaluation (§4.1 item 6).  Replacement nodes start a
fresh lifetime, so failures keep occurring over the whole simulation.

:class:`FailureProcess` owns the death scheduling: the scenario runtime
registers every sensor (and every replacement sensor) with it, and it
kills the node at its sampled failure time, notifying subscribers so the
metrics collector can time repairs.
"""

from __future__ import annotations

import typing

from repro.net.node import NetworkNode
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.rng import RandomStream

__all__ = [
    "LifetimeDistribution",
    "ExponentialLifetime",
    "WeibullLifetime",
    "FixedLifetime",
    "FailureProcess",
    "DEFAULT_MEAN_LIFETIME_S",
]

#: The paper's expected sensor lifetime (§4.1 item 6).
DEFAULT_MEAN_LIFETIME_S = 16_000.0


class LifetimeDistribution(typing.Protocol):
    """Samples node lifetimes in seconds."""

    def sample(self, rng: RandomStream) -> float:
        """Draw one lifetime."""
        ...  # pragma: no cover - protocol


class ExponentialLifetime:
    """Memoryless lifetime with the given mean — the paper's model."""

    def __init__(self, mean: float = DEFAULT_MEAN_LIFETIME_S) -> None:
        if mean <= 0:
            raise ValueError(f"non-positive mean lifetime: {mean}")
        self.mean = mean

    def sample(self, rng: RandomStream) -> float:
        return rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"ExponentialLifetime(mean={self.mean})"


class WeibullLifetime:
    """Weibull lifetime — wear-out (shape > 1) or infant-mortality
    (shape < 1) failure regimes, beyond the paper's memoryless model.

    ``scale`` is the Weibull λ parameter; the mean is
    ``λ · Γ(1 + 1/shape)``.
    """

    def __init__(self, scale: float, shape: float) -> None:
        if scale <= 0 or shape <= 0:
            raise ValueError(
                f"non-positive Weibull parameters: scale={scale} shape={shape}"
            )
        self.scale = scale
        self.shape = shape

    def sample(self, rng: RandomStream) -> float:
        return rng.weibullvariate(self.scale, self.shape)

    def __repr__(self) -> str:
        return f"WeibullLifetime(scale={self.scale}, shape={self.shape})"


class FixedLifetime:
    """Deterministic lifetime — used by tests that need exact timings."""

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"non-positive lifetime: {value}")
        self.value = value

    def sample(self, rng: RandomStream) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"FixedLifetime({self.value})"


class FailureProcess:
    """Schedules and executes sensor deaths.

    Parameters
    ----------
    sim:
        The simulator.
    distribution:
        Lifetime distribution shared by all registered nodes.
    rng:
        Stream for lifetime draws (typically ``streams.stream("lifetime")``).
    horizon:
        Deaths sampled beyond this time are not scheduled at all (the
        run ends first) — avoids a pile of dead events.
    """

    def __init__(
        self,
        sim: Simulator,
        distribution: LifetimeDistribution,
        rng: RandomStream,
        horizon: typing.Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.distribution = distribution
        self.rng = rng
        self.horizon = horizon
        self.failures = 0
        #: Hooks called as ``hook(node, time)`` right after a death.
        self.death_hooks: typing.List[
            typing.Callable[[NetworkNode, float], None]
        ] = []
        self._scheduled: typing.Dict[str, Event] = {}

    def register(self, node: NetworkNode) -> float:
        """Sample a lifetime for *node* and schedule its death.

        Returns the absolute death time (possibly beyond the horizon, in
        which case no event is scheduled).
        """
        lifetime = self.distribution.sample(self.rng)
        death_time = self.sim.now + lifetime
        if self.horizon is not None and death_time > self.horizon:
            return death_time
        event = self.sim.call_in(lifetime, lambda: self._kill(node))
        self._scheduled[node.node_id] = event
        return death_time

    def cancel(self, node_id: str) -> None:
        """Withdraw a scheduled death (e.g. node retired gracefully)."""
        event = self._scheduled.pop(node_id, None)
        if event is not None:
            self.sim.cancel(event)

    def kill_now(self, node: NetworkNode) -> None:
        """Force an immediate failure (failure-injection in tests)."""
        self.cancel(node.node_id)
        self._kill(node)

    def _kill(self, node: NetworkNode) -> None:
        self._scheduled.pop(node.node_id, None)
        if not node.alive:
            return
        node.die()
        self.failures += 1
        for hook in self.death_hooks:
            hook(node, self.sim.now)

    def __repr__(self) -> str:
        return (
            f"<FailureProcess {self.distribution!r} failures={self.failures} "
            f"pending={len(self._scheduled)}>"
        )
