"""Node placement strategies.

The paper assumes sensors and robots are "randomly uniformly distributed
in a 2-dimensional field" (§2 assumption (a)).  Uniform placement is the
default; a jittered grid is available for tests and examples that want
guaranteed coverage, and a connectivity check lets the scenario builder
resample the rare disconnected layout (the paper's density — 50 sensors
per 200 m × 200 m with a 63 m radio — is connected with overwhelming
probability).
"""

from __future__ import annotations

import math
import typing

from repro.geometry.point import Point
from repro.geometry.polygon import Rect
from repro.sim.rng import RandomStream

__all__ = [
    "uniform_random_positions",
    "jittered_grid_positions",
    "is_connected",
    "connected_uniform_positions",
]


def uniform_random_positions(
    count: int, bounds: Rect, rng: RandomStream
) -> typing.List[Point]:
    """*count* positions drawn i.i.d. uniformly over *bounds*."""
    if count < 0:
        raise ValueError(f"negative count: {count}")
    return [
        Point(
            rng.uniform(bounds.x_min, bounds.x_max),
            rng.uniform(bounds.y_min, bounds.y_max),
        )
        for _ in range(count)
    ]


def jittered_grid_positions(
    count: int,
    bounds: Rect,
    rng: typing.Optional[RandomStream] = None,
    jitter_fraction: float = 0.25,
) -> typing.List[Point]:
    """*count* positions on a near-square grid, each jittered within its
    cell by ±``jitter_fraction`` of the cell size.

    With ``rng=None`` the grid is exact (no jitter) — useful for fully
    deterministic unit tests.
    """
    if count <= 0:
        return []
    cols = max(1, round(math.sqrt(count * bounds.width / bounds.height)))
    rows = math.ceil(count / cols)
    cell_w = bounds.width / cols
    cell_h = bounds.height / rows
    positions: typing.List[Point] = []
    for index in range(count):
        row, col = divmod(index, cols)
        cx = bounds.x_min + (col + 0.5) * cell_w
        cy = bounds.y_min + (row + 0.5) * cell_h
        if rng is not None:
            cx += rng.uniform(-jitter_fraction, jitter_fraction) * cell_w
            cy += rng.uniform(-jitter_fraction, jitter_fraction) * cell_h
        positions.append(bounds.clamp(Point(cx, cy)))
    return positions


def is_connected(
    positions: typing.Sequence[Point], radio_range: float
) -> bool:
    """True if the unit-disk graph over *positions* is connected.

    Union-find over a spatial bucketing; O(n · neighbours) in practice.
    An empty or single-node layout counts as connected.
    """
    n = len(positions)
    if n <= 1:
        return True

    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    # Bucket by radio_range-sized cells so we compare only nearby pairs.
    cell = radio_range
    buckets: typing.Dict[typing.Tuple[int, int], typing.List[int]] = {}
    for i, p in enumerate(positions):
        buckets.setdefault(
            (math.floor(p.x / cell), math.floor(p.y / cell)), []
        ).append(i)

    range_sq = radio_range * radio_range
    for (cx, cy), members in buckets.items():
        neighbourhood: typing.List[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                neighbourhood.extend(buckets.get((cx + dx, cy + dy), ()))
        for i in members:
            pi = positions[i]
            for j in neighbourhood:
                if j <= i:
                    continue
                if pi.squared_distance_to(positions[j]) <= range_sq:
                    union(i, j)

    root = find(0)
    return all(find(i) == root for i in range(1, n))


def connected_uniform_positions(
    count: int,
    bounds: Rect,
    radio_range: float,
    rng: RandomStream,
    max_attempts: int = 50,
) -> typing.List[Point]:
    """Uniform placement, resampled until the unit-disk graph connects.

    Raises
    ------
    RuntimeError
        If no connected layout is found within *max_attempts* draws —
        a sign the requested density is far below the connectivity
        threshold, not a transient failure.
    """
    for _ in range(max_attempts):
        positions = uniform_random_positions(count, bounds, rng)
        if is_connected(positions, radio_range):
            return positions
    raise RuntimeError(
        f"no connected placement of {count} nodes in {bounds!r} with "
        f"range {radio_range} after {max_attempts} attempts"
    )
