"""Per-process cache of computed sensor placements.

Sweeps evaluate many configs that differ only in algorithm or
simulation knobs while sharing a deployment: the three algorithms at
one ``(robot_count, seed)`` grid cell all place the same sensors, and
re-runs of a cached-miss batch recompute the same layouts again.
Placement — especially :func:`~repro.deploy.placement.connected_uniform_positions`,
which may resample the whole field dozens of times to find a connected
layout — is a measurable slice of short-run wall time, so this module
memoizes it per process, keyed on exactly the config fields that
determine the result.

Determinism: positions are drawn from a **fresh** ``"placement"``
stream derived from the config seed (``RandomStreams(seed)``), which is
byte-for-byte the stream :class:`~repro.core.runtime.ScenarioRuntime`
used to create itself — named streams are independently seeded via
``sha256(f"{seed}:{name}")``, so deriving it here instead of inside the
runtime yields the identical draw sequence, and *not* advancing the
runtime's own copy perturbs no other stream.  Cached entries are
immutable tuples of frozen :class:`~repro.geometry.point.Point`
objects, safely shared between runs.

The cache is deliberately **per process** (a module global): persistent
sweep workers fill it once per placement group and reuse it for every
chunked run they execute; independent processes never share state, so
cross-run leakage is impossible.  It is written only during
``ScenarioRuntime`` construction — never from scheduled event handlers.
"""

from __future__ import annotations

import typing

from repro.deploy.placement import (
    connected_uniform_positions,
    jittered_grid_positions,
)
from repro.deploy.scenario import PlacementStyle, ScenarioConfig
from repro.geometry.point import Point
from repro.sim.rng import RandomStreams

__all__ = [
    "placement_key",
    "sensor_positions_for",
    "reset_placement_cache",
]

#: The placement-relevant config subset: everything
#: :func:`sensor_positions_for` reads, and nothing else.
PlacementKey = typing.Tuple[str, int, int, float, float]

#: Entries kept per process; a full paper sweep uses one entry per
#: (robot_count, seed) pair, so the bound is far above real use.
_MAX_ENTRIES = 64

_cache: typing.Dict[PlacementKey, typing.Tuple[Point, ...]] = {}


def placement_key(
    config: ScenarioConfig, radio_range_m: float
) -> PlacementKey:
    """The cache key: the fields that determine sensor placement.

    ``area_side_m`` stands in for the bounds (the field is always a
    square anchored at the origin), and *radio_range_m* covers the
    connectivity requirement of the uniform style.  Algorithm, robot
    count beyond its effect on field size, timers, fault knobs, etc.
    deliberately do not appear: configs differing only in those share
    a placement.
    """
    return (
        config.placement,
        config.sensor_count,
        config.seed,
        config.area_side_m,
        radio_range_m,
    )


def sensor_positions_for(
    config: ScenarioConfig, radio_range_m: float
) -> typing.Tuple[Point, ...]:
    """Sensor positions for *config*, computed once per process.

    Bit-identical to drawing from the runtime's ``"placement"`` stream
    directly (see the module docstring).  The returned tuple is shared
    between callers — treat it as read-only (``Point`` is frozen, so
    accidental mutation is impossible anyway).
    """
    key = placement_key(config, radio_range_m)
    cached = _cache.get(key)
    if cached is not None:
        return cached
    placement_rng = RandomStreams(config.seed).stream("placement")
    if config.placement == PlacementStyle.GRID:
        positions = jittered_grid_positions(
            config.sensor_count, config.bounds, placement_rng
        )
    else:
        positions = connected_uniform_positions(
            config.sensor_count,
            config.bounds,
            radio_range_m,
            placement_rng,
        )
    if len(_cache) >= _MAX_ENTRIES:
        _cache.clear()
    result = tuple(positions)
    _cache[key] = result
    return result


def reset_placement_cache() -> None:
    """Drop every cached placement (tests and memory-pressure hook)."""
    global _cache
    _cache = {}
