"""Scenario configuration: the paper's parameter space as a value type.

§4.1 of the paper fixes the evaluation parameters; :func:`paper_scenario`
reproduces them exactly.  The field scales with the robot count so that
the *average area per robot* stays 200 m × 200 m and the density stays 50
sensors per robot: with ``k²`` robots the field is ``(200·k)²`` with
``50·k²`` sensors (e.g. 16 robots → 800 m × 800 m, 800 sensors).
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.faults.script import (
    FaultEvent,
    FaultKind,
    normalize_fault_script,
)
from repro.geometry.polygon import Rect

__all__ = [
    "Algorithm",
    "DetectionMode",
    "DispatchPolicy",
    "PlacementStyle",
    "PartitionStyle",
    "ScenarioConfig",
    "paper_scenario",
    "PAPER_ROBOT_COUNTS",
]

#: Robot counts evaluated in the paper's figures (§4.3.1).
PAPER_ROBOT_COUNTS = (4, 9, 16)


class Algorithm:
    """The three coordination algorithms of paper §3."""

    CENTRALIZED = "centralized"
    FIXED = "fixed"
    DYNAMIC = "dynamic"

    ALL = (CENTRALIZED, FIXED, DYNAMIC)


class DetectionMode:
    """How guardian failure detection is simulated.

    ``BEACON`` runs the full packet-level beacon protocol (every sensor
    broadcasts every 10 s; guardians time out after three silent
    periods).  ``EVENT`` schedules the detection directly at
    death + U(3, 4) beacon periods — the same latency distribution
    without simulating millions of beacon frames.  The paper's compared
    metrics exclude beacon overhead ("we focus on the overhead from
    failure report and location update", §4.3.2), so benchmarks default
    to ``EVENT``; equivalence of the two modes is asserted by tests.
    """

    BEACON = "beacon"
    EVENT = "event"

    ALL = (BEACON, EVENT)


class PlacementStyle:
    """Sensor placement: the paper's uniform draw, or a jittered grid."""

    UNIFORM = "uniform"
    GRID = "grid"

    ALL = (UNIFORM, GRID)


class PartitionStyle:
    """Fixed-algorithm subarea shapes (paper §4.3.1 evaluates square)."""

    SQUARE = "square"
    STAGGERED = "staggered"

    ALL = (SQUARE, STAGGERED)


class DispatchPolicy:
    """How the central manager picks the maintainer for a failure.

    ``CLOSEST`` is the paper's rule ("the manager selects the robot
    whose current location is the closest to the failure").  The other
    two are extensions exploring the conclusion's remark that "the
    optimal choice ... depends on specific scenarios and objectives":
    under load, dispatching to an already-busy robot queues the failure
    behind jobs that will drag the robot elsewhere.

    * ``CLOSEST_IDLE`` — prefer the closest *idle* robot (no outstanding
      jobs); fall back to the paper's rule when all are busy.
    * ``LEAST_LOADED`` — minimise outstanding jobs, break ties by
      distance.

    Both extensions require robots to report job completion back to the
    manager (one extra routed message per repair, accounted under the
    ``completion`` category).  Centralized algorithm only.
    """

    CLOSEST = "closest"
    CLOSEST_IDLE = "closest_idle"
    LEAST_LOADED = "least_loaded"

    ALL = (CLOSEST, CLOSEST_IDLE, LEAST_LOADED)


@dataclasses.dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """All knobs of one simulated deployment.

    The defaults are the paper's (§4.1).  Everything the simulation does
    is a pure function of this config plus the seed.
    """

    algorithm: str = Algorithm.CENTRALIZED
    robot_count: int = 4
    seed: int = 0

    # --- scaling rules (paper §4.1 items 1, 3) ------------------------
    area_per_robot_m2: float = 200.0 * 200.0
    sensors_per_robot: int = 50

    # --- kinematics & lifetimes (items 2, 6, 7) -----------------------
    robot_speed_mps: float = 1.0
    mean_lifetime_s: float = 16_000.0
    sim_time_s: float = 64_000.0

    # --- protocol timers (item 8, §4.2) -------------------------------
    beacon_period_s: float = 10.0
    missed_beacons_for_failure: int = 3
    update_threshold_m: float = 20.0

    # --- modelling switches --------------------------------------------
    detection_mode: str = DetectionMode.EVENT
    placement: str = PlacementStyle.UNIFORM
    partition: str = PartitionStyle.SQUARE
    loss_rate: float = 0.0
    #: Dynamic algorithm: a sensor relays a robot's location update when
    #: its distance to the announced position is within this margin of
    #: its distance to the closest *other* robot it knows — i.e. the
    #: moving robot's Voronoi cell plus a boundary band of sensors that
    #: may need to switch (paper §3.3).  Wider bands mean fresher
    #: knowledge but more transmissions.
    dynamic_relay_margin_m: float = 15.0
    #: Use a connected-dominating-set relay subset for location-update
    #: floods (the paper's "more efficient broadcast schemes" future work).
    efficient_broadcast: bool = False
    #: Spare sensors a robot can carry before returning to the depot at
    #: the field centre; None models the paper's implicit infinite supply.
    robot_capacity: typing.Optional[int] = None
    #: Whether replacement sensors draw a fresh Exp(T) lifetime and fail
    #: again (a stationary renewal process), or only the originally
    #: deployed sensors fail (a declining failure rate, which is how a
    #: fixed-population GloMoSim node set naturally behaves).
    regenerate_lifetimes: bool = True
    #: Central-manager dispatch rule; see :class:`DispatchPolicy`.
    #: Ignored by the distributed algorithms.
    dispatch_policy: str = DispatchPolicy.CLOSEST
    #: When set, every sensor sends a periodic reading to the sink (the
    #: manager, or its myrobot in the distributed algorithms) every this
    #: many seconds — the paper's motivating data-collection workload.
    #: None (default) disables background traffic.
    data_traffic_period_s: typing.Optional[float] = None
    #: Extension: after this many idle seconds a robot drives back to
    #: its home post (subarea centre in the fixed algorithm, deployment
    #: position otherwise), abandoning the return if new work arrives.
    #: Shorter legs at the cost of extra repositioning odometry.  None
    #: (default) keeps the paper's behaviour — robots park wherever
    #: their last repair ended.
    return_to_post_after_s: typing.Optional[float] = None

    # --- faults & resilience (extension; default = paper's fault-free
    # fleet, bit-identical to the pre-fault simulator) -----------------
    #: Mean time between robot failures, Exp-distributed per robot.
    #: None (default) disables stochastic robot faults.
    robot_mtbf_s: typing.Optional[float] = None
    #: Default downtime of a recoverable robot fault (battery faults
    #: take twice this).
    robot_downtime_s: float = 900.0
    #: Probability that a stochastic robot fault is a permanent crash.
    robot_fault_permanent_p: float = 0.0
    #: Scripted fault campaign: a canonically-sorted tuple of
    #: :class:`repro.faults.FaultEvent` (dicts accepted and coerced).
    fault_script: typing.Optional[typing.Tuple[FaultEvent, ...]] = None
    #: Force the self-healing layer (heartbeats, deadlines, re-dispatch)
    #: on or off; None (default) enables it exactly when faults are
    #: configured.
    resilience: typing.Optional[bool] = None
    #: Robot→manager (or ring-successor) heartbeat period.
    heartbeat_period_s: float = 60.0
    #: Silent heartbeat periods before a robot is declared dead.
    missed_heartbeats_for_failure: int = 3
    #: Deadline for a dispatched repair before the dispatcher re-sends;
    #: None derives a bound from field diagonal / speed plus detection
    #: slack (see :attr:`effective_repair_deadline_s`).
    repair_deadline_s: typing.Optional[float] = None
    #: Base of the exponential re-dispatch backoff.
    redispatch_backoff_s: float = 120.0
    #: Re-dispatch budget per failure before it is recorded as orphaned.
    redispatch_limit: int = 3

    # --- network faults & failure verification (extension; defaults
    # keep the channel and the guardian protocol bit-identical) --------
    #: Poisson arrival rate (events/s) of stochastic jamming regions.
    #: None (default) disables the stochastic jammer; scripted network
    #: fault events work regardless.
    jam_rate: typing.Optional[float] = None
    #: Radius of a stochastic jamming disk.
    jam_radius_m: float = 100.0
    #: Mean lifetime (Exp-distributed) of a stochastic jamming region.
    jam_duration_mtbf_s: float = 600.0
    #: Per-frame drop probability inside a stochastic jamming disk.
    jam_loss_rate: float = 1.0
    #: Enable the failure-verification protocol: guardians escalate
    #: *suspected* failures, require corroboration (or a dispatcher
    #: probe) before dispatch, and robots verify on site before
    #: replacing.  Off (default) keeps the paper's trust-the-guardian
    #: behaviour bit-identical.
    verify_failures: bool = False
    #: Guardian corroborations (including the reporter) required to
    #: upgrade a suspected failure to corroborated.
    verification_quorum: int = 2
    #: How long a guardian collects corroboration votes (and half the
    #: dispatcher's probe deadline).
    verification_timeout_s: float = 30.0

    # --- degraded-mode adaptation (extension; defaults keep every
    # code path bit-identical to the non-adaptive simulator) -----------
    #: Scale the verification quorum and timeouts from observed channel
    #: loss: tighten on clean channels (faster verification), widen
    #: under jams (keep false replacements at zero).  Requires
    #: :attr:`verify_failures`.
    adaptive_verify: bool = False
    #: Cooperative backlog repair: an overloaded robot auctions its
    #: surplus queue items to under-loaded peers through a bounded
    #: claim protocol over routed messages.
    coop_repair: bool = False
    #: Jam-aware travel: robots plan tangent-segment detours around
    #: active jam disks so they stay reachable for abort/verification
    #: messages while en route.
    jam_aware: bool = False
    #: Observation window of the adaptive loss estimator (seconds).
    adaptation_window_s: float = 120.0
    #: Upper bound for the widened verification quorum.
    adaptive_quorum_max: int = 4
    #: Queue length above which a robot starts auctioning backlog.
    coop_backlog_threshold: int = 2
    #: Patience per auction candidate before moving on (bounded claim).
    coop_claim_timeout_s: float = 60.0
    #: Clearance kept outside a jam disk when planning detours.
    jam_detour_margin_m: float = 10.0

    def __post_init__(self) -> None:
        if self.algorithm not in Algorithm.ALL:
            raise ValueError(f"unknown algorithm: {self.algorithm!r}")
        if self.detection_mode not in DetectionMode.ALL:
            raise ValueError(
                f"unknown detection mode: {self.detection_mode!r}"
            )
        if self.placement not in PlacementStyle.ALL:
            raise ValueError(f"unknown placement: {self.placement!r}")
        if self.partition not in PartitionStyle.ALL:
            raise ValueError(f"unknown partition: {self.partition!r}")
        if self.robot_count < 1:
            raise ValueError(f"need at least one robot: {self.robot_count}")
        if self.sim_time_s <= 0:
            raise ValueError(f"non-positive sim time: {self.sim_time_s}")
        if self.robot_capacity is not None and self.robot_capacity < 1:
            raise ValueError(
                f"robot capacity must be positive: {self.robot_capacity}"
            )
        if self.dispatch_policy not in DispatchPolicy.ALL:
            raise ValueError(
                f"unknown dispatch policy: {self.dispatch_policy!r}"
            )
        if (
            self.data_traffic_period_s is not None
            and self.data_traffic_period_s <= 0
        ):
            raise ValueError(
                "data traffic period must be positive: "
                f"{self.data_traffic_period_s}"
            )
        if (
            self.return_to_post_after_s is not None
            and self.return_to_post_after_s < 0
        ):
            raise ValueError(
                "return-to-post delay must be non-negative: "
                f"{self.return_to_post_after_s}"
            )
        if self.robot_mtbf_s is not None and self.robot_mtbf_s <= 0:
            raise ValueError(
                f"robot MTBF must be positive: {self.robot_mtbf_s}"
            )
        if self.robot_downtime_s <= 0:
            raise ValueError(
                f"robot downtime must be positive: {self.robot_downtime_s}"
            )
        if not 0.0 <= self.robot_fault_permanent_p <= 1.0:
            raise ValueError(
                "permanent-fault probability must be in [0, 1]: "
                f"{self.robot_fault_permanent_p}"
            )
        if self.fault_script is not None:
            script = normalize_fault_script(self.fault_script)
            object.__setattr__(
                self, "fault_script", script if script else None
            )
        if self.heartbeat_period_s <= 0:
            raise ValueError(
                f"heartbeat period must be positive: "
                f"{self.heartbeat_period_s}"
            )
        if self.missed_heartbeats_for_failure < 1:
            raise ValueError(
                "need at least one missed heartbeat for failure: "
                f"{self.missed_heartbeats_for_failure}"
            )
        if self.repair_deadline_s is not None and self.repair_deadline_s <= 0:
            raise ValueError(
                f"repair deadline must be positive: {self.repair_deadline_s}"
            )
        if self.redispatch_backoff_s <= 0:
            raise ValueError(
                "re-dispatch backoff must be positive: "
                f"{self.redispatch_backoff_s}"
            )
        if self.redispatch_limit < 0:
            raise ValueError(
                f"re-dispatch limit must be >= 0: {self.redispatch_limit}"
            )
        if self.jam_rate is not None and self.jam_rate <= 0:
            raise ValueError(
                f"jam rate must be positive: {self.jam_rate}"
            )
        if self.jam_radius_m <= 0:
            raise ValueError(
                f"jam radius must be positive: {self.jam_radius_m}"
            )
        if self.jam_duration_mtbf_s <= 0:
            raise ValueError(
                "jam duration MTBF must be positive: "
                f"{self.jam_duration_mtbf_s}"
            )
        if not 0.0 < self.jam_loss_rate <= 1.0:
            raise ValueError(
                f"jam loss rate must be in (0, 1]: {self.jam_loss_rate}"
            )
        if self.verification_quorum < 1:
            raise ValueError(
                "verification quorum must be >= 1: "
                f"{self.verification_quorum}"
            )
        if self.verification_timeout_s <= 0:
            raise ValueError(
                "verification timeout must be positive: "
                f"{self.verification_timeout_s}"
            )
        if self.adaptive_verify and not self.verify_failures:
            raise ValueError(
                "adaptive_verify scales the verification ladder and "
                "requires verify_failures=True"
            )
        if self.adaptation_window_s <= 0:
            raise ValueError(
                "adaptation window must be positive: "
                f"{self.adaptation_window_s}"
            )
        if self.adaptive_quorum_max < 1:
            raise ValueError(
                "adaptive quorum cap must be >= 1: "
                f"{self.adaptive_quorum_max}"
            )
        if self.coop_backlog_threshold < 1:
            raise ValueError(
                "cooperative backlog threshold must be >= 1: "
                f"{self.coop_backlog_threshold}"
            )
        if self.coop_claim_timeout_s <= 0:
            raise ValueError(
                "cooperative claim timeout must be positive: "
                f"{self.coop_claim_timeout_s}"
            )
        if self.jam_detour_margin_m < 0:
            raise ValueError(
                "jam detour margin must be non-negative: "
                f"{self.jam_detour_margin_m}"
            )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def area_side_m(self) -> float:
        """Side of the square field: ``sqrt(robots · area_per_robot)``."""
        return math.sqrt(self.robot_count * self.area_per_robot_m2)

    @property
    def bounds(self) -> Rect:
        """The deployment field as a rectangle anchored at the origin."""
        return Rect.square(self.area_side_m)

    @property
    def sensor_count(self) -> int:
        """Total sensors: density × robots (800 at 16 robots)."""
        return self.sensors_per_robot * self.robot_count

    @property
    def detection_delay_bounds(self) -> typing.Tuple[float, float]:
        """(min, max) failure-detection latency implied by beaconing.

        A guardian declares failure after ``missed_beacons_for_failure``
        silent periods; depending on the phase of the guardee's last
        beacon the latency falls in ``[k·p, (k+1)·p)``.
        """
        k = self.missed_beacons_for_failure
        p = self.beacon_period_s
        return (k * p, (k + 1) * p)

    # ------------------------------------------------------------------
    # Faults & resilience
    # ------------------------------------------------------------------
    @property
    def faults_enabled(self) -> bool:
        """True when any fault source (stochastic or scripted) is set."""
        return (
            self.robot_mtbf_s is not None
            or self.jam_rate is not None
            or bool(self.fault_script)
        )

    @property
    def network_faults_enabled(self) -> bool:
        """True when the spatial network fault model must be armed."""
        if self.jam_rate is not None:
            return True
        return any(
            event.kind in FaultKind.NETWORK
            for event in self.fault_script or ()
        )

    @property
    def resilience_enabled(self) -> bool:
        """Whether the self-healing layer runs.

        Follows :attr:`faults_enabled` unless :attr:`resilience` forces
        it — forcing it *on* without faults exercises the machinery's
        overhead; forcing it *off* with faults measures the unprotected
        baseline.
        """
        if self.resilience is not None:
            return self.resilience
        return self.faults_enabled

    @property
    def degraded_mode_enabled(self) -> bool:
        """True when any degraded-mode adaptation is switched on."""
        return self.adaptive_verify or self.coop_repair or self.jam_aware

    @property
    def effective_repair_deadline_s(self) -> float:
        """Deadline before a dispatched repair is presumed lost.

        The derived default bounds the worst honest repair: crossing the
        field diagonal at robot speed, plus the heartbeat-based failure
        detection window, plus a flat slack for queueing and routing.
        """
        if self.repair_deadline_s is not None:
            return self.repair_deadline_s
        diagonal = math.hypot(self.area_side_m, self.area_side_m)
        detection = self.heartbeat_period_s * (
            self.missed_heartbeats_for_failure + 1
        )
        return diagonal / self.robot_speed_mps + detection + 60.0

    def replace(self, **changes: typing.Any) -> "ScenarioConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Canonical serialization (the repro.store digest preimage)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> typing.Dict[str, typing.Any]:
        """All fields as a JSON-native dict, in declaration order.

        ``float``-typed fields are normalised to floats so a config
        built with ``sim_time_s=16_000`` serialises — and therefore
        content-hashes — identically to one built with ``16_000.0``.
        """
        data: typing.Dict[str, typing.Any] = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if (
                value is not None
                and not isinstance(value, bool)
                and isinstance(value, int)
                and "float" in str(field.type)
            ):
                value = float(value)
            if field.name == "fault_script" and value is not None:
                value = [event.to_json_dict() for event in value]
            data[field.name] = value
        return data

    @classmethod
    def from_json_dict(
        cls, data: typing.Mapping[str, typing.Any]
    ) -> "ScenarioConfig":
        """Rebuild a config from :meth:`to_json_dict` output.

        Raises
        ------
        ValueError
            For unknown fields (a config serialised by a different
            schema must not silently round-trip).
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ScenarioConfig fields: {', '.join(unknown)}"
            )
        fields = dict(data)
        script = fields.get("fault_script")
        if script is not None:
            fields["fault_script"] = normalize_fault_script(script)
        return cls(**fields)

    def describe(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"{self.algorithm} | {self.robot_count} robots | "
            f"{self.sensor_count} sensors | "
            f"{self.area_side_m:.0f}m x {self.area_side_m:.0f}m | "
            f"T={self.mean_lifetime_s:.0f}s | "
            f"sim={self.sim_time_s:.0f}s | seed={self.seed}"
        )
        if self.faults_enabled:
            parts = []
            if self.robot_mtbf_s is not None:
                parts.append(f"MTBF={self.robot_mtbf_s:.0f}s")
            if self.jam_rate is not None:
                parts.append(f"jam_rate={self.jam_rate:g}/s")
            if self.fault_script:
                parts.append(f"script={len(self.fault_script)} events")
            text += " | faults: " + ", ".join(parts)
        if self.verify_failures:
            text += (
                f" | verify: quorum={self.verification_quorum}, "
                f"timeout={self.verification_timeout_s:.0f}s"
            )
        if self.degraded_mode_enabled:
            modes = []
            if self.adaptive_verify:
                modes.append("adaptive-verify")
            if self.coop_repair:
                modes.append("coop-repair")
            if self.jam_aware:
                modes.append("jam-aware")
            text += " | degraded: " + ", ".join(modes)
        return text


def paper_scenario(
    algorithm: str,
    robot_count: int,
    seed: int = 0,
    **overrides: typing.Any,
) -> ScenarioConfig:
    """The paper's §4.1 configuration for *algorithm* and *robot_count*.

    Extra keyword arguments override individual fields (e.g.
    ``sim_time_s=8_000`` for quick tests).
    """
    return ScenarioConfig(
        algorithm=algorithm, robot_count=robot_count, seed=seed
    ).replace(**overrides)
