"""Periodic HELLO beaconing and node announcements.

Sensors beacon every 10 s (paper §4.1 item 8); beacons serve two
purposes: they keep neighbour tables fresh for geographic forwarding, and
missing three consecutive beacons is the failure-detection criterion for
the guardian/guardee protocol (§3.1).

A :class:`NodeAnnouncement` is the common payload of beacons, the
initialization location broadcasts, and robot location updates — any
frame that tells receivers "node X of kind K is (or will be) at P".
Receiving nodes update their neighbour tables from announcements
automatically (see :meth:`repro.net.node.NetworkNode.handle_frame`
integration below).
"""

from __future__ import annotations

import typing

from repro.net.frames import Category, NodeAnnouncement
from repro.net.node import NetworkNode
from repro.sim.engine import Simulator

__all__ = ["NodeAnnouncement", "BeaconService", "DEFAULT_BEACON_PERIOD_S"]

#: The paper's beaconing period (§4.1 item 8).
DEFAULT_BEACON_PERIOD_S = 10.0


class BeaconService:
    """Drives periodic HELLO broadcasts for one node.

    The first beacon goes out after a random phase within one period
    (drawn from the node's ``beacon.<id>`` stream) so the network's
    beacons de-synchronise, then strictly every ``period`` seconds until
    the node dies.

    Parameters
    ----------
    node:
        The beaconing node.
    period:
        Beacon interval in seconds.
    started:
        When False, :meth:`start` must be called explicitly (the
        scenario builder starts beacons only after initialization).
    """

    def __init__(
        self,
        node: NetworkNode,
        period: float = DEFAULT_BEACON_PERIOD_S,
        started: bool = False,
    ) -> None:
        if period <= 0:
            raise ValueError(f"non-positive beacon period: {period}")
        self.node = node
        self.period = period
        self.beacons_sent = 0
        self._running = False
        self._rng = node.streams.stream(f"beacon.{node.node_id}")
        if started:
            self.start()

    def start(self) -> None:
        """Begin beaconing (idempotent)."""
        if self._running:
            return
        self._running = True
        self.node.sim.process(
            self._beacon_loop(), name=f"beacon:{self.node.node_id}"
        )

    def stop(self) -> None:
        """Stop beaconing after the current period elapses."""
        self._running = False

    def beacon_now(self) -> None:
        """Send one immediate off-cycle beacon (verification extension).

        A suspected-but-alive node answers its accusers with this; the
        periodic loop's phase is deliberately left untouched so an extra
        beacon never shifts the regular schedule.
        """
        if not self.node.alive:
            return
        self.node.send_broadcast(
            Category.BEACON,
            NodeAnnouncement(
                node_id=self.node.node_id,
                position=self.node.position,
                kind=self.node.kind,
            ),
        )
        self.beacons_sent += 1

    def _beacon_loop(self) -> typing.Generator:
        sim: Simulator = self.node.sim
        yield sim.timeout(self._rng.uniform(0.0, self.period))
        while self._running and self.node.alive:
            self.node.send_broadcast(
                Category.BEACON,
                NodeAnnouncement(
                    node_id=self.node.node_id,
                    position=self.node.position,
                    kind=self.node.kind,
                ),
            )
            self.beacons_sent += 1
            yield sim.timeout(self.period)

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return (
            f"<BeaconService {self.node.node_id} period={self.period} "
            f"{state} sent={self.beacons_sent}>"
        )
