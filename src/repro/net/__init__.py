"""Wireless network substrate.

Unit-disk radios with the paper's per-class ranges (sensors 63 m,
robots/manager 250 m), a shared broadcast channel with per-category
transmission accounting, per-node MAC serialisation with jitter and
optional ARQ, neighbour tables, and periodic beaconing.
"""

from repro.net.beacon import (
    BeaconService,
    DEFAULT_BEACON_PERIOD_S,
)
from repro.net.channel import Channel, ChannelStats
from repro.net.frames import (
    ACK_SIZE_BITS,
    BROADCAST,
    Category,
    DEFAULT_PACKET_SIZE_BITS,
    Frame,
    NodeAnnouncement,
    NodeId,
    Packet,
)
from repro.net.mac import Mac, MacConfig
from repro.net.neighbors import NeighborEntry, NeighborTable
from repro.net.node import NetworkNode
from repro.net.radio import (
    NOMINAL_BITRATE_BPS,
    ROBOT_RANGE_M,
    RadioConfig,
    SENSOR_RANGE_M,
    robot_radio,
    sensor_radio,
)
from repro.net.spatial import SpatialGrid

__all__ = [
    "ACK_SIZE_BITS",
    "BROADCAST",
    "BeaconService",
    "Category",
    "Channel",
    "ChannelStats",
    "DEFAULT_BEACON_PERIOD_S",
    "DEFAULT_PACKET_SIZE_BITS",
    "Frame",
    "Mac",
    "MacConfig",
    "NOMINAL_BITRATE_BPS",
    "NeighborEntry",
    "NeighborTable",
    "NetworkNode",
    "NodeAnnouncement",
    "NodeId",
    "Packet",
    "ROBOT_RANGE_M",
    "RadioConfig",
    "SENSOR_RANGE_M",
    "SpatialGrid",
    "robot_radio",
    "sensor_radio",
]
