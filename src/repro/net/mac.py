"""Per-node medium access control.

Responsibilities:

* **Serialisation** — a node transmits one frame at a time; frames queued
  while the radio is busy go out FIFO when it frees up.
* **Jitter** — broadcast relays are delayed by a small uniform random
  jitter so that flood relays de-synchronise, as a CSMA backoff would do
  in the paper's 802.11 layer.  The jitter stream is seeded per node, so
  runs are reproducible.
* **ARQ (lossy mode only)** — when the radio has a non-zero loss rate,
  unicast data frames are acknowledged; the sender retransmits up to
  ``max_retries`` times and reports an unreachable next hop to the node
  on final failure.  With the paper's lossless default no acks are
  generated, so transmission counts match GloMoSim's.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.net.frames import ACK_SIZE_BITS, BROADCAST, Frame, NodeId, Packet
from repro.sim.engine import Simulator
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.channel import Channel
    from repro.net.node import NetworkNode

__all__ = ["MacConfig", "Mac"]


@dataclasses.dataclass(frozen=True, slots=True)
class MacConfig:
    """Tunables for the MAC layer.

    Parameters
    ----------
    broadcast_jitter:
        Maximum uniform delay before relaying a broadcast frame.
    unicast_jitter:
        Maximum uniform delay before a unicast transmission (models
        contention backoff; small compared to any protocol timer).
    ack_timeout:
        Seconds to wait for a link-layer ack before retransmitting
        (lossy mode only).
    max_retries:
        Retransmission budget per unicast frame (lossy mode only).
    """

    broadcast_jitter: float = 0.02
    unicast_jitter: float = 0.002
    ack_timeout: float = 0.05
    max_retries: int = 5


class Mac:
    """MAC instance owned by a single :class:`~repro.net.node.NetworkNode`."""

    __slots__ = (
        "node",
        "channel",
        "sim",
        "config",
        "_jitter_rng",
        "_queue",
        "_next_free",
        "_scheduled",
        "_pending_acks",
        "_broadcast_jitter",
        "_unicast_jitter",
    )

    def __init__(
        self,
        node: "NetworkNode",
        channel: "Channel",
        sim: Simulator,
        jitter_rng,
        config: typing.Optional[MacConfig] = None,
    ) -> None:
        self.node = node
        self.channel = channel
        self.sim = sim
        self.config = config or MacConfig()
        self._jitter_rng = jitter_rng
        self._queue: typing.Deque[Frame] = collections.deque()
        #: Simulation time at which the radio finishes its current frame.
        self._next_free = 0.0
        #: True while a transmission wake-up is scheduled (jitter phase).
        self._scheduled = False
        #: frame_id -> (frame, retries_left, timer_event) awaiting ack.
        self._pending_acks: typing.Dict[
            int, typing.Tuple[Frame, int, Event]
        ] = {}
        # Hoisted config reads for the per-frame scheduling path.
        self._broadcast_jitter = self.config.broadcast_jitter
        self._unicast_jitter = self.config.unicast_jitter

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> None:
        """Queue *frame* for transmission (FIFO per node)."""
        self._queue.append(frame)
        if not self._scheduled:
            self._maybe_schedule()

    def _maybe_schedule(self) -> None:
        if self._scheduled or not self._queue:
            return
        self._scheduled = True
        frame = self._queue[0]
        jitter_max = (
            self._broadcast_jitter
            if frame.link_destination == BROADCAST
            else self._unicast_jitter
        )
        wait_for_radio = self._next_free - self.sim.now
        if wait_for_radio < 0.0:
            wait_for_radio = 0.0
        delay = wait_for_radio + self._jitter_rng.uniform(0.0, jitter_max)
        self.sim.call_in(delay, self._transmit_next)

    def _transmit_next(self) -> None:
        self._scheduled = False
        if not self.node.alive:
            self._queue.clear()
            return
        if not self._queue:
            return
        frame = self._queue.popleft()
        self.channel.transmit(self.node, frame)
        if self._arq_applies(frame):
            self._arm_ack_timer(frame, self.config.max_retries)
        self._next_free = self.sim.now + self.node.radio.transmission_delay(
            frame.size_bits
        )
        self._maybe_schedule()

    def _arq_applies(self, frame: Frame) -> bool:
        return (
            self.node.radio.loss_rate > 0.0
            and not frame.is_broadcast
            and not frame.is_ack
        )

    # ------------------------------------------------------------------
    # ARQ
    # ------------------------------------------------------------------
    def _arm_ack_timer(self, frame: Frame, retries_left: int) -> None:
        timer = self.sim.call_in(
            self.config.ack_timeout,
            lambda: self._on_ack_timeout(frame.frame_id),
        )
        self._pending_acks[frame.frame_id] = (frame, retries_left, timer)

    def _on_ack_timeout(self, frame_id: int) -> None:
        entry = self._pending_acks.pop(frame_id, None)
        if entry is None or not self.node.alive:
            return
        frame, retries_left, _timer = entry
        if retries_left <= 0:
            self.node.on_link_failure(frame)
            return
        self.channel.stats.retransmissions[frame.category] += 1
        self.channel.transmit(self.node, frame)
        self._arm_ack_timer(frame, retries_left - 1)

    def handle_incoming(
        self, frame: Frame, sender_id: NodeId
    ) -> typing.Optional[Frame]:
        """Process *frame* at the link layer.

        Consumes acks (returns None); acknowledges unicast data frames in
        lossy mode; returns the frame for network-layer processing
        otherwise.
        """
        if frame.is_ack:
            entry = self._pending_acks.pop(frame.ack_for or -1, None)
            if entry is not None:
                self.sim.cancel(entry[2])
            return None
        if (
            self.node.radio.loss_rate > 0.0
            and not frame.is_broadcast
            and frame.link_destination == self.node.node_id
        ):
            ack = Frame(
                sender=self.node.node_id,
                link_destination=sender_id,
                packet=None,
                size_bits=ACK_SIZE_BITS,
                is_ack=True,
                ack_for=frame.frame_id,
            )
            self.send(ack)
        return frame

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    def send_packet(self, packet: Packet, next_hop: NodeId) -> None:
        """Wrap *packet* in a unicast frame to *next_hop* and queue it."""
        self.send(
            Frame(
                sender=self.node.node_id,
                link_destination=next_hop,
                packet=packet,
                size_bits=packet.size_bits,
            )
        )

    def broadcast_packet(self, packet: Packet) -> None:
        """Wrap *packet* in a one-hop broadcast frame and queue it."""
        self.send(
            Frame(
                sender=self.node.node_id,
                link_destination=BROADCAST,
                packet=packet,
                size_bits=packet.size_bits,
            )
        )

    @property
    def queue_depth(self) -> int:
        """Frames waiting behind the current transmission."""
        return len(self._queue)
