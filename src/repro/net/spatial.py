"""Spatial hash grid for range queries over node positions.

The channel must answer "which nodes lie within ``r`` metres of this
sender?" for every transmission.  A uniform hash grid with cell size on
the order of the largest radio range answers this in near-constant time
for the paper's densities (one sensor per ~28 m × 28 m).
"""

from __future__ import annotations

import math
import typing

from repro.geometry.point import Point

__all__ = ["SpatialGrid"]


class SpatialGrid:
    """Maps string ids to positions and supports disk range queries."""

    def __init__(self, cell_size: float = 250.0) -> None:
        if cell_size <= 0:
            raise ValueError(f"non-positive cell size: {cell_size}")
        self.cell_size = cell_size
        self._cells: typing.Dict[
            typing.Tuple[int, int], typing.Set[str]
        ] = {}
        self._positions: typing.Dict[str, Point] = {}

    def _cell_of(self, position: Point) -> typing.Tuple[int, int]:
        return (
            math.floor(position.x / self.cell_size),
            math.floor(position.y / self.cell_size),
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, item_id: str, position: Point) -> None:
        """Insert *item_id* at *position* (moves it if already present)."""
        if item_id in self._positions:
            self.move(item_id, position)
            return
        self._positions[item_id] = position
        self._cells.setdefault(self._cell_of(position), set()).add(item_id)

    def move(self, item_id: str, position: Point) -> None:
        """Update the position of *item_id* (KeyError if absent)."""
        old = self._positions[item_id]
        old_cell = self._cell_of(old)
        new_cell = self._cell_of(position)
        self._positions[item_id] = position
        if old_cell != new_cell:
            members = self._cells[old_cell]
            members.discard(item_id)
            if not members:
                del self._cells[old_cell]
            self._cells.setdefault(new_cell, set()).add(item_id)

    def remove(self, item_id: str) -> None:
        """Remove *item_id* (KeyError if absent)."""
        position = self._positions.pop(item_id)
        cell = self._cell_of(position)
        members = self._cells[cell]
        members.discard(item_id)
        if not members:
            del self._cells[cell]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, item_id: str) -> bool:
        return item_id in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def position_of(self, item_id: str) -> Point:
        """Current position of *item_id* (KeyError if absent)."""
        return self._positions[item_id]

    def within(
        self, center: Point, radius: float
    ) -> typing.List[typing.Tuple[str, Point]]:
        """All ``(id, position)`` pairs within *radius* of *center*.

        Membership is inclusive of the boundary.  Order is deterministic
        (sorted by id) so simulations replay identically.
        """
        if radius < 0:
            return []
        r2 = radius * radius
        min_cx = math.floor((center.x - radius) / self.cell_size)
        max_cx = math.floor((center.x + radius) / self.cell_size)
        min_cy = math.floor((center.y - radius) / self.cell_size)
        max_cy = math.floor((center.y + radius) / self.cell_size)
        found: typing.List[typing.Tuple[str, Point]] = []
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                members = self._cells.get((cx, cy))
                if not members:
                    continue
                for item_id in members:
                    position = self._positions[item_id]
                    if center.squared_distance_to(position) <= r2:
                        found.append((item_id, position))
        found.sort(key=lambda pair: pair[0])
        return found

    def nearest(
        self, center: Point, exclude: typing.Container[str] = ()
    ) -> typing.Optional[typing.Tuple[str, Point]]:
        """The nearest item to *center* not in *exclude* (None if empty).

        Grid-accelerated: searches outward ring by ring.
        """
        if not self._positions:
            return None
        best: typing.Optional[typing.Tuple[str, Point]] = None
        best_d2 = float("inf")
        center_cell = self._cell_of(center)
        max_rings = 2 + int(
            max(
                (abs(cx - center_cell[0]) + abs(cy - center_cell[1]))
                for cx, cy in self._cells
            )
        )
        for ring in range(max_rings + 1):
            candidates = self._ring_members(center_cell, ring)
            for item_id in candidates:
                if item_id in exclude:
                    continue
                d2 = center.squared_distance_to(self._positions[item_id])
                if d2 < best_d2 or (
                    d2 == best_d2
                    and best is not None
                    and item_id < best[0]
                ):
                    best = (item_id, self._positions[item_id])
                    best_d2 = d2
            # Once a candidate is found, one further ring suffices: any
            # item beyond ring+1 is farther than cell_size * ring >= the
            # candidate distance bound.
            if best is not None and ring * self.cell_size > math.sqrt(
                best_d2
            ):
                break
        return best

    def _ring_members(
        self, center_cell: typing.Tuple[int, int], ring: int
    ) -> typing.List[str]:
        cx0, cy0 = center_cell
        members: typing.List[str] = []
        if ring == 0:
            cells = [(cx0, cy0)]
        else:
            cells = []
            for dx in range(-ring, ring + 1):
                cells.append((cx0 + dx, cy0 - ring))
                cells.append((cx0 + dx, cy0 + ring))
            for dy in range(-ring + 1, ring):
                cells.append((cx0 - ring, cy0 + dy))
                cells.append((cx0 + ring, cy0 + dy))
        for cell in cells:
            bucket = self._cells.get(cell)
            if bucket:
                members.extend(bucket)
        members.sort()
        return members

    def items(self) -> typing.Iterator[typing.Tuple[str, Point]]:
        """All ``(id, position)`` pairs in sorted-id order."""
        for item_id in sorted(self._positions):
            yield item_id, self._positions[item_id]
