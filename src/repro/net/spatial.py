"""Spatial hash grid for range queries over node positions.

The channel must answer "which nodes lie within ``r`` metres of this
sender?" for every transmission.  A uniform hash grid with cell size on
the order of the largest radio range answers this in near-constant time
for the paper's densities (one sensor per ~28 m × 28 m).

Hot-path layout (see ``docs/PERFORMANCE.md``):

* Cells store flattened ``(id, x, y, (id, position))`` entry rows in
  id-sorted lists.  Iterating prebuilt tuples beats zipping parallel
  coordinate arrays here — list iteration yields existing tuples with
  no per-element allocation, and the buckets are too small (a handful
  of sensors each) to amortize any per-bucket batch setup — so the
  grid keeps the row layout and hands the *concatenated* candidate
  rows of a query to one
  :func:`repro.geometry.kernels.collect_entries_within_radius` call:
  a single fused filter-and-gather pass with no attribute loads and no
  per-hit allocation.
* The set of candidate cell offsets for a query radius is precomputed
  once per radius (``_offsets_for``) — the paper uses exactly two radii
  (63 m sensors, 250 m robots/manager), so the tables are tiny.  Each
  candidate cell is then pruned by its exact minimum distance to the
  query center before its rows are collected.
* Every mutation bumps :attr:`epoch`; the channel keys its cached
  receiver sets on it, and the grid keys its own query memo on it, so
  caches invalidate exactly when the node population or a position
  changes.
* Repeated identical queries (static network phases re-issue the same
  disk query every beacon round) are answered from an epoch-keyed memo
  in one dict lookup plus a small list copy.
"""

from __future__ import annotations

import bisect
import math
import typing

from math import floor as _floor

from repro.geometry.kernels import collect_entries_within_radius
from repro.geometry.point import Point

__all__ = ["SpatialGrid"]

#: Cell bucket entry: ``(id, x, y, (id, position))``.  Coordinates are
#: flattened for the range-query inner loop, and the trailing pair is
#: the prebuilt result tuple so hits allocate nothing.
_Entry = typing.Tuple[str, float, float, typing.Tuple[str, Point]]


def _entry(item_id: str, position: Point) -> _Entry:
    return (item_id, position.x, position.y, (item_id, position))


class SpatialGrid:
    """Maps string ids to positions and supports disk range queries."""

    __slots__ = (
        "cell_size",
        "epoch",
        "_cells",
        "_positions",
        "_offsets",
        "_memo",
        "_memo_epoch",
    )

    def __init__(self, cell_size: float = 250.0) -> None:
        if cell_size <= 0:
            raise ValueError(f"non-positive cell size: {cell_size}")
        self.cell_size = cell_size
        #: Monotonic mutation counter: bumped by every insert / move /
        #: remove.  Consumers (``Channel``) cache derived data keyed on
        #: it; equal epochs guarantee an identical grid state.
        self.epoch = 0
        self._cells: typing.Dict[typing.Tuple[int, int], typing.List[_Entry]] = {}
        self._positions: typing.Dict[str, Point] = {}
        #: radius -> candidate cell offsets ``(dx, dy)`` relative to the
        #: query's cell, pruned to offsets whose cells can intersect the
        #: disk for *some* center within the home cell.
        self._offsets: typing.Dict[
            float, typing.Tuple[typing.Tuple[int, int], ...]
        ] = {}
        #: ``(x, y, radius) -> within() result``, valid only while
        #: :attr:`epoch` equals ``_memo_epoch``.  Static phases (no node
        #: joins, deaths, or moves) re-issue identical disk queries every
        #: beacon/flood round; the memo answers those in one dict hit.
        self._memo: typing.Dict[
            typing.Tuple[float, float, float],
            typing.List[typing.Tuple[str, Point]],
        ] = {}
        self._memo_epoch = 0

    def _cell_of(self, position: Point) -> typing.Tuple[int, int]:
        return (
            math.floor(position.x / self.cell_size),
            math.floor(position.y / self.cell_size),
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, item_id: str, position: Point) -> None:
        """Insert *item_id* at *position* (moves it if already present)."""
        if item_id in self._positions:
            self.move(item_id, position)
            return
        self._positions[item_id] = position
        bucket = self._cells.setdefault(self._cell_of(position), [])
        bisect.insort(bucket, _entry(item_id, position))
        self.epoch += 1

    def move(self, item_id: str, position: Point) -> None:
        """Update the position of *item_id* (KeyError if absent)."""
        old = self._positions[item_id]
        old_cell = self._cell_of(old)
        new_cell = self._cell_of(position)
        self._positions[item_id] = position
        self.epoch += 1
        if old_cell == new_cell:
            bucket = self._cells[old_cell]
            for index, entry in enumerate(bucket):
                if entry[0] == item_id:
                    bucket[index] = _entry(item_id, position)
                    break
            return
        self._discard(old_cell, item_id)
        bucket = self._cells.setdefault(new_cell, [])
        bisect.insort(bucket, _entry(item_id, position))

    def remove(self, item_id: str) -> None:
        """Remove *item_id* (KeyError if absent)."""
        position = self._positions.pop(item_id)
        self._discard(self._cell_of(position), item_id)
        self.epoch += 1

    def _discard(
        self, cell: typing.Tuple[int, int], item_id: str
    ) -> None:
        bucket = self._cells[cell]
        for index, entry in enumerate(bucket):
            if entry[0] == item_id:
                del bucket[index]
                break
        if not bucket:
            del self._cells[cell]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, item_id: str) -> bool:
        return item_id in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def position_of(self, item_id: str) -> Point:
        """Current position of *item_id* (KeyError if absent)."""
        return self._positions[item_id]

    def _offsets_for(
        self, radius: float
    ) -> typing.Tuple[typing.Tuple[int, int], ...]:
        """Candidate cell offsets covering a disk of *radius*.

        For a query centered anywhere in its home cell, the reachable
        cells lie within ``floor(r/cell) + 1`` in each axis; offsets
        whose nearest possible corner is still outside the disk are
        pruned up front.  The table is a superset of the exact per-query
        range, so query results are unaffected (each candidate is still
        distance-checked).
        """
        table = self._offsets.get(radius)
        if table is None:
            size = self.cell_size
            span = int(radius / size) + 1
            r2 = radius * radius
            offsets = []
            for dx in range(-span, span + 1):
                min_x = max(0, abs(dx) - 1) * size
                for dy in range(-span, span + 1):
                    min_y = max(0, abs(dy) - 1) * size
                    if min_x * min_x + min_y * min_y <= r2:
                        offsets.append((dx, dy))
            table = tuple(offsets)
            self._offsets[radius] = table
        return table

    def within(
        self, center: Point, radius: float
    ) -> typing.List[typing.Tuple[str, Point]]:
        """All ``(id, position)`` pairs within *radius* of *center*.

        Membership is inclusive of the boundary.  Order is deterministic
        (sorted by id) so simulations replay identically.
        """
        if radius < 0:
            return []
        memo = self._memo
        if self._memo_epoch != self.epoch:
            memo.clear()
            self._memo_epoch = self.epoch
        key = (center.x, center.y, radius)
        cached = memo.get(key)
        if cached is not None:
            # Copy so callers may mutate their result freely.
            return cached.copy()
        size = self.cell_size
        r2 = radius * radius
        x = center.x
        y = center.y
        cx = _floor(x / size)
        cy = _floor(y / size)
        # Offsets of the query point inside its home cell; used to prune
        # candidate cells by their exact minimum distance to the center
        # (the offset table is only a worst-case-over-the-cell superset).
        fx = x - cx * size
        fy = y - cy * size
        get = self._cells.get
        candidates: typing.List[_Entry] = []
        extend = candidates.extend
        for dx, dy in self._offsets_for(radius):
            if dx > 0:
                mx = dx * size - fx
            elif dx:
                mx = fx - (dx + 1) * size
            else:
                mx = 0.0
            if dy > 0:
                my = dy * size - fy
            elif dy:
                my = fy - (dy + 1) * size
            else:
                my = 0.0
            if mx * mx + my * my > r2:
                continue
            bucket = get((cx + dx, cy + dy))
            if bucket:
                extend(bucket)
        found: typing.List[typing.Tuple[str, Point]] = []
        collect_entries_within_radius(candidates, x, y, r2, found)
        found.sort()
        if len(memo) >= 4096:  # bound memory on pathological query mixes
            memo.clear()
        memo[key] = found
        return found.copy()

    def nearest(
        self, center: Point, exclude: typing.Container[str] = ()
    ) -> typing.Optional[typing.Tuple[str, Point]]:
        """The nearest item to *center* not in *exclude* (None if empty).

        Grid-accelerated: searches outward ring by ring.
        """
        if not self._positions:
            return None
        best: typing.Optional[typing.Tuple[str, Point]] = None
        best_d2 = float("inf")
        center_cell = self._cell_of(center)
        max_rings = 2 + int(
            max(
                (abs(cx - center_cell[0]) + abs(cy - center_cell[1]))
                for cx, cy in self._cells
            )
        )
        for ring in range(max_rings + 1):
            candidates = self._ring_members(center_cell, ring)
            for item_id in candidates:
                if item_id in exclude:
                    continue
                d2 = center.squared_distance_to(self._positions[item_id])
                if d2 < best_d2 or (
                    d2 == best_d2
                    and best is not None
                    and item_id < best[0]
                ):
                    best = (item_id, self._positions[item_id])
                    best_d2 = d2
            # Once a candidate is found, one further ring suffices: any
            # item beyond ring+1 is farther than cell_size * ring >= the
            # candidate distance bound.
            if best is not None and ring * self.cell_size > math.sqrt(
                best_d2
            ):
                break
        return best

    def _ring_members(
        self, center_cell: typing.Tuple[int, int], ring: int
    ) -> typing.List[str]:
        cx0, cy0 = center_cell
        members: typing.List[str] = []
        if ring == 0:
            cells = [(cx0, cy0)]
        else:
            cells = []
            for dx in range(-ring, ring + 1):
                cells.append((cx0 + dx, cy0 - ring))
                cells.append((cx0 + dx, cy0 + ring))
            for dy in range(-ring + 1, ring):
                cells.append((cx0 - ring, cy0 + dy))
                cells.append((cx0 + ring, cy0 + dy))
        for cell in cells:
            bucket = self._cells.get(cell)
            if bucket:
                for entry in bucket:
                    members.append(entry[0])
        members.sort()
        return members

    def items(self) -> typing.Iterator[typing.Tuple[str, Point]]:
        """All ``(id, position)`` pairs in sorted-id order."""
        for item_id in sorted(self._positions):
            yield item_id, self._positions[item_id]
