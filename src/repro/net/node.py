"""Base network node: radio + MAC + neighbour table + router.

:class:`NetworkNode` is the substrate shared by sensors, robots and the
central manager.  Subclasses in :mod:`repro.core` override the
application hooks (``on_packet_delivered``, ``on_broadcast_received``)
and add their protocol logic on top.
"""

from __future__ import annotations

import typing

from repro.geometry.point import Point
from repro.net.channel import Channel
from repro.net.frames import (
    BROADCAST,
    Frame,
    NodeAnnouncement,
    NodeId,
    Packet,
)
from repro.net.mac import Mac, MacConfig
from repro.net.neighbors import NeighborTable
from repro.net.radio import RadioConfig
from repro.routing.router import GeographicRouter
from repro.routing.stats import DropReason, RoutingStats
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

__all__ = ["NetworkNode"]


class NetworkNode:
    """A wireless node with position, radio, MAC and geographic router.

    Parameters
    ----------
    node_id:
        Globally unique identifier (e.g. ``"sensor-17"``).
    position:
        Initial location; static for sensors, mutable for robots via
        :meth:`move_to`.
    radio:
        Radio parameters (range, bitrate, loss).
    sim, channel, streams:
        Scenario-wide simulator, medium and random streams.
    routing_stats:
        Shared routing statistics collector.
    tracer:
        Optional structured tracer.
    mac_config:
        MAC tunables; defaults are suitable for the paper's scenarios.
    """

    #: Node kind advertised in beacons; subclasses override.
    kind: str = "node"

    def __init__(
        self,
        node_id: NodeId,
        position: Point,
        radio: RadioConfig,
        sim: Simulator,
        channel: Channel,
        streams: RandomStreams,
        routing_stats: typing.Optional[RoutingStats] = None,
        tracer: typing.Optional[Tracer] = None,
        mac_config: typing.Optional[MacConfig] = None,
    ) -> None:
        self.node_id = node_id
        self._position = position
        self.radio = radio
        self.sim = sim
        self.channel = channel
        self.streams = streams
        self.tracer = tracer or channel.tracer
        self.alive = True
        self.neighbor_table = NeighborTable()
        self.mac = Mac(
            self,
            channel,
            sim,
            streams.stream(f"mac.{node_id}"),
            mac_config,
        )
        self.router = GeographicRouter(self, routing_stats or RoutingStats())
        channel.register(self)

    # ------------------------------------------------------------------
    # Position
    # ------------------------------------------------------------------
    @property
    def position(self) -> Point:
        """Current location in the field."""
        return self._position

    def move_to(self, position: Point) -> None:
        """Relocate the node and update the channel's spatial index."""
        self._position = position
        if self.alive:
            self.channel.node_moved(self)
            if self.tracer.active:
                self.tracer.emit(
                    "move",
                    time=self.sim.now,
                    node=self.node_id,
                    kind=self.kind,
                    position=position,
                )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def die(self) -> None:
        """Fail the node: it stops sending, receiving and processing."""
        if not self.alive:
            return
        self.alive = False
        self.channel.unregister(self.node_id)
        if self.tracer.active:
            self.tracer.emit(
                "node_death",
                time=self.sim.now,
                node=self.node_id,
                kind=self.kind,
                position=self._position,
            )

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def handle_frame(
        self, frame: Frame, sender_id: NodeId, sender_position: Point
    ) -> None:
        """Link-layer entry point, called by the channel on delivery."""
        if not self.alive:
            return
        processed = self.mac.handle_incoming(frame, sender_id)
        if processed is None:
            return  # Consumed at the link layer (an ack).
        packet = processed.packet
        if packet is None:
            return
        if packet.is_broadcast:
            # Any directly heard announcement (beacon, init broadcast,
            # robot location update) refreshes the neighbour table.
            payload = packet.payload
            if isinstance(payload, NodeAnnouncement):
                self.neighbor_table.upsert(
                    payload.node_id,
                    payload.position,
                    payload.kind,
                    self.sim.now,
                )
            self.on_broadcast_received(packet, sender_id, sender_position)
        else:
            self.router.handle(packet, previous_position=sender_position)

    def on_link_failure(self, frame: Frame) -> None:
        """ARQ gave up on *frame*'s next hop (lossy mode only).

        Standard GPSR reaction: evict the unresponsive neighbour and
        re-route the packet from here.
        """
        self.neighbor_table.remove(frame.link_destination)
        packet = frame.packet
        if packet is None:
            return
        if packet.hops >= packet.max_hops:
            self.router.stats.record_drop(
                packet.category, DropReason.LINK_FAILURE
            )
            return
        self.router.handle(packet, previous_position=None)

    # ------------------------------------------------------------------
    # Send helpers
    # ------------------------------------------------------------------
    def send_routed(
        self,
        destination: NodeId,
        destination_location: Point,
        category: str,
        payload: typing.Any,
        size_bits: typing.Optional[int] = None,
    ) -> Packet:
        """Originate a geographically routed packet to *destination*."""
        packet = Packet(
            source=self.node_id,
            destination=destination,
            category=category,
            payload=payload,
            dest_location=destination_location,
        )
        if size_bits is not None:
            packet.size_bits = size_bits
        self.router.originate(packet)
        return packet

    def send_broadcast(
        self,
        category: str,
        payload: typing.Any,
        size_bits: typing.Optional[int] = None,
    ) -> Packet:
        """Originate a one-hop broadcast packet."""
        packet = Packet(
            source=self.node_id,
            destination=BROADCAST,
            category=category,
            payload=payload,
        )
        if size_bits is not None:
            packet.size_bits = size_bits
        self.mac.broadcast_packet(packet)
        return packet

    # ------------------------------------------------------------------
    # Application hooks (overridden by sensors / robots / managers)
    # ------------------------------------------------------------------
    def location_hint(
        self, node_id: NodeId
    ) -> typing.Optional[typing.Tuple[Point, int]]:
        """Application-layer location service lookup.

        Returns ``(position, seq)`` when this node knows a version of
        *node_id*'s position, with ``seq`` the announcement sequence
        number it came from; None when it knows nothing.  The router uses
        this to refresh stale destination locations en route (the paper's
        coordination-layer location service, §4.2).
        """
        return None

    def on_packet_delivered(self, packet: Packet) -> None:
        """A routed packet addressed to this node arrived."""

    def on_broadcast_received(
        self, packet: Packet, sender_id: NodeId, sender_position: Point
    ) -> None:
        """A one-hop broadcast from a neighbour arrived."""

    def on_packet_dropped(self, packet: Packet, reason: str) -> None:
        """The local router dropped *packet* (already counted in stats)."""

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return (
            f"<{type(self).__name__} {self.node_id} {state} "
            f"at {self._position!r}>"
        )
