"""Link-layer frames and network-layer packets.

Two layers, mirroring the paper's GloMoSim stack:

* A :class:`Packet` is the network-layer unit: it carries an application
  payload from a source to either a *routed* destination (geographic
  routing, identified by node id + last known location, as in GPSR's
  "destination's location in an IP option header") or a *one-hop
  broadcast* neighbourhood.
* A :class:`Frame` is the link-layer unit: one wireless transmission,
  either unicast to a specific neighbour or a local broadcast.  Counting
  frames is exactly the paper's "number of wireless transmissions"
  messaging-overhead metric.

Message *categories* tag every packet so the metrics collector can
attribute transmissions to the paper's four overhead classes
(initialization, failure detection, failure report, location update).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.geometry.point import Point

__all__ = [
    "NodeId",
    "BROADCAST",
    "Category",
    "NodeAnnouncement",
    "Packet",
    "Frame",
    "DEFAULT_PACKET_SIZE_BITS",
    "ACK_SIZE_BITS",
    "reset_id_counters",
]

NodeId = str

#: Pseudo node id addressing every neighbour in radio range.
BROADCAST: NodeId = "<broadcast>"

#: Size of a data frame.  The paper does not report packet sizes; frames
#: carry only a location and a node id, so a small constant is faithful.
#: At 11 Mbps a 512-bit frame takes ~46 µs — negligible against 10 s
#: beacon periods, exactly the paper's low-traffic regime.
DEFAULT_PACKET_SIZE_BITS = 512
#: Size of a link-layer acknowledgement frame.
ACK_SIZE_BITS = 112


class Category:
    """Message categories used for overhead accounting (paper §4.3.2)."""

    INITIALIZATION = "initialization"
    BEACON = "beacon"
    FAILURE_REPORT = "failure_report"
    REPAIR_REQUEST = "repair_request"
    LOCATION_UPDATE = "location_update"
    GUARDIAN_CONTROL = "guardian_control"
    COMPLETION = "completion"
    DATA = "data"
    ACK = "ack"
    HEARTBEAT = "heartbeat"
    VERIFICATION = "verification"

    #: All categories, for iteration in reports.
    ALL = (
        INITIALIZATION,
        BEACON,
        FAILURE_REPORT,
        REPAIR_REQUEST,
        LOCATION_UPDATE,
        GUARDIAN_CONTROL,
        COMPLETION,
        DATA,
        ACK,
        HEARTBEAT,
        VERIFICATION,
    )


@dataclasses.dataclass(frozen=True, slots=True)
class NodeAnnouncement:
    """Payload announcing a node's identity, kind and position.

    Carried by beacons, initialization location broadcasts and robot
    location updates.  Receivers refresh their neighbour tables from any
    announcement heard directly (one hop), regardless of category.
    """

    node_id: NodeId
    position: Point
    kind: str


_packet_counter = 0


def _next_packet_id() -> int:
    global _packet_counter
    _packet_counter += 1
    return _packet_counter


def reset_id_counters() -> None:
    """Restart the packet/frame id sequences from zero.

    Ids are only consumed within one runtime (per-node ack tables,
    per-router duplicate suppression), but the counters are process
    globals — without a reset, the *second* seeded run in a process
    mints different ids than the first and the traces stop being
    bit-for-bit identical.  :class:`repro.core.runtime.ScenarioRuntime`
    calls this once per scenario.
    """
    global _packet_counter, _frame_counter
    _packet_counter = 0
    _frame_counter = 0


@dataclasses.dataclass(slots=True)
class Packet:
    """A network-layer packet.

    Parameters
    ----------
    source:
        Originating node id.
    destination:
        Target node id, or :data:`BROADCAST` for a one-hop broadcast.
    category:
        One of :class:`Category` — drives overhead accounting.
    payload:
        Application message (opaque to the network layer).
    dest_location:
        The destination's (last known) location; required for routed
        packets, ignored for broadcasts.
    hops:
        Number of link-layer hops traversed so far; incremented by the
        router at each forwarding step.
    max_hops:
        TTL guard against routing loops.
    routing_state:
        Scratch space owned by the geographic router (face-routing
        traversal state lives here).
    """

    source: NodeId
    destination: NodeId
    category: str
    payload: typing.Any = None
    dest_location: typing.Optional[Point] = None
    size_bits: int = DEFAULT_PACKET_SIZE_BITS
    hops: int = 0
    #: TTL backstop.  Face traversals legitimately take O(network
    #: diameter) hops per face; actual routing loops are detected by the
    #: perimeter edge-revisit check, so this is set comfortably high.
    max_hops: int = 256
    packet_id: int = dataclasses.field(default_factory=_next_packet_id)
    routing_state: typing.Dict[str, typing.Any] = dataclasses.field(
        default_factory=dict
    )

    @property
    def is_broadcast(self) -> bool:
        """True for one-hop broadcast packets."""
        return self.destination == BROADCAST

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.packet_id} {self.category} "
            f"{self.source}->{self.destination} hops={self.hops}>"
        )


_frame_counter = 0


def _next_frame_id() -> int:
    global _frame_counter
    _frame_counter += 1
    return _frame_counter


@dataclasses.dataclass(slots=True)
class Frame:
    """One wireless transmission: a packet on a single link hop.

    ``link_destination`` is the next-hop node for unicast frames or
    :data:`BROADCAST` for local broadcasts.  ``is_ack`` marks link-layer
    acknowledgements (only generated when the channel is lossy).
    """

    sender: NodeId
    link_destination: NodeId
    packet: typing.Optional[Packet]
    size_bits: int = DEFAULT_PACKET_SIZE_BITS
    is_ack: bool = False
    ack_for: typing.Optional[int] = None
    frame_id: int = dataclasses.field(default_factory=_next_frame_id)

    @property
    def is_broadcast(self) -> bool:
        """True when addressed to every node in radio range."""
        return self.link_destination == BROADCAST

    @property
    def category(self) -> str:
        """Accounting category (acks have their own category)."""
        if self.is_ack:
            return Category.ACK
        if self.packet is not None:
            return self.packet.category
        return Category.DATA

    def __repr__(self) -> str:
        kind = "ack" if self.is_ack else "data"
        return (
            f"<Frame #{self.frame_id} {kind} "
            f"{self.sender}->{self.link_destination}>"
        )
