"""Per-node neighbour tables.

Geographic forwarding is purely local: each node keeps a table of one-hop
neighbours (id, position, kind, freshness) learned from initialization
broadcasts and periodic beacons, and forwards packets to the neighbour
geographically closest to the destination (paper §4.2).  Entries expire
when beacons stop arriving, which is also how guardians detect failures.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.geometry.point import Point
from repro.net.frames import NodeId

__all__ = ["NeighborEntry", "NeighborTable"]


@dataclasses.dataclass(slots=True)
class NeighborEntry:
    """What a node knows about one neighbour."""

    node_id: NodeId
    position: Point
    kind: str
    last_heard: float

    def __repr__(self) -> str:
        return (
            f"<Neighbor {self.node_id} ({self.kind}) at {self.position!r} "
            f"heard={self.last_heard:.1f}>"
        )


class NeighborTable:
    """A mutable map of one-hop neighbours with freshness tracking."""

    def __init__(self) -> None:
        self._entries: typing.Dict[NodeId, NeighborEntry] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def upsert(
        self,
        node_id: NodeId,
        position: Point,
        kind: str,
        time: float,
    ) -> NeighborEntry:
        """Insert or refresh a neighbour record."""
        entry = self._entries.get(node_id)
        if entry is None:
            entry = NeighborEntry(node_id, position, kind, time)
            self._entries[node_id] = entry
        else:
            entry.position = position
            entry.kind = kind
            entry.last_heard = max(entry.last_heard, time)
        return entry

    def remove(self, node_id: NodeId) -> bool:
        """Forget a neighbour; returns True if it was present."""
        return self._entries.pop(node_id, None) is not None

    def expire_older_than(self, deadline: float) -> typing.List[NodeId]:
        """Drop entries last heard strictly before *deadline*.

        Returns the removed ids (sorted, for determinism).
        """
        stale = sorted(
            node_id
            for node_id, entry in self._entries.items()
            if entry.last_heard < deadline
        )
        for node_id in stale:
            del self._entries[node_id]
        return stale

    def clear(self) -> None:
        """Forget all neighbours."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, node_id: NodeId) -> typing.Optional[NeighborEntry]:
        """The entry for *node_id*, or None."""
        return self._entries.get(node_id)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> typing.List[NeighborEntry]:
        """All entries in id-sorted (deterministic) order."""
        return [self._entries[nid] for nid in sorted(self._entries)]

    def ids(self) -> typing.List[NodeId]:
        """All neighbour ids, sorted."""
        return sorted(self._entries)

    def of_kind(self, kind: str) -> typing.List[NeighborEntry]:
        """Entries whose ``kind`` matches, id-sorted."""
        return [e for e in self.entries() if e.kind == kind]

    def nearest_to(
        self,
        point: Point,
        exclude: typing.Container[NodeId] = (),
        kind: typing.Optional[str] = None,
    ) -> typing.Optional[NeighborEntry]:
        """The neighbour closest to *point*, or None.

        Ties break towards the smaller id, keeping runs deterministic.
        """
        best: typing.Optional[NeighborEntry] = None
        best_d2 = float("inf")
        for entry in self.entries():
            if entry.node_id in exclude:
                continue
            if kind is not None and entry.kind != kind:
                continue
            d2 = point.squared_distance_to(entry.position)
            if d2 < best_d2:
                best = entry
                best_d2 = d2
        return best

    def closer_to_than(
        self, destination: Point, reference_distance: float
    ) -> typing.List[NeighborEntry]:
        """Neighbours strictly closer to *destination* than the reference.

        The greedy-forwarding candidate set.
        """
        return [
            entry
            for entry in self.entries()
            if entry.position.distance_to(destination) < reference_distance
        ]

    def __repr__(self) -> str:
        return f"<NeighborTable {len(self._entries)} entries>"
