"""The shared wireless broadcast medium.

One :class:`Channel` instance connects every node of a scenario.  It owns
the spatial index of node positions, decides who receives each frame
(unit-disk per *sender* range — links are directional), applies the
optional Bernoulli loss model, and counts every transmission by message
category.  Those counters are the paper's messaging-overhead metric.

Contention model: the paper runs in a "low traffic load" regime with
100 % delivery, so the channel does not simulate CSMA collisions; each
node's MAC serialises its own transmissions and applies a small random
jitter to broadcast relays (see :mod:`repro.net.mac`), which is what
determines event interleaving.
"""

from __future__ import annotations

import bisect
import collections
import typing

from repro.geometry.point import Point
from repro.net.frames import Frame, NodeId
from repro.net.spatial import SpatialGrid
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.network import NetworkFaultField
    from repro.net.node import NetworkNode

__all__ = ["Channel", "ChannelStats", "DropCause"]


class DropCause:
    """Why a receiver-side frame drop happened.

    ``LOSS`` is the uniform Bernoulli loss model; ``JAM`` and
    ``PARTITION`` come from the spatial fault field (which also files
    ``DEGRADE`` regions under ``JAM`` — both are interference drops).
    """

    LOSS = "loss"
    JAM = "jam"
    PARTITION = "partition"

    ALL = (LOSS, JAM, PARTITION)


class ChannelStats:
    """Counters of wireless activity, grouped by message category."""

    def __init__(self) -> None:
        #: Frames put on the air, per category (the paper's metric).
        self.transmissions: typing.Counter[str] = collections.Counter()
        #: Total frames transmitted (= sum of transmissions values).
        self.frames_sent = 0
        #: Frame deliveries (one frame may deliver to many receivers).
        self.frames_delivered = 0
        #: Receiver-side drops, all causes (= loss + jam + partition).
        self.frames_lost = 0
        #: Receiver-side drops from the uniform Bernoulli loss model.
        self.dropped_loss = 0
        #: Receiver-side drops inside a jamming/degraded region.
        self.dropped_jam = 0
        #: Receiver-side drops across a hard partition boundary.
        self.dropped_partition = 0
        #: Unicast frames that found no live receiver in range.
        self.frames_unreachable = 0
        #: Link-layer retransmissions, per category (lossy mode only).
        self.retransmissions: typing.Counter[str] = collections.Counter()

    def count_drop(self, cause: str) -> None:
        """Record one receiver-side drop attributed to *cause*."""
        self.frames_lost += 1
        if cause == DropCause.LOSS:
            self.dropped_loss += 1
        elif cause == DropCause.JAM:
            self.dropped_jam += 1
        elif cause == DropCause.PARTITION:
            self.dropped_partition += 1
        else:  # pragma: no cover - programming error
            raise ValueError(f"unknown drop cause: {cause!r}")

    def snapshot(self) -> typing.Dict[str, typing.Any]:
        """A plain-dict copy, convenient for reports and assertions."""
        return {
            "transmissions": dict(self.transmissions),
            "frames_sent": self.frames_sent,
            "frames_delivered": self.frames_delivered,
            "frames_lost": self.frames_lost,
            "dropped_loss": self.dropped_loss,
            "dropped_jam": self.dropped_jam,
            "dropped_partition": self.dropped_partition,
            "frames_unreachable": self.frames_unreachable,
            "retransmissions": dict(self.retransmissions),
        }

    def diff_since(
        self, earlier: typing.Dict[str, typing.Any]
    ) -> typing.Dict[str, typing.Any]:
        """Counters accumulated since an earlier :meth:`snapshot`."""
        current = self.snapshot()
        return {
            "transmissions": {
                category: count - earlier["transmissions"].get(category, 0)
                for category, count in current["transmissions"].items()
            },
            "frames_sent": current["frames_sent"] - earlier["frames_sent"],
            "frames_delivered": (
                current["frames_delivered"] - earlier["frames_delivered"]
            ),
            "frames_lost": current["frames_lost"] - earlier["frames_lost"],
            "dropped_loss": (
                current["dropped_loss"] - earlier["dropped_loss"]
            ),
            "dropped_jam": current["dropped_jam"] - earlier["dropped_jam"],
            "dropped_partition": (
                current["dropped_partition"] - earlier["dropped_partition"]
            ),
            "frames_unreachable": (
                current["frames_unreachable"]
                - earlier["frames_unreachable"]
            ),
            "retransmissions": {
                category: count
                - earlier["retransmissions"].get(category, 0)
                for category, count in current["retransmissions"].items()
            },
        }


class Channel:
    """The wireless medium shared by all sensors and robots.

    Parameters
    ----------
    sim:
        The discrete-event simulator driving deliveries.
    streams:
        Random streams; the channel consumes the ``"channel.loss"``
        stream when a loss model is active.
    tracer:
        Optional tracer; emits ``"tx"`` and ``"rx"`` records.
    propagation_delay:
        Fixed propagation latency added to every delivery.  Radio
        propagation over ≤250 m is under a microsecond; the default
        matches that scale and mainly enforces happens-before ordering.
    """

    #: Delay before an unreachable unicast is reported back to its
    #: sender — the time an 802.11 radio spends exhausting its retry
    #: budget before giving up on a silent receiver.
    RETRY_EXHAUSTION_DELAY_S = 0.008

    def __init__(
        self,
        sim: Simulator,
        streams: typing.Optional[RandomStreams] = None,
        tracer: typing.Optional[Tracer] = None,
        propagation_delay: float = 1e-6,
    ) -> None:
        self.sim = sim
        self.tracer = tracer or Tracer()
        self.propagation_delay = propagation_delay
        self.stats = ChannelStats()
        self._loss_rng = (streams or RandomStreams(0)).stream("channel.loss")
        #: Optional spatial fault field (jamming/partition regions);
        #: installed by ``repro.faults.network.NetworkFaultService``.
        #: ``None`` keeps the transmit path bit-identical to a channel
        #: without the fault model.
        self.fault_field: typing.Optional["NetworkFaultField"] = None
        self._nodes: typing.Dict[NodeId, "NetworkNode"] = {}
        # Cell size tuned to the *sensor* radio: sensor broadcasts are by
        # far the most frequent range query, and a 250 m cell would scan
        # ~6x more candidates than needed for a 63 m disk.
        self._grid = SpatialGrid(cell_size=80.0)
        #: Live node ids, maintained in sorted order incrementally so
        #: :meth:`nodes` never re-sorts the full registry.
        self._sorted_ids: typing.List[NodeId] = []
        #: sender id -> (grid epoch, receiver list).  Sensors are static,
        #: so a sender's receiver set only changes when a node registers,
        #: unregisters, or moves — all of which bump the grid epoch.
        self._receiver_cache: typing.Dict[
            NodeId, typing.Tuple[int, typing.List["NetworkNode"]]
        ] = {}
        #: Hooks called as ``hook(frame, sender_node)`` on every transmit.
        self.transmit_hooks: typing.List[
            typing.Callable[[Frame, "NetworkNode"], None]
        ] = []

    # ------------------------------------------------------------------
    # Node registry
    # ------------------------------------------------------------------
    def register(self, node: "NetworkNode") -> None:
        """Attach *node* to the medium.  Ids must be unique."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id: {node.node_id}")
        self._nodes[node.node_id] = node
        self._grid.insert(node.node_id, node.position)
        bisect.insort(self._sorted_ids, node.node_id)

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node (on death); it can no longer send or receive."""
        if node_id in self._nodes:
            del self._nodes[node_id]
            self._grid.remove(node_id)
            index = bisect.bisect_left(self._sorted_ids, node_id)
            del self._sorted_ids[index]
            self._receiver_cache.pop(node_id, None)

    def node_moved(self, node: "NetworkNode") -> None:
        """Must be called whenever a registered node's position changes."""
        self._grid.move(node.node_id, node.position)

    def node(self, node_id: NodeId) -> "NetworkNode":
        """Look up a live node by id (KeyError if absent/dead)."""
        return self._nodes[node_id]

    def has_node(self, node_id: NodeId) -> bool:
        """True if *node_id* is currently registered (i.e. alive)."""
        return node_id in self._nodes

    def nodes(self) -> typing.List["NetworkNode"]:
        """All live nodes in deterministic (id-sorted) order."""
        nodes = self._nodes
        return [nodes[node_id] for node_id in self._sorted_ids]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nodes_within(
        self, center: Point, radius: float, exclude: NodeId = ""
    ) -> typing.List["NetworkNode"]:
        """Live nodes within *radius* of *center*, id-sorted."""
        nodes = self._nodes
        return [
            nodes[node_id]
            for node_id, _pos in self._grid.within(center, radius)
            if node_id != exclude
        ]

    def receivers_of(self, sender: "NetworkNode") -> typing.List["NetworkNode"]:
        """Every node the *sender*'s radio currently reaches.

        The result is cached per sender and keyed on the spatial grid's
        mutation epoch: sensors are static, so between node registrations,
        removals, and robot moves the receiver set cannot change.  Treat
        the returned list as read-only — it is shared between calls.
        """
        epoch = self._grid.epoch
        cached = self._receiver_cache.get(sender.node_id)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        receivers = self.nodes_within(
            sender.position, sender.radio.range_m, exclude=sender.node_id
        )
        self._receiver_cache[sender.node_id] = (epoch, receivers)
        return receivers

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, sender: "NetworkNode", frame: Frame) -> None:
        """Put *frame* on the air from *sender*.

        Counts the transmission, computes the receiver set from the
        sender's unit disk, applies per-receiver loss, and schedules
        deliveries after transmission + propagation delay.
        """
        if sender.node_id not in self._nodes:
            return  # Sender died while the frame was queued.

        stats = self.stats
        category = frame.category
        stats.frames_sent += 1
        stats.transmissions[category] += 1
        for hook in self.transmit_hooks:
            hook(frame, sender)
        if self.tracer.active:
            self.tracer.emit(
                "tx",
                time=self.sim.now,
                sender=sender.node_id,
                frame=frame,
                frame_category=category,
            )

        delay = (
            sender.radio.transmission_delay(frame.size_bits)
            + self.propagation_delay
        )
        loss_rate = sender.radio.loss_rate

        if frame.is_broadcast:
            receivers = self.receivers_of(sender)
        else:
            target = self._nodes.get(frame.link_destination)
            in_range = (
                target is not None
                and sender.position.distance_to(target.position)
                <= sender.radio.range_m
            )
            if not in_range:
                # The link-layer ack never arrives; after its retries the
                # sender learns the hop is dead and re-routes (GPSR's
                # neighbour-eviction reaction).  Only data frames get the
                # notification — a lost ack is simply lost.
                stats.frames_unreachable += 1
                # In lossy mode the MAC's own ARQ discovers the dead hop
                # (ack timeout) — don't double-notify.
                if not frame.is_ack and loss_rate == 0.0:
                    self.sim.call_in(
                        self.RETRY_EXHAUSTION_DELAY_S,
                        lambda: self._notify_link_failure(
                            sender.node_id, frame
                        ),
                    )
                return
            receivers = [typing.cast("NetworkNode", target)]

        sender_id = sender.node_id
        sender_position = sender.position
        fault_field = self.fault_field
        faults_active = fault_field is not None and fault_field.active
        if loss_rate > 0.0 or faults_active:
            if faults_active and len(receivers) > 1:
                # Batch the fault field's disk tests over the whole
                # receiver set (one flat-array pass per region).  The
                # jam draws stay in receiver order on their own stream
                # and the loss draws below stay in receiver order on
                # theirs, so interleaving the two loops differently
                # from the scalar path changes no stream's sequence.
                causes = fault_field.drop_causes(
                    sender_position,
                    [receiver.position.x for receiver in receivers],
                    [receiver.position.y for receiver in receivers],
                )
            elif faults_active:
                causes = [
                    fault_field.drop_cause(
                        sender_position, receiver.position
                    )
                    for receiver in receivers
                ]
            else:
                causes = None
            surviving = []
            for index, receiver in enumerate(receivers):
                cause = causes[index] if causes is not None else None
                if (
                    cause is None
                    and loss_rate > 0.0
                    and self._loss_rng.random() < loss_rate
                ):
                    cause = DropCause.LOSS
                if cause is None:
                    surviving.append(receiver.node_id)
                else:
                    stats.count_drop(cause)
        else:
            surviving = [receiver.node_id for receiver in receivers]
        if not surviving:
            return
        # One event delivers the frame to every receiver: the air time is
        # identical for all of them, and batching keeps the event queue
        # an order of magnitude smaller on flood-heavy scenarios.
        self.sim.call_in(
            delay,
            _DeliveryCallback(
                self, surviving, frame, sender_id, sender_position
            ),
        )

    def _notify_link_failure(self, sender_id: NodeId, frame: Frame) -> None:
        sender = self._nodes.get(sender_id)
        if sender is not None and sender.alive:
            sender.on_link_failure(frame)

    def _deliver(
        self,
        receiver_ids: typing.Sequence[NodeId],
        frame: Frame,
        sender_id: NodeId,
        sender_position: Point,
    ) -> None:
        nodes = self._nodes
        tracer = self.tracer
        tracing = tracer.active
        delivered = 0
        for receiver_id in receiver_ids:
            receiver = nodes.get(receiver_id)
            if receiver is None or not receiver.alive:
                continue  # Died in flight.
            delivered += 1
            if tracing:
                tracer.emit(
                    "rx",
                    time=self.sim.now,
                    receiver=receiver_id,
                    sender=sender_id,
                    frame=frame,
                )
            receiver.handle_frame(frame, sender_id, sender_position)
        self.stats.frames_delivered += delivered

    def __repr__(self) -> str:
        return (
            f"<Channel nodes={len(self._nodes)} "
            f"frames={self.stats.frames_sent}>"
        )


class _DeliveryCallback:
    """Bound delivery closure; a class keeps repr/debugging readable."""

    __slots__ = (
        "channel",
        "receiver_ids",
        "frame",
        "sender_id",
        "sender_pos",
    )

    def __init__(
        self,
        channel: Channel,
        receiver_ids: typing.Sequence[NodeId],
        frame: Frame,
        sender_id: NodeId,
        sender_pos: Point,
    ) -> None:
        self.channel = channel
        self.receiver_ids = receiver_ids
        self.frame = frame
        self.sender_id = sender_id
        self.sender_pos = sender_pos

    def __call__(self) -> None:
        self.channel._deliver(
            self.receiver_ids, self.frame, self.sender_id, self.sender_pos
        )
