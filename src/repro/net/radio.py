"""Radio configuration: transmission ranges, bitrate, loss model.

The paper's setup (§4.1): IEEE 802.11 link layer with a nominal bit-rate
of 11 Mbps; sensors transmit at 63 m to save power while the manager and
maintenance robots transmit at 250 m.  We model the radio as a unit-disk
per sender — a frame from ``u`` reaches every live node within
``range(u)`` metres.  Links are therefore *directional*: a robot can reach
a sensor 200 m away, but that sensor cannot reply directly.  This
asymmetry is load-bearing for the paper's Figure 3 (repair requests
traverse fewer hops than failure reports because the sending manager has
the long radio).
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "RadioConfig",
    "SENSOR_RANGE_M",
    "ROBOT_RANGE_M",
    "NOMINAL_BITRATE_BPS",
    "sensor_radio",
    "robot_radio",
]

#: Sensor transmission range from the paper (§4.1).
SENSOR_RANGE_M = 63.0
#: Manager / maintenance robot transmission range from the paper (§4.1).
ROBOT_RANGE_M = 250.0
#: Nominal 802.11b bit-rate from the paper (§4.1).
NOMINAL_BITRATE_BPS = 11_000_000.0


@dataclasses.dataclass(frozen=True, slots=True)
class RadioConfig:
    """Per-node radio parameters.

    Parameters
    ----------
    range_m:
        Unit-disk transmission range in metres.
    bitrate_bps:
        Link bit-rate; determines per-frame transmission delay.
    loss_rate:
        Independent Bernoulli probability that any given receiver misses
        a frame.  0 (default) models the paper's observed 100 % delivery;
        positive values exercise the retransmission machinery.
    """

    range_m: float
    bitrate_bps: float = NOMINAL_BITRATE_BPS
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.range_m <= 0:
            raise ValueError(f"non-positive radio range: {self.range_m}")
        if self.bitrate_bps <= 0:
            raise ValueError(f"non-positive bitrate: {self.bitrate_bps}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss rate outside [0, 1): {self.loss_rate}")

    def transmission_delay(self, size_bits: int) -> float:
        """Seconds the radio is busy transmitting *size_bits*."""
        return size_bits / self.bitrate_bps


def sensor_radio(loss_rate: float = 0.0) -> RadioConfig:
    """The paper's sensor radio: 63 m range at 11 Mbps."""
    return RadioConfig(range_m=SENSOR_RANGE_M, loss_rate=loss_rate)


def robot_radio(loss_rate: float = 0.0) -> RadioConfig:
    """The paper's robot/manager radio: 250 m range at 11 Mbps."""
    return RadioConfig(range_m=ROBOT_RANGE_M, loss_rate=loss_rate)
