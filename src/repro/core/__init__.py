"""The paper's contribution: robot-assisted sensor replacement.

Sensors guard each other and report failures; a small set of mobile
robots replaces failed nodes, coordinated by one of three algorithms
(centralized, fixed distributed, dynamic distributed — paper §3).
"""

from repro.core.coordination import (
    CentralizedStrategy,
    CoordinationStrategy,
    DynamicStrategy,
    FixedStrategy,
    strategy_for,
)
from repro.core.manager import CentralManagerNode
from repro.core.messages import (
    FailureNotice,
    FloodMessage,
    GuardianConfirm,
    ReplacementRequest,
)
from repro.core.robot import RepairTask, RobotNode
from repro.core.runtime import ScenarioRuntime, run_scenario
from repro.core.sensor import SensorNode

__all__ = [
    "CentralManagerNode",
    "CentralizedStrategy",
    "CoordinationStrategy",
    "DynamicStrategy",
    "FailureNotice",
    "FixedStrategy",
    "FloodMessage",
    "GuardianConfirm",
    "RepairTask",
    "ReplacementRequest",
    "RobotNode",
    "ScenarioRuntime",
    "SensorNode",
    "run_scenario",
    "strategy_for",
]
