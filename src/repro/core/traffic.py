"""Background sensing traffic.

The paper's opening sentence is about networks that "effectively collect
and transfer data"; replacement exists so that collection keeps working.
This service generates that workload: every sensor periodically sends a
reading, geographically routed to its *sink* — the central manager when
one exists, otherwise the sensor's current ``myrobot`` (the robots carry
the long-range radios in this system).  The resulting per-category
delivery ratio and hop counts measure whether maintenance actually keeps
the network usable, not just populated.

Off by default; enable with ``ScenarioConfig.data_traffic_period_s``.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.sensor import SensorNode
from repro.net.frames import Category, NodeId

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import ScenarioRuntime

__all__ = ["SensorReading", "DataTrafficService"]


@dataclasses.dataclass(frozen=True, slots=True)
class SensorReading:
    """One periodic measurement report."""

    origin_id: NodeId
    seq: int
    sampled_at: float


class DataTrafficService:
    """Drives periodic sensor readings towards the sink.

    One generator process per sensor; each starts at a random phase
    within one period (drawn from the sensor's ``traffic.<id>`` stream)
    so the network does not burst.  Replacement sensors are attached by
    the runtime as they appear.
    """

    def __init__(
        self, runtime: "ScenarioRuntime", period: float
    ) -> None:
        if period <= 0:
            raise ValueError(f"non-positive traffic period: {period}")
        self.runtime = runtime
        self.period = period
        self.readings_sent = 0

    def start(self) -> None:
        """Attach every currently live sensor."""
        for sensor in self.runtime.sensors_sorted():
            self.attach(sensor)

    def attach(self, sensor: SensorNode) -> None:
        """Begin periodic reporting from *sensor*."""
        self.runtime.sim.process(
            self._reading_loop(sensor), name=f"traffic:{sensor.node_id}"
        )

    def _sink_for(
        self, sensor: SensorNode
    ) -> typing.Optional[typing.Tuple[NodeId, typing.Any]]:
        manager = self.runtime.manager
        if manager is not None:
            return (manager.node_id, manager.position)
        return self.runtime.coordination.report_target(sensor)

    def _reading_loop(self, sensor: SensorNode) -> typing.Generator:
        sim = self.runtime.sim
        rng = sensor.streams.stream(f"traffic.{sensor.node_id}")
        seq = 0
        yield sim.timeout(rng.uniform(0.0, self.period))
        while sensor.alive:
            sink = self._sink_for(sensor)
            if sink is not None:
                seq += 1
                self.readings_sent += 1
                sensor.send_routed(
                    sink[0],
                    sink[1],
                    Category.DATA,
                    SensorReading(
                        origin_id=sensor.node_id,
                        seq=seq,
                        sampled_at=sim.now,
                    ),
                )
            yield sim.timeout(self.period)

    def __repr__(self) -> str:
        return (
            f"<DataTrafficService period={self.period} "
            f"sent={self.readings_sent}>"
        )
