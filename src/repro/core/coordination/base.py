"""The coordination-strategy interface.

A strategy answers the two questions of paper §3 — *how is a failure
reported* and *which robot handles it* — plus the supporting policies
those answers imply: where robots start, who a sensor may pick as its
guardian, how robot location updates propagate, and how far sensors
relay them.

One strategy instance serves a whole scenario; per-sensor state lives on
the sensors themselves (``myrobot``, ``known_robots``, ``subarea``).
"""

from __future__ import annotations

import abc
import typing

from repro.geometry.point import Point
from repro.net.frames import NodeId
from repro.net.neighbors import NeighborEntry
from repro.sim.rng import RandomStream

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.messages import FloodMessage
    from repro.core.robot import RobotNode
    from repro.core.runtime import ScenarioRuntime
    from repro.core.sensor import SensorNode

__all__ = ["CoordinationStrategy"]


class CoordinationStrategy(abc.ABC):
    """Base class for the paper's three coordination algorithms."""

    #: Algorithm name, matching :class:`repro.deploy.Algorithm`.
    name: str = "abstract"

    def __init__(self, runtime: "ScenarioRuntime") -> None:
        self.runtime = runtime
        self.config = runtime.config

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def robot_positions(self, rng: RandomStream) -> typing.List[Point]:
        """Initial positions for the maintenance robots."""

    @property
    def uses_central_manager(self) -> bool:
        """True when a dedicated static manager node exists."""
        return False

    @abc.abstractmethod
    def setup(self) -> None:
        """Run the algorithm-specific part of initialization (§2 stage a).

        Called after all nodes exist and neighbour tables are seeded.
        Seeds manager/myrobot knowledge administratively (the paper's
        "initial deployment process") and emits the corresponding
        initialization messages on the air for accounting fidelity.
        """

    def seed_replacement(self, sensor: "SensorNode") -> None:
        """Initialize a freshly placed replacement sensor's knowledge.

        Default: copy robot knowledge from the nearest live sensor
        neighbour (the paper's new-node bootstrap: neighbours respond
        with beacons carrying their state); subclasses refine.
        """
        donor = self._nearest_sensor_neighbor(sensor)
        if donor is not None:
            sensor.known_robots.update(donor.known_robots)
            sensor.manager_id = donor.manager_id
            sensor.manager_position = donor.manager_position

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def report_target(
        self, sensor: "SensorNode"
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        """Where *sensor* sends a failure report: ``(node_id, location)``."""

    def guardian_allowed(
        self, sensor: "SensorNode", entry: NeighborEntry
    ) -> bool:
        """May *sensor* pick neighbour *entry* as its guardian?"""
        return True

    # ------------------------------------------------------------------
    # Robot location dissemination
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def publish_robot_location(self, robot: "RobotNode", seq: int) -> None:
        """Send the messages implied by *robot* crossing the update
        threshold (or arriving)."""

    @abc.abstractmethod
    def should_relay_flood(
        self, sensor: "SensorNode", flood: "FloodMessage"
    ) -> bool:
        """Should *sensor* rebroadcast *flood* (called once per seq)?"""

    def on_flood_learned(
        self, sensor: "SensorNode", flood: "FloodMessage"
    ) -> None:
        """Hook after *sensor* folded *flood* into its robot knowledge."""

    # ------------------------------------------------------------------
    # Robot faults (resilience extension; no-ops for the baseline)
    # ------------------------------------------------------------------
    def on_robot_declared_dead(
        self,
        monitor: typing.Optional["RobotNode"],
        robot_id: NodeId,
        position: typing.Optional[Point],
    ) -> None:
        """A robot was declared dead by heartbeat silence.

        *monitor* is the live robot that made the declaration (None when
        no live peer with fresh heartbeat evidence exists), *position*
        the dead robot's last reported location.  The centralized
        algorithm recovers purely through the dispatch desk, so the
        default is a no-op; the distributed algorithms override this
        with subarea takeover (fixed) or an obituary flood triggering
        Voronoi re-partition (dynamic).
        """

    def on_robot_recovered(self, robot: "RobotNode") -> None:
        """A previously failed robot is back in service."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _nearest_sensor_neighbor(
        self, sensor: "SensorNode"
    ) -> typing.Optional["SensorNode"]:
        """The nearest live sensor in radio contact with *sensor*."""
        from repro.core.sensor import SensorNode as _SensorNode

        best: typing.Optional[_SensorNode] = None
        best_d2 = float("inf")
        for node in self.runtime.channel.nodes_within(
            sensor.position,
            sensor.radio.range_m,
            exclude=sensor.node_id,
        ):
            if not isinstance(node, _SensorNode):
                continue
            d2 = sensor.position.squared_distance_to(node.position)
            if d2 < best_d2:
                best = node
                best_d2 = d2
        return best
