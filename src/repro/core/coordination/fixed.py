"""Fixed distributed manager algorithm (paper §3.2).

The field is partitioned into equal-size subareas (squares by default),
one robot per subarea.  Each robot is manager *and* maintainer for its
subarea: sensors report failures to the subarea robot, and the robot's
location updates are flooded to — and relayed by — exactly the sensors of
that subarea, with duplicate suppression by sequence number.
Guardian/guardee pairs are restricted to one subarea.
"""

from __future__ import annotations

import typing

from repro.core.coordination.base import CoordinationStrategy
from repro.core.messages import FloodMessage
from repro.geometry.partition import (
    Partition,
    SquarePartition,
    StaggeredPartition,
)
from repro.geometry.point import Point
from repro.net.frames import Category, NodeId
from repro.net.neighbors import NeighborEntry
from repro.deploy.scenario import PartitionStyle
from repro.sim.rng import RandomStream

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.robot import RobotNode
    from repro.core.sensor import SensorNode

__all__ = ["FixedStrategy"]


class FixedStrategy(CoordinationStrategy):
    """One robot per fixed subarea; reports stay within the subarea."""

    name = "fixed"

    def __init__(self, runtime: typing.Any) -> None:
        super().__init__(runtime)
        self.partition: Partition = self._build_partition()
        #: subarea index -> robot id, fixed for the whole run.
        self.robot_of_subarea: typing.Dict[int, NodeId] = {}

    def _build_partition(self) -> Partition:
        if self.config.partition == PartitionStyle.STAGGERED:
            return StaggeredPartition(
                self.config.bounds, self.config.robot_count
            )
        return SquarePartition(self.config.bounds, self.config.robot_count)

    def robot_positions(self, rng: RandomStream) -> typing.List[Point]:
        """Robots post up at their subarea centres (paper §3.2: "the
        robots first move to the centers of their corresponding
        subareas"; that setup move precedes measurement)."""
        return self.partition.centers()

    def setup(self) -> None:
        robots = self.runtime.robots_sorted()
        for index, robot in enumerate(robots):
            robot.subarea = index
            self.robot_of_subarea[index] = robot.node_id

        # Sensors learn their subarea and manager in deployment; the
        # robots then flood their positions within their subareas.
        for sensor in self.runtime.sensors_sorted():
            self._assign_sensor(sensor)
        for index, robot in enumerate(robots):
            robot.send_broadcast(
                Category.INITIALIZATION,
                FloodMessage(
                    origin_id=robot.node_id,
                    position=robot.position,
                    kind=robot.kind,
                    seq=robot.next_flood_seq(),
                    subarea=index,
                ),
            )

    def _assign_sensor(self, sensor: "SensorNode") -> None:
        index = self.partition.index_of(sensor.position)
        sensor.subarea = index
        robot_id = self.robot_of_subarea[index]
        sensor.myrobot_id = robot_id
        initial = self.partition.center_of(index)
        sensor.myrobot_position = initial
        sensor.known_robots[robot_id] = (initial, 0)

    def seed_replacement(self, sensor: "SensorNode") -> None:
        """A replacement sensor inherits the subarea assignment and the
        donor's view of the subarea robot's position."""
        self._assign_sensor(sensor)
        donor = self._nearest_sensor_neighbor(sensor)
        if donor is not None and sensor.myrobot_id is not None:
            known = donor.known_robots.get(sensor.myrobot_id)
            if known is not None:
                sensor.known_robots[sensor.myrobot_id] = known
                sensor.myrobot_position = known[0]

    def report_target(
        self, sensor: "SensorNode"
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        if sensor.myrobot_id is None:
            return None
        known = sensor.known_robots.get(sensor.myrobot_id)
        position = known[0] if known else sensor.myrobot_position
        if position is None:
            return None
        return (sensor.myrobot_id, position)

    def guardian_allowed(
        self, sensor: "SensorNode", entry: NeighborEntry
    ) -> bool:
        """Guardian pairs stay within one subarea (paper §3.2)."""
        return self.partition.index_of(entry.position) == sensor.subarea

    def publish_robot_location(self, robot: "RobotNode", seq: int) -> None:
        """Flood the new position to every owned subarea.

        In the baseline a robot owns exactly its home subarea, so this
        emits the paper's single scoped flood.  After a takeover
        (resilience extension) the survivor also floods the subareas it
        inherited, each with its own sequence number.
        """
        owned = sorted(
            index
            for index, robot_id in self.robot_of_subarea.items()
            if robot_id == robot.node_id
        )
        if not owned:
            owned = [robot.subarea] if robot.subarea is not None else []
        first = True
        for index in owned:
            robot.send_broadcast(
                Category.LOCATION_UPDATE,
                FloodMessage(
                    origin_id=robot.node_id,
                    position=robot.position,
                    kind=robot.kind,
                    seq=seq if first else robot.next_flood_seq(),
                    subarea=index,
                ),
            )
            first = False

    def should_relay_flood(
        self, sensor: "SensorNode", flood: FloodMessage
    ) -> bool:
        """Relay iff the flood belongs to this sensor's subarea."""
        if self.config.efficient_broadcast and not self.runtime.is_relay(
            sensor.node_id
        ):
            return False
        return flood.subarea == sensor.subarea

    def on_flood_learned(
        self, sensor: "SensorNode", flood: FloodMessage
    ) -> None:
        if flood.origin_id == sensor.myrobot_id:
            sensor.myrobot_position = flood.position
            return
        if (
            self.config.resilience_enabled
            and flood.subarea == sensor.subarea
            and flood.kind == "robot"
        ):
            # A different robot flooding *this* subarea can only mean a
            # takeover (or a reclaim): adopt it as the new manager.
            sensor.myrobot_id = flood.origin_id
            sensor.myrobot_position = flood.position

    # ------------------------------------------------------------------
    # Robot faults (resilience extension)
    # ------------------------------------------------------------------
    def on_robot_declared_dead(
        self,
        monitor: typing.Optional["RobotNode"],
        robot_id: NodeId,
        position: typing.Optional[Point],
    ) -> None:
        """Neighbour-subarea takeover of a dead robot's subareas.

        Each subarea the dead robot owned passes to the live robot whose
        last known position is closest to the subarea centre (ties by
        id).  The new owner floods the subarea announcing itself; the
        sensors' pointers are also re-seeded administratively, standing
        in for a directed hand-over notification that a full
        implementation would route through the subarea gateway (the
        on-air flood is still emitted for accounting, and the
        ``on_flood_learned`` repoint rule covers sensors it reaches).
        """
        service = self.runtime.resilience
        dead_subareas = sorted(
            index
            for index, owner in self.robot_of_subarea.items()
            if owner == robot_id
        )
        live = [
            robot
            for robot in self.runtime.robots_sorted()
            if robot.alive and robot.node_id != robot_id
        ]
        if not live or not dead_subareas:
            return

        def last_position(robot: "RobotNode") -> Point:
            if service is not None:
                known = service.last_position.get(robot.node_id)
                if known is not None:
                    return known
            return robot.position

        for index in dead_subareas:
            center = self.partition.center_of(index)
            new_owner = min(
                live,
                key=lambda robot: (
                    center.squared_distance_to(last_position(robot)),
                    robot.node_id,
                ),
            )
            self.robot_of_subarea[index] = new_owner.node_id
            for sensor in self.runtime.sensors_sorted():
                if sensor.subarea == index:
                    sensor.myrobot_id = new_owner.node_id
                    sensor.myrobot_position = new_owner.position
            new_owner.send_broadcast(
                Category.LOCATION_UPDATE,
                FloodMessage(
                    origin_id=new_owner.node_id,
                    position=new_owner.position,
                    kind=new_owner.kind,
                    seq=new_owner.next_flood_seq(),
                    subarea=index,
                ),
            )

    def on_robot_recovered(self, robot: "RobotNode") -> None:
        """A recovered robot reclaims its home subarea."""
        if robot.subarea is None:
            return
        self.robot_of_subarea[robot.subarea] = robot.node_id
        for sensor in self.runtime.sensors_sorted():
            if sensor.subarea == robot.subarea:
                sensor.myrobot_id = robot.node_id
                sensor.myrobot_position = robot.position
