"""Fixed distributed manager algorithm (paper §3.2).

The field is partitioned into equal-size subareas (squares by default),
one robot per subarea.  Each robot is manager *and* maintainer for its
subarea: sensors report failures to the subarea robot, and the robot's
location updates are flooded to — and relayed by — exactly the sensors of
that subarea, with duplicate suppression by sequence number.
Guardian/guardee pairs are restricted to one subarea.
"""

from __future__ import annotations

import typing

from repro.core.coordination.base import CoordinationStrategy
from repro.core.messages import FloodMessage
from repro.geometry.partition import (
    Partition,
    SquarePartition,
    StaggeredPartition,
)
from repro.geometry.point import Point
from repro.net.frames import Category, NodeId
from repro.net.neighbors import NeighborEntry
from repro.deploy.scenario import PartitionStyle
from repro.sim.rng import RandomStream

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.robot import RobotNode
    from repro.core.sensor import SensorNode

__all__ = ["FixedStrategy"]


class FixedStrategy(CoordinationStrategy):
    """One robot per fixed subarea; reports stay within the subarea."""

    name = "fixed"

    def __init__(self, runtime: typing.Any) -> None:
        super().__init__(runtime)
        self.partition: Partition = self._build_partition()
        #: subarea index -> robot id, fixed for the whole run.
        self.robot_of_subarea: typing.Dict[int, NodeId] = {}

    def _build_partition(self) -> Partition:
        if self.config.partition == PartitionStyle.STAGGERED:
            return StaggeredPartition(
                self.config.bounds, self.config.robot_count
            )
        return SquarePartition(self.config.bounds, self.config.robot_count)

    def robot_positions(self, rng: RandomStream) -> typing.List[Point]:
        """Robots post up at their subarea centres (paper §3.2: "the
        robots first move to the centers of their corresponding
        subareas"; that setup move precedes measurement)."""
        return self.partition.centers()

    def setup(self) -> None:
        robots = self.runtime.robots_sorted()
        for index, robot in enumerate(robots):
            robot.subarea = index
            self.robot_of_subarea[index] = robot.node_id

        # Sensors learn their subarea and manager in deployment; the
        # robots then flood their positions within their subareas.
        for sensor in self.runtime.sensors_sorted():
            self._assign_sensor(sensor)
        for index, robot in enumerate(robots):
            robot.send_broadcast(
                Category.INITIALIZATION,
                FloodMessage(
                    origin_id=robot.node_id,
                    position=robot.position,
                    kind=robot.kind,
                    seq=robot.next_flood_seq(),
                    subarea=index,
                ),
            )

    def _assign_sensor(self, sensor: "SensorNode") -> None:
        index = self.partition.index_of(sensor.position)
        sensor.subarea = index
        robot_id = self.robot_of_subarea[index]
        sensor.myrobot_id = robot_id
        initial = self.partition.center_of(index)
        sensor.myrobot_position = initial
        sensor.known_robots[robot_id] = (initial, 0)

    def seed_replacement(self, sensor: "SensorNode") -> None:
        """A replacement sensor inherits the subarea assignment and the
        donor's view of the subarea robot's position."""
        self._assign_sensor(sensor)
        donor = self._nearest_sensor_neighbor(sensor)
        if donor is not None and sensor.myrobot_id is not None:
            known = donor.known_robots.get(sensor.myrobot_id)
            if known is not None:
                sensor.known_robots[sensor.myrobot_id] = known
                sensor.myrobot_position = known[0]

    def report_target(
        self, sensor: "SensorNode"
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        if sensor.myrobot_id is None:
            return None
        known = sensor.known_robots.get(sensor.myrobot_id)
        position = known[0] if known else sensor.myrobot_position
        if position is None:
            return None
        return (sensor.myrobot_id, position)

    def guardian_allowed(
        self, sensor: "SensorNode", entry: NeighborEntry
    ) -> bool:
        """Guardian pairs stay within one subarea (paper §3.2)."""
        return self.partition.index_of(entry.position) == sensor.subarea

    def publish_robot_location(self, robot: "RobotNode", seq: int) -> None:
        """Flood the new position to every sensor of the subarea."""
        robot.send_broadcast(
            Category.LOCATION_UPDATE,
            FloodMessage(
                origin_id=robot.node_id,
                position=robot.position,
                kind=robot.kind,
                seq=seq,
                subarea=robot.subarea,
            ),
        )

    def should_relay_flood(
        self, sensor: "SensorNode", flood: FloodMessage
    ) -> bool:
        """Relay iff the flood belongs to this sensor's subarea."""
        if self.config.efficient_broadcast and not self.runtime.is_relay(
            sensor.node_id
        ):
            return False
        return flood.subarea == sensor.subarea

    def on_flood_learned(
        self, sensor: "SensorNode", flood: FloodMessage
    ) -> None:
        if flood.origin_id == sensor.myrobot_id:
            sensor.myrobot_position = flood.position
