"""Centralized manager algorithm (paper §3.1).

One static manager robot at the field centre receives every failure
report and forwards a replacement request to the robot whose last known
location is closest to the failure.  Moving robots update the manager via
geographic routing and their one-hop sensor neighbours via a local
broadcast, every 20 m of travel.
"""

from __future__ import annotations

import typing

from repro.core.coordination.base import CoordinationStrategy
from repro.core.messages import FloodMessage
from repro.deploy.placement import uniform_random_positions
from repro.geometry.point import Point
from repro.net.frames import Category, NodeAnnouncement, NodeId
from repro.sim.rng import RandomStream

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.robot import RobotNode
    from repro.core.sensor import SensorNode

__all__ = ["CentralizedStrategy"]


class CentralizedStrategy(CoordinationStrategy):
    """All reports go to one central manager."""

    name = "centralized"

    @property
    def uses_central_manager(self) -> bool:
        return True

    def robot_positions(self, rng: RandomStream) -> typing.List[Point]:
        """Robots start uniformly distributed (paper §2 assumption (a))."""
        return uniform_random_positions(
            self.config.robot_count, self.config.bounds, rng
        )

    def setup(self) -> None:
        manager = self.runtime.manager
        assert manager is not None, "centralized strategy requires a manager"

        # 1. The manager broadcasts its location to all sensors and robots
        #    (paper: "the manager broadcasts its location to all the sensor
        #    nodes and all the maintenance robots") — a network-wide flood.
        manager_flood = FloodMessage(
            origin_id=manager.node_id,
            position=manager.position,
            kind="manager",
            seq=0,
        )
        manager.send_broadcast(Category.INITIALIZATION, manager_flood)

        # Administrative seed of the same fact, so correctness does not
        # hinge on flood propagation through a possibly imperfect medium.
        for sensor in self.runtime.sensors.values():
            sensor.manager_id = manager.node_id
            sensor.manager_position = manager.position

        # 2. Each robot registers with the manager (routed) and announces
        #    itself to its one-hop sensor neighbours (broadcast).  The
        #    manager's broadcast reaches the robots too, so they know
        #    where to send location updates and completion reports.
        for robot in self.runtime.robots_sorted():
            robot.manager_id = manager.node_id
            robot.manager_position = manager.position
            manager.register_robot(robot.node_id, robot.position)
            robot.send_routed(
                manager.node_id,
                manager.position,
                Category.INITIALIZATION,
                NodeAnnouncement(
                    node_id=robot.node_id,
                    position=robot.position,
                    kind=robot.kind,
                ),
            )
            robot.send_broadcast(
                Category.INITIALIZATION,
                NodeAnnouncement(
                    node_id=robot.node_id,
                    position=robot.position,
                    kind=robot.kind,
                ),
            )

    def report_target(
        self, sensor: "SensorNode"
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        if sensor.manager_id is None or sensor.manager_position is None:
            return None
        return (sensor.manager_id, sensor.manager_position)

    def publish_robot_location(self, robot: "RobotNode", seq: int) -> None:
        """Routed update to the manager + one-hop broadcast (paper §3.1).

        The update goes to the robot's *current* manager contact — the
        static manager in the baseline (set during setup), or the acting
        manager after a failover.
        """
        announcement = NodeAnnouncement(
            node_id=robot.node_id,
            position=robot.position,
            kind=robot.kind,
        )
        if (
            robot.manager_id is not None
            and robot.manager_position is not None
            and robot.manager_id != robot.node_id
        ):
            robot.send_routed(
                robot.manager_id,
                robot.manager_position,
                Category.LOCATION_UPDATE,
                announcement,
            )
        robot.send_broadcast(Category.LOCATION_UPDATE, announcement)

    def should_relay_flood(
        self, sensor: "SensorNode", flood: FloodMessage
    ) -> bool:
        """Only the manager's initialization flood is network-wide."""
        return flood.kind == "manager"
