"""Dynamic distributed manager algorithm (paper §3.3).

No fixed boundaries: the effective partition is the Voronoi diagram of
the robots' current positions, maintained *implicitly* — robots flood
their location updates, and every sensor keeps "myrobot" pointed at the
closest robot it knows of.  The relay scope is wider than the moving
robot's own cell: sensors that might switch to the robot — or whose
radio neighbours might — also relay, which is exactly why the paper
observes slightly higher messaging overhead than the fixed algorithm
(§3.3 last paragraph, Figure 4).
"""

from __future__ import annotations

import typing

from repro.core.coordination.base import CoordinationStrategy
from repro.core.messages import FloodMessage
from repro.deploy.placement import uniform_random_positions
from repro.geometry.point import Point
from repro.geometry.voronoi import closest_site_indices
from repro.net.frames import Category, NodeId
from repro.sim.rng import RandomStream

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.robot import RobotNode
    from repro.core.sensor import SensorNode

__all__ = ["DynamicStrategy"]


class DynamicStrategy(CoordinationStrategy):
    """Voronoi-implicit partition; sensors track the closest robot."""

    name = "dynamic"

    def robot_positions(self, rng: RandomStream) -> typing.List[Point]:
        """Robots start uniformly distributed (paper §2 assumption (a))."""
        return uniform_random_positions(
            self.config.robot_count, self.config.bounds, rng
        )

    def setup(self) -> None:
        robots = self.runtime.robots_sorted()
        positions = [robot.position for robot in robots]

        # Deployment-time seed: every sensor knows the initial robot
        # layout and adopts the closest robot as myrobot.  Membership is
        # resolved for all sensors in one flat-array kernel pass
        # (bit-identical to the per-sensor closest_site_index loop).
        sensors = self.runtime.sensors_sorted()
        indices = closest_site_indices(
            [sensor.position for sensor in sensors], positions
        )
        for sensor, index in zip(sensors, indices):
            for robot in robots:
                sensor.known_robots[robot.node_id] = (robot.position, 0)
            sensor.myrobot_id = robots[index].node_id
            sensor.myrobot_position = robots[index].position

        # On-air initialization floods: with empty relay knowledge these
        # propagate network-wide, establishing the same state on the air.
        for robot in robots:
            robot.send_broadcast(
                Category.INITIALIZATION,
                FloodMessage(
                    origin_id=robot.node_id,
                    position=robot.position,
                    kind=robot.kind,
                    seq=robot.next_flood_seq(),
                ),
            )

    def seed_replacement(self, sensor: "SensorNode") -> None:
        """Copy robot knowledge from the nearest neighbour, then adopt
        the closest known robot as myrobot."""
        super().seed_replacement(sensor)
        self._refresh_myrobot(sensor)

    def report_target(
        self, sensor: "SensorNode"
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        closest = sensor.closest_known_robot()
        if closest is None:
            if sensor.myrobot_id is None or sensor.myrobot_position is None:
                return None
            return (sensor.myrobot_id, sensor.myrobot_position)
        return closest

    def publish_robot_location(self, robot: "RobotNode", seq: int) -> None:
        """Flood the new position with Voronoi-adaptive scope."""
        robot.send_broadcast(
            Category.LOCATION_UPDATE,
            FloodMessage(
                origin_id=robot.node_id,
                position=robot.position,
                kind=robot.kind,
                seq=seq,
            ),
        )

    def should_relay_flood(
        self, sensor: "SensorNode", flood: FloodMessage
    ) -> bool:
        """Relay iff this sensor is in the announcing robot's (implicit)
        Voronoi cell or the boundary band around it.

        Formally: relay when ``d(s, p_R) <= d(s, closest other robot
        known to s) + margin``.  The margin band admits the boundary
        sensors of neighbouring cells that the paper calls out ("such
        nodes may also need to relay the location update messages");
        with no other robot known the flood is unbounded (which makes
        the very first initialization flood network-wide).
        """
        if self.config.efficient_broadcast and not self.runtime.is_relay(
            sensor.node_id
        ):
            return False
        distance_to_origin = sensor.position.distance_to(flood.position)
        # For an obituary the announced position is the *subject*'s, so
        # the scope is the dead robot's cell (plus the margin band) and
        # the subject is the robot to exclude from "closest other".
        excluded = (
            flood.subject if flood.subject is not None else flood.origin_id
        )
        closest_other = sensor.closest_known_robot(exclude={excluded})
        if closest_other is None:
            return True
        distance_to_other = sensor.position.distance_to(closest_other[1])
        return (
            distance_to_origin
            <= distance_to_other + self.config.dynamic_relay_margin_m
        )

    def on_flood_learned(
        self, sensor: "SensorNode", flood: FloodMessage
    ) -> None:
        """Sensors dynamically adjust myrobot to the closest robot."""
        self._refresh_myrobot(sensor)

    @staticmethod
    def _refresh_myrobot(sensor: "SensorNode") -> None:
        closest = sensor.closest_known_robot()
        if closest is not None:
            sensor.myrobot_id, sensor.myrobot_position = closest

    # ------------------------------------------------------------------
    # Robot faults (resilience extension)
    # ------------------------------------------------------------------
    def on_robot_declared_dead(
        self,
        monitor: typing.Optional["RobotNode"],
        robot_id: NodeId,
        position: typing.Optional[Point],
    ) -> None:
        """Voronoi re-partition by obituary flood.

        The declaring monitor floods an obituary scoped to the dead
        robot's (former) cell plus the margin band: every sensor that
        might have pointed at the dead robot forgets it and re-adopts
        the closest remaining robot it knows (paper §3.3 machinery,
        re-used for shrinkage instead of movement).
        """
        if monitor is None or not monitor.alive:
            return
        if position is None:
            position = monitor.position
        monitor.send_broadcast(
            Category.LOCATION_UPDATE,
            FloodMessage(
                origin_id=monitor.node_id,
                position=position,
                kind=monitor.kind,
                seq=monitor.next_flood_seq(),
                subject=robot_id,
            ),
        )

    def on_robot_recovered(self, robot: "RobotNode") -> None:
        """Nothing special: the recovered robot's next location flood
        re-introduces it to the sensors around it."""
