"""The paper's three robot coordination algorithms."""

from repro.core.coordination.base import CoordinationStrategy
from repro.core.coordination.centralized import CentralizedStrategy
from repro.core.coordination.dynamic import DynamicStrategy
from repro.core.coordination.fixed import FixedStrategy

__all__ = [
    "CentralizedStrategy",
    "CoordinationStrategy",
    "DynamicStrategy",
    "FixedStrategy",
    "strategy_for",
]

_REGISTRY = {
    CentralizedStrategy.name: CentralizedStrategy,
    FixedStrategy.name: FixedStrategy,
    DynamicStrategy.name: DynamicStrategy,
}


def strategy_for(runtime) -> CoordinationStrategy:
    """Instantiate the strategy named in the runtime's config."""
    algorithm = runtime.config.algorithm
    try:
        cls = _REGISTRY[algorithm]
    except KeyError:
        raise ValueError(f"unknown algorithm: {algorithm!r}") from None
    return cls(runtime)
