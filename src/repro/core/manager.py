"""The central manager of the centralized algorithm (paper §3.1).

A static robot at the centre of the field ("we assume the manager does
not move and is located at the center of the area to balance failure
reports from all directions").  The actual dispatch bookkeeping lives in
:class:`repro.core.dispatch.DispatchDesk` so that a maintenance robot
promoted to acting manager (resilience extension) runs the identical
logic; this node delegates to its desk.
"""

from __future__ import annotations

import typing

from repro.core.dispatch import DispatchDesk
from repro.core.messages import (
    BacklogAccept,
    BacklogOffer,
    CompletionNotice,
    FailureNotice,
    Heartbeat,
    HeartbeatAck,
    ProbeReply,
)
from repro.geometry.point import Point
from repro.net.frames import Category, NodeAnnouncement, NodeId, Packet
from repro.net.node import NetworkNode

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import ScenarioRuntime

__all__ = ["CentralManagerNode"]


class CentralManagerNode(NetworkNode):
    """The centralized algorithm's manager robot."""

    kind = "manager"

    def __init__(self, *args: typing.Any, **kwargs: typing.Any) -> None:
        runtime: "ScenarioRuntime" = kwargs.pop("runtime")
        super().__init__(*args, **kwargs)
        self.runtime = runtime
        self.desk = DispatchDesk(self)
        #: Announcement sequence; 0 is the setup flood, restarts advance.
        self._flood_seq = 0

    # ------------------------------------------------------------------
    # Registry (delegated to the desk; tests and strategies use these)
    # ------------------------------------------------------------------
    @property
    def robot_registry(self) -> typing.Dict[NodeId, Point]:
        """Last known location of every maintenance robot."""
        return self.desk.robot_registry

    @property
    def outstanding(self) -> typing.Dict[NodeId, int]:
        """Jobs dispatched but not yet reported complete, per robot."""
        return self.desk.outstanding

    def register_robot(self, robot_id: NodeId, position: Point) -> None:
        """Record (or refresh) a robot's location."""
        self.desk.register_robot(robot_id, position)

    def closest_robot_to(
        self, position: Point
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        """The registered robot nearest to *position* (ties by id)."""
        return self.desk.closest_robot_to(position)

    def select_robot_for(
        self, position: Point
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        """Pick the maintainer per the configured dispatch policy."""
        return self.desk.select_robot_for(position)

    def next_flood_seq(self) -> int:
        """Advance and return the announcement sequence number."""
        self._flood_seq += 1
        return self._flood_seq

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def on_packet_delivered(self, packet: Packet) -> None:
        payload = packet.payload
        if isinstance(payload, FailureNotice):
            self.desk.handle_failure_report(payload, packet.hops)
        elif isinstance(payload, CompletionNotice):
            self.desk.handle_completion(payload)
        elif isinstance(payload, ProbeReply):
            self.desk.handle_probe_reply(payload)
        elif isinstance(payload, NodeAnnouncement):
            # A robot's routed location update (or initial registration).
            if payload.kind == "robot":
                self.register_robot(payload.node_id, payload.position)
        elif isinstance(payload, Heartbeat):
            self._handle_heartbeat(payload)
        elif isinstance(payload, BacklogOffer):
            # Cooperative backlog repair: broker the auction.
            coop = self.runtime.coop
            if coop is not None:
                coop.handle_offer(self.desk, payload)
        elif isinstance(payload, BacklogAccept):
            coop = self.runtime.coop
            if coop is not None:
                coop.handle_accept(self, payload)

    def _handle_heartbeat(self, heartbeat: Heartbeat) -> None:
        service = self.runtime.resilience
        if service is None:
            return
        self.register_robot(heartbeat.robot_id, heartbeat.position)
        service.note_heartbeat(self, heartbeat)
        self.send_routed(
            heartbeat.robot_id,
            heartbeat.position,
            Category.HEARTBEAT,
            HeartbeatAck(
                manager_id=self.node_id,
                robot_id=heartbeat.robot_id,
                sent_time=self.sim.now,
            ),
        )
