"""The central manager of the centralized algorithm (paper §3.1).

A static robot at the centre of the field ("we assume the manager does
not move and is located at the center of the area to balance failure
reports from all directions").  It keeps a registry of every maintenance
robot's last reported location, and forwards each failure to the robot
currently closest to it.
"""

from __future__ import annotations

import typing

from repro.core.messages import (
    CompletionNotice,
    FailureNotice,
    ReplacementRequest,
)
from repro.deploy.scenario import DispatchPolicy
from repro.geometry.point import Point
from repro.net.frames import Category, NodeAnnouncement, NodeId, Packet
from repro.net.node import NetworkNode

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import ScenarioRuntime

__all__ = ["CentralManagerNode"]


class CentralManagerNode(NetworkNode):
    """The centralized algorithm's manager robot."""

    kind = "manager"

    def __init__(self, *args: typing.Any, **kwargs: typing.Any) -> None:
        runtime: "ScenarioRuntime" = kwargs.pop("runtime")
        super().__init__(*args, **kwargs)
        self.runtime = runtime
        #: Last known location of every maintenance robot.
        self.robot_registry: typing.Dict[NodeId, Point] = {}
        #: Jobs dispatched but not yet reported complete, per robot.
        #: Only maintained under the load-aware dispatch policies.
        self.outstanding: typing.Dict[NodeId, int] = {}
        self._handled: typing.Set[NodeId] = set()

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register_robot(self, robot_id: NodeId, position: Point) -> None:
        """Record (or refresh) a robot's location."""
        self.robot_registry[robot_id] = position

    def closest_robot_to(
        self, position: Point
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        """The registered robot nearest to *position* (ties by id)."""
        best: typing.Optional[typing.Tuple[NodeId, Point]] = None
        best_d2 = float("inf")
        for robot_id in sorted(self.robot_registry):
            robot_position = self.robot_registry[robot_id]
            d2 = position.squared_distance_to(robot_position)
            if d2 < best_d2:
                best = (robot_id, robot_position)
                best_d2 = d2
        return best

    def select_robot_for(
        self, position: Point
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        """Pick the maintainer per the configured dispatch policy."""
        policy = self.runtime.config.dispatch_policy
        if policy == DispatchPolicy.CLOSEST or not self.robot_registry:
            return self.closest_robot_to(position)

        def load_of(robot_id: NodeId) -> int:
            return self.outstanding.get(robot_id, 0)

        if policy == DispatchPolicy.CLOSEST_IDLE:
            idle = {
                robot_id: robot_position
                for robot_id, robot_position in self.robot_registry.items()
                if load_of(robot_id) == 0
            }
            if idle:
                best = min(
                    sorted(idle),
                    key=lambda rid: position.squared_distance_to(idle[rid]),
                )
                return (best, idle[best])
            return self.closest_robot_to(position)

        # LEAST_LOADED: minimise queue depth, break ties by distance.
        best_id = min(
            sorted(self.robot_registry),
            key=lambda rid: (
                load_of(rid),
                position.squared_distance_to(self.robot_registry[rid]),
            ),
        )
        return (best_id, self.robot_registry[best_id])

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def on_packet_delivered(self, packet: Packet) -> None:
        payload = packet.payload
        if isinstance(payload, FailureNotice):
            self._handle_failure_report(payload, packet)
        elif isinstance(payload, CompletionNotice):
            current = self.outstanding.get(payload.robot_id, 0)
            self.outstanding[payload.robot_id] = max(0, current - 1)
        elif isinstance(payload, NodeAnnouncement):
            # A robot's routed location update (or initial registration).
            if payload.kind == "robot":
                self.register_robot(payload.node_id, payload.position)

    def _handle_failure_report(
        self, notice: FailureNotice, packet: Packet
    ) -> None:
        if notice.failed_id in self._handled:
            return
        self._handled.add(notice.failed_id)
        metrics = self.runtime.metrics
        metrics.record_report(
            notice.failed_id, self.node_id, self.sim.now, packet.hops
        )
        choice = self.select_robot_for(notice.failed_position)
        if choice is None:
            return  # No robots registered — nothing to dispatch.
        robot_id, robot_position = choice
        self.outstanding[robot_id] = self.outstanding.get(robot_id, 0) + 1
        metrics.record_dispatch(notice.failed_id, robot_id, self.sim.now)
        self.send_routed(
            robot_id,
            robot_position,
            Category.REPAIR_REQUEST,
            ReplacementRequest(
                failed_id=notice.failed_id,
                failed_position=notice.failed_position,
                robot_id=robot_id,
                notice=notice,
            ),
        )
