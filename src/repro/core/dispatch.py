"""Dispatch bookkeeping shared by every node that assigns repair work.

The paper's central manager logic (registry of robot locations + pick a
maintainer per failure) lived on :class:`CentralManagerNode`; the
resilience extension needs the same logic on a *robot* after manager
failover.  :class:`DispatchDesk` is that logic as a component: the
static manager owns one permanently, and a robot promoted to acting
manager creates one on the spot.

With resilience disabled the desk reproduces the baseline behaviour
bit for bit: same handling order, same metric calls, same messages, no
timers.  With resilience enabled it additionally tracks every dispatch
as *pending* and watches a completion deadline — a silent repair is
re-dispatched (excluding the unresponsive robot) with exponential
backoff until the retry budget runs out, at which point the failure is
declared orphaned.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.messages import (
    CompletionNotice,
    Confidence,
    FailureNotice,
    ProbeReply,
    ReplacementRequest,
)
from repro.deploy.scenario import DispatchPolicy
from repro.geometry.point import Point
from repro.net.frames import Category, NodeId

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import ScenarioRuntime
    from repro.faults.verify import ProbeCoordinator
    from repro.net.node import NetworkNode

__all__ = ["DispatchDesk"]


@dataclasses.dataclass(slots=True)
class _Pending:
    """One dispatched repair awaiting completion evidence."""

    notice: FailureNotice
    attempt: int
    robot_id: NodeId


class DispatchDesk:
    """Robot registry + maintainer selection + (optional) re-dispatch."""

    def __init__(self, host: "NetworkNode") -> None:
        self.host = host
        self.runtime: "ScenarioRuntime" = host.runtime  # type: ignore[attr-defined]
        #: Last known location of every maintenance robot.
        self.robot_registry: typing.Dict[NodeId, Point] = {}
        #: Jobs dispatched but not yet reported complete, per robot.
        #: Only maintained under the load-aware dispatch policies.
        self.outstanding: typing.Dict[NodeId, int] = {}
        self._handled: typing.Set[NodeId] = set()
        #: Robots this desk has declared dead (excluded from selection).
        self._dead: typing.Set[NodeId] = set()
        #: failed_id -> in-flight dispatch (resilience mode only).
        self._pending: typing.Dict[NodeId, _Pending] = {}
        #: failed_id -> total dispatches issued (the retry budget).
        self._dispatch_count: typing.Dict[NodeId, int] = {}
        #: Probe round-trips for suspected failures (verification mode).
        self._probe_coordinator: typing.Optional["ProbeCoordinator"] = None

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register_robot(self, robot_id: NodeId, position: Point) -> None:
        """Record (or refresh) a robot's location."""
        self.robot_registry[robot_id] = position
        self._dead.discard(robot_id)

    def closest_robot_to(
        self,
        position: Point,
        exclude: typing.Container[NodeId] = (),
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        """The registered robot nearest to *position* (ties by id)."""
        best: typing.Optional[typing.Tuple[NodeId, Point]] = None
        best_d2 = float("inf")
        for robot_id in sorted(self.robot_registry):
            if robot_id in exclude or robot_id in self._dead:
                continue
            robot_position = self.robot_registry[robot_id]
            d2 = position.squared_distance_to(robot_position)
            if d2 < best_d2:
                best = (robot_id, robot_position)
                best_d2 = d2
        return best

    def select_robot_for(
        self,
        position: Point,
        exclude: typing.Container[NodeId] = (),
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        """Pick the maintainer per the configured dispatch policy."""
        policy = self.runtime.config.dispatch_policy
        candidates = {
            robot_id: robot_position
            for robot_id, robot_position in self.robot_registry.items()
            if robot_id not in exclude and robot_id not in self._dead
        }
        if policy == DispatchPolicy.CLOSEST or not candidates:
            return self.closest_robot_to(position, exclude=exclude)

        def load_of(robot_id: NodeId) -> int:
            return self.outstanding.get(robot_id, 0)

        if policy == DispatchPolicy.CLOSEST_IDLE:
            idle = {
                robot_id: robot_position
                for robot_id, robot_position in candidates.items()
                if load_of(robot_id) == 0
            }
            if idle:
                best = min(
                    sorted(idle),
                    key=lambda rid: position.squared_distance_to(idle[rid]),
                )
                return (best, idle[best])
            return self.closest_robot_to(position, exclude=exclude)

        # LEAST_LOADED: minimise queue depth, break ties by distance.
        best_id = min(
            sorted(candidates),
            key=lambda rid: (
                load_of(rid),
                position.squared_distance_to(candidates[rid]),
            ),
        )
        return (best_id, candidates[best_id])

    # ------------------------------------------------------------------
    # Report intake & dispatch
    # ------------------------------------------------------------------
    def handle_failure_report(
        self, notice: FailureNotice, hops: int
    ) -> None:
        """Process a failure report exactly as the paper's manager does;
        under resilience, duplicate reports for uncustodied failures
        trigger a re-dispatch instead of being dropped.  Under
        verification, an unquorate (SUSPECTED) report is probed first."""
        runtime = self.runtime
        if (
            runtime.config.verify_failures
            and notice.confidence == Confidence.SUSPECTED
            and not runtime.already_repaired(notice.failed_id)
            and notice.failed_id not in self._pending
        ):
            self._prober().handle_suspected(
                notice, lambda n: self._confirm_suspected(n, hops)
            )
            return
        if notice.failed_id in self._handled:
            if not runtime.config.resilience_enabled:
                return
            if notice.failed_id in self._pending:
                return  # A dispatch is in flight; its deadline decides.
            if runtime.already_repaired(notice.failed_id):
                return
            self._dispatch(notice)
            return
        self._handled.add(notice.failed_id)
        runtime.metrics.record_report(
            notice.failed_id, self.host.node_id, self.host.sim.now, hops
        )
        self._dispatch(notice)

    def _confirm_suspected(self, notice: FailureNotice, hops: int) -> None:
        """A probe deadline expired unanswered: believe the report."""
        runtime = self.runtime
        if runtime.already_repaired(notice.failed_id):
            return
        if notice.failed_id in self._pending:
            return  # A parallel report confirmed first.
        if notice.failed_id not in self._handled:
            self._handled.add(notice.failed_id)
            runtime.metrics.record_report(
                notice.failed_id, self.host.node_id, self.host.sim.now, hops
            )
        self._dispatch(notice)

    def _prober(self) -> "ProbeCoordinator":
        """This desk's probe coordinator, created on first use."""
        if self._probe_coordinator is None:
            from repro.faults.verify import ProbeCoordinator

            self._probe_coordinator = ProbeCoordinator(self.host)
        return self._probe_coordinator

    def handle_probe_reply(self, reply: ProbeReply) -> None:
        """Route a suspect's are-you-alive answer to the coordinator."""
        if self._probe_coordinator is not None:
            self._probe_coordinator.on_probe_reply(reply)

    def handle_completion(self, notice: CompletionNotice) -> None:
        """A robot reported a finished repair (or an on-site abort)."""
        current = self.outstanding.get(notice.robot_id, 0)
        self.outstanding[notice.robot_id] = max(0, current - 1)
        self._pending.pop(notice.failed_id, None)
        if notice.verified_alive:
            # The sensor was alive: forget the case entirely so a later,
            # genuine failure of the same node dispatches afresh.
            self._handled.discard(notice.failed_id)
            self._dispatch_count.pop(notice.failed_id, None)

    def has_pending(self, failed_id: NodeId) -> bool:
        """Is a dispatch for *failed_id* currently being watched?"""
        return failed_id in self._pending

    def is_dead(self, robot_id: NodeId) -> bool:
        """Has this desk declared *robot_id* dead?"""
        return robot_id in self._dead

    def reassign_pending(self, failed_id: NodeId, robot_id: NodeId) -> None:
        """Point an in-flight dispatch watch at a new custodian.

        Cooperative repair moves a queued item between robots; the
        completion deadline (resilience mode) must then blame the
        helper, not the origin, if the repair goes silent.
        """
        pending = self._pending.get(failed_id)
        if pending is not None:
            pending.robot_id = robot_id

    def _dispatch(
        self,
        notice: FailureNotice,
        exclude: typing.Container[NodeId] = (),
    ) -> None:
        runtime = self.runtime
        config = runtime.config
        failed_id = notice.failed_id
        prior = self._dispatch_count.get(failed_id, 0)
        if prior > config.redispatch_limit:
            self._pending.pop(failed_id, None)
            runtime.declare_orphaned(failed_id, "retry budget exhausted")
            return
        choice = self.select_robot_for(notice.failed_position, exclude)
        if choice is None and exclude:
            # Everyone is excluded: better a repeat maintainer than none.
            choice = self.select_robot_for(notice.failed_position)
        if choice is None:
            return  # No robots registered — nothing to dispatch.
        robot_id, robot_position = choice
        self._dispatch_count[failed_id] = prior + 1
        self.outstanding[robot_id] = self.outstanding.get(robot_id, 0) + 1
        if prior > 0:
            runtime.metrics.record_redispatch(failed_id)
            if runtime.tracer.active:
                runtime.tracer.emit(
                    "redispatch",
                    time=self.host.sim.now,
                    failed=failed_id,
                    robot=robot_id,
                    attempt=prior,
                )
        runtime.metrics.record_dispatch(
            failed_id, robot_id, self.host.sim.now
        )
        self._deliver(robot_id, robot_position, notice)
        if config.resilience_enabled:
            self._pending[failed_id] = _Pending(notice, prior, robot_id)
            self._watch(failed_id, prior)

    def _deliver(
        self, robot_id: NodeId, robot_position: Point, notice: FailureNotice
    ) -> None:
        if robot_id == self.host.node_id:
            # Acting-manager robot assigning itself: no message needed.
            accept = getattr(self.host, "accept_self_dispatch", None)
            if accept is not None:
                accept(notice)
            return
        self.host.send_routed(
            robot_id,
            robot_position,
            Category.REPAIR_REQUEST,
            ReplacementRequest(
                failed_id=notice.failed_id,
                failed_position=notice.failed_position,
                robot_id=robot_id,
                notice=notice,
            ),
        )

    # ------------------------------------------------------------------
    # Completion deadlines (resilience mode)
    # ------------------------------------------------------------------
    def _watch(self, failed_id: NodeId, attempt: int) -> None:
        config = self.runtime.config
        deadline = config.effective_repair_deadline_s + (
            config.redispatch_backoff_s * (2.0 ** attempt)
        )
        self.host.sim.call_in(
            deadline, lambda: self._check(failed_id, attempt)
        )

    def _check(self, failed_id: NodeId, attempt: int) -> None:
        pending = self._pending.get(failed_id)
        if pending is None or pending.attempt != attempt:
            return  # Settled or superseded by a later dispatch.
        if not self._host_dispatching():
            return  # This desk's node died or was demoted.
        if self.runtime.already_repaired(failed_id):
            self._pending.pop(failed_id, None)
            return  # Repaired; only the completion notice went missing.
        self._pending.pop(failed_id, None)
        self._dispatch(pending.notice, exclude={pending.robot_id})

    def _host_dispatching(self) -> bool:
        return self.host.alive and getattr(
            self.host, "acting_manager", True
        )

    # ------------------------------------------------------------------
    # Robot death
    # ------------------------------------------------------------------
    def on_robot_declared_dead(self, robot_id: NodeId) -> None:
        """Exclude *robot_id* and re-dispatch its in-flight repairs."""
        self._dead.add(robot_id)
        self.robot_registry.pop(robot_id, None)
        self.outstanding.pop(robot_id, None)
        orphaned = sorted(
            failed_id
            for failed_id, pending in self._pending.items()
            if pending.robot_id == robot_id
        )
        for failed_id in orphaned:
            pending = self._pending.pop(failed_id)
            if self.runtime.already_repaired(failed_id):
                continue
            self._dispatch(pending.notice, exclude={robot_id})
