"""Application-layer message payloads of the coordination protocols.

These ride inside :class:`repro.net.frames.Packet` payloads.  The
categories they map to drive the paper's overhead accounting:

* :class:`FailureNotice` — ``failure_report`` (guardian → manager).
* :class:`ReplacementRequest` — ``repair_request`` (manager → maintainer;
  only exists as a routed message in the centralized algorithm — in the
  distributed algorithms the receiving robot *is* the manager).
* :class:`FloodMessage` — ``location_update`` when a moving robot
  broadcasts its position (or ``initialization`` during setup); relayed
  by sensors with duplicate suppression by sequence number.
* :class:`GuardianConfirm` — ``guardian_control`` (guardee → guardian,
  one hop).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.geometry.point import Point
from repro.net.frames import NodeId

__all__ = [
    "BacklogAccept",
    "BacklogClaim",
    "BacklogOffer",
    "BacklogRelease",
    "CompletionNotice",
    "Confidence",
    "FailureNotice",
    "Heartbeat",
    "HeartbeatAck",
    "ProbeReply",
    "ProbeRequest",
    "ReplacementRequest",
    "FloodMessage",
    "GuardianConfirm",
    "SuspicionQuery",
    "SuspicionVote",
]


class Confidence:
    """How sure a :class:`FailureNotice` is that its subject is dead.

    The verification extension's escalation ladder: a guardian timeout
    alone yields ``SUSPECTED``; agreement from
    ``verification_quorum`` guardians upgrades it to ``CORROBORATED``;
    the maintainer's on-site probe is the final ``CONFIRMED`` word.
    With verification off every notice is ``CONFIRMED`` (the paper's
    trust-the-guardian behaviour).
    """

    SUSPECTED = "suspected"
    CORROBORATED = "corroborated"
    CONFIRMED = "confirmed"

    ALL = (SUSPECTED, CORROBORATED, CONFIRMED)


@dataclasses.dataclass(frozen=True, slots=True)
class FailureNotice:
    """A guardian's report that its guardee has failed."""

    failed_id: NodeId
    failed_position: Point
    guardian_id: NodeId
    detect_time: float
    #: Verification extension; the default keeps pre-verification call
    #: sites (and the paper's baseline protocol) unchanged.
    confidence: str = Confidence.CONFIRMED


@dataclasses.dataclass(frozen=True, slots=True)
class ReplacementRequest:
    """The central manager's instruction to a maintenance robot."""

    failed_id: NodeId
    failed_position: Point
    robot_id: NodeId
    notice: FailureNotice


@dataclasses.dataclass(frozen=True, slots=True)
class FloodMessage:
    """A position announcement flooded through (part of) the network.

    ``origin_id`` is the robot or manager whose position is announced;
    ``seq`` increases monotonically per origin, and sensors relay a given
    ``(origin, seq)`` at most once (paper §3.2: "remembering the sequence
    number of the robot location updates it has relayed before").
    ``subarea`` scopes fixed-algorithm floods to the robot's subarea;
    it is None for centralized and dynamic floods.
    """

    origin_id: NodeId
    position: Point
    kind: str
    seq: int
    subarea: typing.Optional[int] = None
    #: When set, the flood announces *another* node's state — e.g. a
    #: monitor broadcasting a dead robot's obituary.  Sensors then must
    #: not mistake the announced position for the relayer's own, and
    #: duplicate suppression excludes the subject rather than the origin.
    subject: typing.Optional[NodeId] = None


@dataclasses.dataclass(frozen=True, slots=True)
class CompletionNotice:
    """A maintainer's report that a replacement finished.

    Only sent in the centralized algorithm under the load-aware dispatch
    policies (:class:`repro.deploy.DispatchPolicy`), which need the
    manager to track each robot's outstanding work.  Not part of the
    paper's baseline protocol.
    """

    robot_id: NodeId
    failed_id: NodeId
    completion_time: float
    #: Verification extension: True when the maintainer found the
    #: "failed" sensor alive on site and aborted the replacement.
    verified_alive: bool = False


@dataclasses.dataclass(frozen=True, slots=True)
class Heartbeat:
    """A robot's periodic liveness report (resilience extension).

    Routed to the central manager (centralized algorithm) or to the
    robot's ring successor (distributed algorithms).  Silence for
    ``missed_heartbeats_for_failure`` periods triggers a failure
    declaration.
    """

    robot_id: NodeId
    position: Point
    sent_time: float


@dataclasses.dataclass(frozen=True, slots=True)
class HeartbeatAck:
    """The manager's answer to a :class:`Heartbeat`.

    Robots use ack silence to detect a dead *manager* (centralized
    algorithm only) and trigger failover.
    """

    manager_id: NodeId
    robot_id: NodeId
    sent_time: float


@dataclasses.dataclass(frozen=True, slots=True)
class GuardianConfirm:
    """A guardee's confirmation establishing the guardian relationship."""

    guardee_id: NodeId
    guardee_position: Point
    #: True when replacing a previous guardian that failed.
    reselection: bool = False


@dataclasses.dataclass(frozen=True, slots=True)
class SuspicionQuery:
    """A guardian's broadcast asking neighbours to corroborate a
    suspected failure (verification extension).

    The suspect itself may answer with an immediate beacon — the
    cheapest possible refutation.
    """

    suspect_id: NodeId
    suspect_position: Point
    guardian_id: NodeId
    guardian_position: Point
    sent_time: float


@dataclasses.dataclass(frozen=True, slots=True)
class SuspicionVote:
    """A neighbour's answer to a :class:`SuspicionQuery`.

    ``corroborate`` is True when the voter has also lost contact with
    the suspect; ``last_heard`` is the voter's freshest beacon time from
    it (used by the guardian to clear stale suspicion state).
    """

    suspect_id: NodeId
    voter_id: NodeId
    corroborate: bool
    last_heard: float


@dataclasses.dataclass(frozen=True, slots=True)
class BacklogOffer:
    """An overloaded robot's plea to its dispatcher (degraded-mode
    extension): auction one of my surplus queue items to a peer.

    Only sent when a dispatch desk exists (centralized algorithm, or an
    acting manager after failover); the distributed algorithms let the
    overloaded robot run the auction itself with :class:`BacklogClaim`.
    """

    failed_id: NodeId
    failed_position: Point
    origin_id: NodeId
    origin_position: Point
    notice: FailureNotice
    sent_time: float


@dataclasses.dataclass(frozen=True, slots=True)
class BacklogClaim:
    """The auctioneer's bounded claim: "take this backlog item?".

    ``reply_to_id`` addresses the auctioneer (the desk host in
    centralized mode, the overloaded robot itself in the distributed
    algorithms); the helper answers with :class:`BacklogAccept` or
    stays silent (silence times out after ``coop_claim_timeout_s``).
    """

    failed_id: NodeId
    failed_position: Point
    origin_id: NodeId
    origin_position: Point
    reply_to_id: NodeId
    reply_to_position: Point
    notice: FailureNotice
    sent_time: float


@dataclasses.dataclass(frozen=True, slots=True)
class BacklogAccept:
    """A helper's acceptance of a :class:`BacklogClaim` — it has
    enqueued the item and will repair it."""

    failed_id: NodeId
    helper_id: NodeId
    origin_id: NodeId
    sent_time: float


@dataclasses.dataclass(frozen=True, slots=True)
class BacklogRelease:
    """The desk's instruction to the overloaded robot to drop the item
    a helper accepted.

    Loss-safe: a lost release leaves the item queued at both robots,
    and the second arrival skips an already-repaired sensor — duplicate
    work, never a dropped failure.
    """

    failed_id: NodeId
    origin_id: NodeId
    helper_id: NodeId
    sent_time: float


@dataclasses.dataclass(frozen=True, slots=True)
class ProbeRequest:
    """A dispatcher's direct are-you-alive probe, routed to the
    suspected sensor's position (verification extension)."""

    target_id: NodeId
    target_position: Point
    prober_id: NodeId
    prober_position: Point
    sent_time: float


@dataclasses.dataclass(frozen=True, slots=True)
class ProbeReply:
    """The suspected sensor's answer to a :class:`ProbeRequest` —
    definitive proof of life, routed back to the prober."""

    target_id: NodeId
    target_position: Point
    prober_id: NodeId
    sent_time: float
