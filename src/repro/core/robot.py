"""Maintenance robot behaviour.

A robot waits for replacement work, drives to failure sites at constant
speed (1 m/s, Pioneer 3DX per paper §4.1), replaces the failed node, and
publishes its location whenever it has moved more than the update
threshold (20 m — a third of the sensor radio range, §4.2) since its
last update, plus once on arrival.  Requests queue FCFS (§3.1).

In the distributed algorithms the robot is also the *manager*: failure
reports arrive directly and are enqueued locally.  In the centralized
algorithm the robot only receives :class:`ReplacementRequest` messages
forwarded by the central manager.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.core.messages import (
    CompletionNotice,
    FailureNotice,
    ReplacementRequest,
)
from repro.deploy.scenario import DispatchPolicy
from repro.geometry.point import Point
from repro.net.frames import Category, NodeId, Packet
from repro.net.node import NetworkNode

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import ScenarioRuntime

__all__ = ["RepairTask", "RobotNode"]


@dataclasses.dataclass(frozen=True, slots=True)
class RepairTask:
    """One queued replacement job."""

    failed_id: NodeId
    position: Point
    notice: typing.Optional[FailureNotice] = None


class RobotNode(NetworkNode):
    """A mobile maintenance robot (and, when distributed, a manager)."""

    kind = "robot"

    def __init__(self, *args: typing.Any, **kwargs: typing.Any) -> None:
        runtime: "ScenarioRuntime" = kwargs.pop("runtime")
        super().__init__(*args, **kwargs)
        self.runtime = runtime
        config = runtime.config
        self.speed = config.robot_speed_mps
        self.update_threshold = config.update_threshold_m
        #: Seconds spent swapping in the new node (0 in the paper's model).
        self.service_time = 0.0
        #: Fixed-algorithm subarea this robot manages (None otherwise).
        self.subarea: typing.Optional[int] = None
        #: Spares carried; None = unlimited (the paper's implicit model).
        self.capacity = config.robot_capacity
        self.spares = config.robot_capacity
        #: Where to reload spares (field centre); used only with capacity.
        self.depot: typing.Optional[Point] = None
        self.reload_time = 0.0
        #: Central manager contact (centralized algorithm; set by the
        #: strategy during initialization — paper §3.1: "the manager
        #: broadcasts its location to ... all the maintenance robots").
        self.manager_id: typing.Optional[NodeId] = None
        self.manager_position: typing.Optional[Point] = None
        #: Home post for the return-to-post extension (deployment
        #: position; None unless the extension is enabled).
        self.home: typing.Optional[Point] = (
            self.position
            if config.return_to_post_after_s is not None
            else None
        )
        self.return_after = config.return_to_post_after_s

        self._queue: typing.Deque[RepairTask] = collections.deque()
        self._handled: typing.Set[NodeId] = set()
        self._wakeup = None
        self._flood_seq = 0
        self._distance_since_update = 0.0
        self._loop_started = False

    # ------------------------------------------------------------------
    # Work intake
    # ------------------------------------------------------------------
    def on_packet_delivered(self, packet: Packet) -> None:
        payload = packet.payload
        if isinstance(payload, FailureNotice):
            # Distributed algorithms: this robot is the manager.
            if payload.failed_id in self._handled:
                return
            self._handled.add(payload.failed_id)
            metrics = self.runtime.metrics
            metrics.record_report(
                payload.failed_id, self.node_id, self.sim.now, packet.hops
            )
            metrics.record_dispatch(
                payload.failed_id, self.node_id, self.sim.now
            )
            self.enqueue(
                RepairTask(
                    failed_id=payload.failed_id,
                    position=payload.failed_position,
                    notice=payload,
                )
            )
        elif isinstance(payload, ReplacementRequest):
            # Centralized algorithm: forwarded by the central manager.
            if payload.failed_id in self._handled:
                return
            self._handled.add(payload.failed_id)
            self.runtime.metrics.record_request_hops(
                payload.failed_id, packet.hops
            )
            self.enqueue(
                RepairTask(
                    failed_id=payload.failed_id,
                    position=payload.failed_position,
                    notice=payload.notice,
                )
            )

    def enqueue(self, task: RepairTask) -> None:
        """Add a repair job to the FCFS queue and wake the robot."""
        self._queue.append(task)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    @property
    def queue_length(self) -> int:
        """Jobs waiting (not counting one being executed)."""
        return len(self._queue)

    @property
    def is_idle(self) -> bool:
        """True while parked waiting for work."""
        return self._wakeup is not None and not self._wakeup.triggered

    # ------------------------------------------------------------------
    # Maintenance loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the maintenance process (idempotent)."""
        if self._loop_started:
            return
        self._loop_started = True
        self.sim.process(
            self._maintenance_loop(), name=f"robot:{self.node_id}"
        )

    def _maintenance_loop(self) -> typing.Generator:
        while True:
            while not self._queue:
                self._wakeup = self.sim.event()
                if self.home is not None and self.return_after is not None:
                    timer = self.sim.timeout(self.return_after)
                    yield self.sim.any_of([self._wakeup, timer])
                    if not self._wakeup.triggered:
                        # Idle grace expired: head home, abandoning the
                        # trip the moment new work arrives.
                        self._wakeup = None
                        yield from self._drive_to(
                            self.home, abort_on_work=True
                        )
                        continue
                else:
                    yield self._wakeup
                self._wakeup = None
            task = self._queue.popleft()
            leg_distance = yield from self._drive_to(task.position)
            if self.service_time > 0:
                yield self.sim.timeout(self.service_time)
            self.runtime.complete_replacement(self, task, leg_distance)
            self._report_completion(task)
            if self.capacity is not None:
                self.spares = (self.spares or 0) - 1
                if self.spares <= 0 and self.depot is not None:
                    yield from self._drive_to(self.depot)
                    if self.reload_time > 0:
                        yield self.sim.timeout(self.reload_time)
                    self.spares = self.capacity

    def _drive_to(
        self, target: Point, abort_on_work: bool = False
    ) -> typing.Generator:
        """Drive in a straight line to *target* at constant speed.

        Motion is integrated in segments that end exactly at each
        location-update threshold crossing, so updates fire at the same
        positions a continuous model would produce.  Returns the distance
        travelled.  With ``abort_on_work`` the drive stops at the next
        segment boundary once repair work is queued (used by the
        return-to-post extension).
        """
        travelled = 0.0
        while not self.position.is_close(target, 1e-9):
            if abort_on_work and self._queue:
                return travelled
            remaining = self.position.distance_to(target)
            to_next_update = self.update_threshold - self._distance_since_update
            step = min(remaining, max(to_next_update, 1e-9))
            yield self.sim.timeout(step / self.speed)
            self.move_to(self.position.towards(target, step))
            travelled += step
            self._distance_since_update += step
            self.runtime.metrics.record_travel(self.node_id, step)
            if self._distance_since_update >= self.update_threshold - 1e-9:
                self.publish_location()
        # Paper §3.1: after replacing (i.e. on arrival) the robot updates
        # the manager / nearby sensors with its final position.
        if self._distance_since_update > 1e-9:
            self.publish_location()
        return travelled

    def _report_completion(self, task: RepairTask) -> None:
        """Tell the manager this job finished (load-aware policies only).

        The paper's baseline dispatch ("closest") needs no feedback, so
        no message is sent there — keeping baseline transmission counts
        untouched.
        """
        if (
            self.runtime.config.dispatch_policy == DispatchPolicy.CLOSEST
            or self.manager_id is None
            or self.manager_position is None
        ):
            return
        self.send_routed(
            self.manager_id,
            self.manager_position,
            Category.COMPLETION,
            CompletionNotice(
                robot_id=self.node_id,
                failed_id=task.failed_id,
                completion_time=self.sim.now,
            ),
        )

    # ------------------------------------------------------------------
    # Location updates
    # ------------------------------------------------------------------
    def publish_location(self) -> None:
        """Announce the current position per the active algorithm."""
        self._distance_since_update = 0.0
        self._flood_seq += 1
        self.runtime.coordination.publish_robot_location(
            self, self._flood_seq
        )

    @property
    def flood_seq(self) -> int:
        """Monotone sequence number for this robot's announcements."""
        return self._flood_seq

    def next_flood_seq(self) -> int:
        """Advance and return the announcement sequence number."""
        self._flood_seq += 1
        return self._flood_seq
