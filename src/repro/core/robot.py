"""Maintenance robot behaviour.

A robot waits for replacement work, drives to failure sites at constant
speed (1 m/s, Pioneer 3DX per paper §4.1), replaces the failed node, and
publishes its location whenever it has moved more than the update
threshold (20 m — a third of the sensor radio range, §4.2) since its
last update, plus once on arrival.  Requests queue FCFS (§3.1).

In the distributed algorithms the robot is also the *manager*: failure
reports arrive directly and are enqueued locally.  In the centralized
algorithm the robot only receives :class:`ReplacementRequest` messages
forwarded by the central manager.

Resilience extension: robots can break (:meth:`mark_down`) — a broken
robot freezes mid-leg, drops its queue, and stops sending or receiving
until it recovers (or forever, for a permanent crash).  A robot can also
be *promoted* to acting manager after a central-manager failure, at
which point it runs the same :class:`~repro.core.dispatch.DispatchDesk`
logic as the static manager.  With faults and resilience disabled every
code path below reduces to the paper's baseline behaviour.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.core.messages import (
    BacklogAccept,
    BacklogClaim,
    BacklogOffer,
    BacklogRelease,
    CompletionNotice,
    Confidence,
    FailureNotice,
    FloodMessage,
    Heartbeat,
    HeartbeatAck,
    ProbeReply,
    ReplacementRequest,
)
from repro.deploy.scenario import DispatchPolicy
from repro.geometry.point import Point
from repro.net.frames import Category, NodeAnnouncement, NodeId, Packet
from repro.net.node import NetworkNode

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.dispatch import DispatchDesk
    from repro.core.runtime import ScenarioRuntime
    from repro.faults.verify import ProbeCoordinator

__all__ = ["RepairTask", "RobotNode"]


@dataclasses.dataclass(frozen=True, slots=True)
class RepairTask:
    """One queued replacement job."""

    failed_id: NodeId
    position: Point
    notice: typing.Optional[FailureNotice] = None


class RobotNode(NetworkNode):
    """A mobile maintenance robot (and, when distributed, a manager)."""

    kind = "robot"

    def __init__(self, *args: typing.Any, **kwargs: typing.Any) -> None:
        runtime: "ScenarioRuntime" = kwargs.pop("runtime")
        super().__init__(*args, **kwargs)
        self.runtime = runtime
        config = runtime.config
        self.speed = config.robot_speed_mps
        self.update_threshold = config.update_threshold_m
        #: Seconds spent swapping in the new node (0 in the paper's model).
        self.service_time = 0.0
        #: Fixed-algorithm subarea this robot manages (None otherwise).
        self.subarea: typing.Optional[int] = None
        #: Spares carried; None = unlimited (the paper's implicit model).
        self.capacity = config.robot_capacity
        self.spares = config.robot_capacity
        #: Where to reload spares (field centre); used only with capacity.
        self.depot: typing.Optional[Point] = None
        self.reload_time = 0.0
        #: Central manager contact (centralized algorithm; set by the
        #: strategy during initialization — paper §3.1: "the manager
        #: broadcasts its location to ... all the maintenance robots").
        self.manager_id: typing.Optional[NodeId] = None
        self.manager_position: typing.Optional[Point] = None
        #: Home post for the return-to-post extension (deployment
        #: position; None unless the extension is enabled).
        self.home: typing.Optional[Point] = (
            self.position
            if config.return_to_post_after_s is not None
            else None
        )
        self.return_after = config.return_to_post_after_s

        #: Broken down (resilience extension); a down robot is off the
        #: channel and its maintenance loop is parked on ``_recovery``.
        self.down = False
        self._recovery = None
        #: Acting central manager after failover (resilience extension).
        self.acting_manager = False
        self.desk: typing.Optional["DispatchDesk"] = None
        #: Probe round-trips for suspected failures (verification mode;
        #: distributed algorithms where this robot is its own manager).
        self._probe_coordinator: typing.Optional["ProbeCoordinator"] = None
        #: Highest manager-announcement seq seen, per origin (dedup for
        #: relayed failover/restart floods).
        self._mgr_flood_seen: typing.Dict[NodeId, int] = {}

        self._queue: typing.Deque[RepairTask] = collections.deque()
        self._current_task: typing.Optional[RepairTask] = None
        self._handled: typing.Set[NodeId] = set()
        self._wakeup = None
        self._flood_seq = 0
        self._distance_since_update = 0.0
        self._loop_started = False

    # ------------------------------------------------------------------
    # Work intake
    # ------------------------------------------------------------------
    def on_packet_delivered(self, packet: Packet) -> None:
        payload = packet.payload
        if isinstance(payload, FailureNotice):
            self._handle_failure_notice(payload, packet)
        elif isinstance(payload, ReplacementRequest):
            # Centralized algorithm: forwarded by the central manager.
            if not self._accept_failure(payload.failed_id):
                return
            self.runtime.metrics.record_request_hops(
                payload.failed_id, packet.hops
            )
            self.enqueue(
                RepairTask(
                    failed_id=payload.failed_id,
                    position=payload.failed_position,
                    notice=payload.notice,
                )
            )
        elif isinstance(payload, CompletionNotice):
            if self.acting_manager and self.desk is not None:
                self.desk.handle_completion(payload)
        elif isinstance(payload, ProbeReply):
            if self._probe_coordinator is not None:
                self._probe_coordinator.on_probe_reply(payload)
            if self.acting_manager and self.desk is not None:
                self.desk.handle_probe_reply(payload)
        elif isinstance(payload, Heartbeat):
            self._handle_heartbeat(payload)
        elif isinstance(payload, HeartbeatAck):
            service = self.runtime.resilience
            if service is not None:
                service.note_ack(payload.robot_id)
        elif isinstance(payload, BacklogOffer):
            # Cooperative repair, desk mode: only an acting manager
            # brokers offers (the static manager handles its own).
            coop = self.runtime.coop
            if (
                coop is not None
                and self.acting_manager
                and self.desk is not None
            ):
                coop.handle_offer(self.desk, payload)
        elif isinstance(payload, BacklogClaim):
            coop = self.runtime.coop
            if coop is not None:
                coop.handle_claim(self, payload)
        elif isinstance(payload, BacklogAccept):
            coop = self.runtime.coop
            if coop is not None:
                coop.handle_accept(self, payload)
        elif isinstance(payload, BacklogRelease):
            coop = self.runtime.coop
            if coop is not None:
                coop.handle_release(self, payload)

    def _handle_failure_notice(
        self, notice: FailureNotice, packet: Packet
    ) -> None:
        if self.runtime.coordination.uses_central_manager:
            # Centralized algorithm: a report lands on a robot only after
            # manager failover, when this robot acts as the manager.
            if self.acting_manager and self.desk is not None:
                self.desk.handle_failure_report(notice, packet.hops)
            return
        # Distributed algorithms: this robot is the manager.  A report
        # that never made quorum is probed before being believed.
        if (
            self.runtime.config.verify_failures
            and notice.confidence == Confidence.SUSPECTED
        ):
            if self.runtime.already_repaired(
                notice.failed_id
            ) or self.has_task(notice.failed_id):
                return
            hops = packet.hops
            self._prober().handle_suspected(
                notice, lambda n: self._intake_notice(n, hops)
            )
            return
        self._intake_notice(notice, packet.hops)

    def _intake_notice(self, notice: FailureNotice, hops: int) -> None:
        """Accept a believed failure report (paper-baseline intake)."""
        repeat = notice.failed_id in self._handled
        if not self._accept_failure(notice.failed_id):
            return
        metrics = self.runtime.metrics
        if not repeat and self.runtime.config.resilience_enabled:
            # A peer (now declared dead, or out of reach) may have been
            # dispatched first; accepting the re-report re-dispatches
            # the failure to this robot.
            record = metrics.record_of(notice.failed_id)
            repeat = record is not None and record.dispatch_time is not None
        metrics.record_report(
            notice.failed_id, self.node_id, self.sim.now, hops
        )
        if repeat:
            metrics.record_redispatch(notice.failed_id)
        metrics.record_dispatch(notice.failed_id, self.node_id, self.sim.now)
        self.enqueue(
            RepairTask(
                failed_id=notice.failed_id,
                position=notice.failed_position,
                notice=notice,
            )
        )

    def _prober(self) -> "ProbeCoordinator":
        """This robot's probe coordinator, created on first use."""
        if self._probe_coordinator is None:
            from repro.faults.verify import ProbeCoordinator

            self._probe_coordinator = ProbeCoordinator(self)
        return self._probe_coordinator

    def _accept_failure(self, failed_id: NodeId) -> bool:
        """Duplicate suppression for incoming work.

        Baseline: first come only.  Resilience mode: accept a repeat as
        long as the failure is unrepaired and not already in this
        robot's hands — a re-dispatch after this robot (or a peer)
        silently lost the job.
        """
        if not self.runtime.config.resilience_enabled:
            if failed_id in self._handled:
                return False
            self._handled.add(failed_id)
            return True
        if self.runtime.already_repaired(failed_id):
            return False
        if (
            self._current_task is not None
            and self._current_task.failed_id == failed_id
        ):
            return False
        if any(task.failed_id == failed_id for task in self._queue):
            return False
        self._handled.add(failed_id)
        return True

    def accept_self_dispatch(self, notice: FailureNotice) -> None:
        """An acting-manager robot assigning a repair to itself."""
        if not self._accept_failure(notice.failed_id):
            return
        self.runtime.metrics.record_request_hops(notice.failed_id, 0)
        self.enqueue(
            RepairTask(
                failed_id=notice.failed_id,
                position=notice.failed_position,
                notice=notice,
            )
        )

    def enqueue(self, task: RepairTask) -> None:
        """Add a repair job to the FCFS queue and wake the robot."""
        self._queue.append(task)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        coop = self.runtime.coop
        if coop is not None:
            coop.note_backlog(self)

    @property
    def queue_length(self) -> int:
        """Jobs waiting (not counting one being executed)."""
        return len(self._queue)

    @property
    def is_idle(self) -> bool:
        """True while parked waiting for work."""
        return self._wakeup is not None and not self._wakeup.triggered

    def has_task(self, failed_id: NodeId) -> bool:
        """Is *failed_id* in this robot's hands (queued or in progress)?"""
        if (
            self._current_task is not None
            and self._current_task.failed_id == failed_id
        ):
            return True
        return any(task.failed_id == failed_id for task in self._queue)

    # ------------------------------------------------------------------
    # Cooperative backlog repair (degraded-mode extension)
    # ------------------------------------------------------------------
    def peek_surplus(self) -> typing.Optional[RepairTask]:
        """The queued job this robot would auction away (its newest —
        FCFS order for the work it keeps is preserved)."""
        if not self._queue:
            return None
        return self._queue[-1]

    def remove_queued(self, failed_id: NodeId) -> bool:
        """Drop a queued (not in-progress) job a helper took over."""
        for task in self._queue:
            if task.failed_id == failed_id:
                self._queue.remove(task)
                # Forget the case so a later, genuine re-report of the
                # same node (e.g. the helper also lost it) is accepted.
                self._handled.discard(failed_id)
                return True
        return False

    def accept_coop_task(self, claim: "BacklogClaim") -> bool:
        """Helper-side intake for an auctioned backlog item.

        Declines (by returning False — the claim then times out at the
        auctioneer) when this robot is itself at or over the backlog
        threshold, so a transfer can never push the helper over the
        line and cascade into auction ping-pong.
        """
        if not self.alive or self.down:
            return False
        if self.runtime.already_repaired(claim.failed_id):
            return False
        threshold = self.runtime.config.coop_backlog_threshold
        if self.queue_length >= threshold:
            return False
        if not self._accept_failure(claim.failed_id):
            return False
        self.enqueue(
            RepairTask(
                failed_id=claim.failed_id,
                position=claim.failed_position,
                notice=claim.notice,
            )
        )
        return True

    # ------------------------------------------------------------------
    # Faults (resilience extension)
    # ------------------------------------------------------------------
    @property
    def can_recover(self) -> bool:
        """True for a broken robot with a scheduled recovery."""
        return self.down and self._recovery is not None

    def take_orphaned_tasks(self) -> typing.List[RepairTask]:
        """Strip and return all work in this robot's hands (on a fault)."""
        orphaned: typing.List[RepairTask] = []
        if self._current_task is not None:
            orphaned.append(self._current_task)
            self._current_task = None
        orphaned.extend(self._queue)
        self._queue.clear()
        return orphaned

    def mark_down(self, permanent: bool) -> None:
        """Break down: off the air, frozen in place, queue abandoned."""
        if self.down or not self.alive:
            return
        self.down = True
        self.alive = False
        self._recovery = None if permanent else self.sim.event()
        self.channel.unregister(self.node_id)
        # Wake the maintenance loop so it parks on the recovery event
        # (or terminates, for a permanent crash).
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def mark_up(self) -> None:
        """Recover from a breakdown: back on the air where it stopped."""
        if not self.down:
            return
        self.down = False
        self.alive = True
        if not self.channel.has_node(self.node_id):
            self.channel.register(self)
        recovery = self._recovery
        self._recovery = None
        if recovery is not None and not recovery.triggered:
            recovery.succeed()

    def promote_to_manager(self) -> None:
        """Become the acting central manager after manager failure.

        Seeds the fresh dispatch desk from the resilience service's
        heartbeat evidence (last reported positions of live peers) and
        floods a manager announcement so sensors re-point their reports
        and peers re-register — the same network-wide flood the real
        manager used during initialization.
        """
        if self.acting_manager or not self.alive:
            return
        from repro.core.dispatch import DispatchDesk

        self.acting_manager = True
        self.desk = DispatchDesk(self)
        service = self.runtime.resilience
        if service is not None:
            for robot_id in sorted(service.last_position):
                if robot_id == self.node_id:
                    continue
                if robot_id in service.declared_dead:
                    continue
                self.desk.register_robot(
                    robot_id, service.last_position[robot_id]
                )
        self.desk.register_robot(self.node_id, self.position)
        self.manager_id = self.node_id
        self.manager_position = self.position
        self.send_broadcast(
            Category.LOCATION_UPDATE,
            FloodMessage(
                origin_id=self.node_id,
                position=self.position,
                kind="manager",
                seq=self.next_flood_seq(),
            ),
        )

    def demote_from_manager(self) -> None:
        """Stop acting as manager (a manager announcement superseded us)."""
        self.acting_manager = False

    def _handle_heartbeat(self, heartbeat: Heartbeat) -> None:
        service = self.runtime.resilience
        if service is None:
            return
        service.note_heartbeat(self, heartbeat)
        if self.acting_manager and self.desk is not None:
            self.desk.register_robot(heartbeat.robot_id, heartbeat.position)
            self.send_routed(
                heartbeat.robot_id,
                heartbeat.position,
                Category.HEARTBEAT,
                HeartbeatAck(
                    manager_id=self.node_id,
                    robot_id=heartbeat.robot_id,
                    sent_time=self.sim.now,
                ),
            )

    def on_broadcast_received(
        self, packet: Packet, sender_id: NodeId, sender_position: Point
    ) -> None:
        if not self.runtime.config.resilience_enabled:
            return  # Baseline robots ignore broadcasts entirely.
        payload = packet.payload
        if not isinstance(payload, FloodMessage) or payload.kind != "manager":
            return
        if payload.origin_id == self.node_id:
            return
        last = self._mgr_flood_seen.get(payload.origin_id, -1)
        if payload.seq <= last:
            return
        self._mgr_flood_seen[payload.origin_id] = payload.seq
        # A (new) manager announced itself: re-point, re-register, and
        # stand down if this robot was acting as manager.
        self.manager_id = payload.origin_id
        self.manager_position = payload.position
        if self.acting_manager:
            self.demote_from_manager()
        self.send_routed(
            payload.origin_id,
            payload.position,
            Category.INITIALIZATION,
            NodeAnnouncement(
                node_id=self.node_id,
                position=self.position,
                kind=self.kind,
            ),
        )

    # ------------------------------------------------------------------
    # Maintenance loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the maintenance process (idempotent)."""
        if self._loop_started:
            return
        self._loop_started = True
        self.sim.process(
            self._maintenance_loop(), name=f"robot:{self.node_id}"
        )

    def _maintenance_loop(self) -> typing.Generator:
        while True:
            if self.down:
                if self._recovery is None:
                    return  # Permanent crash: the robot is gone.
                yield self._recovery
                continue
            while not self._queue:
                self._wakeup = self.sim.event()
                if self.home is not None and self.return_after is not None:
                    timer = self.sim.timeout(self.return_after)
                    yield self.sim.any_of([self._wakeup, timer])
                    if self.down:
                        self._wakeup = None
                        break
                    if not self._wakeup.triggered:
                        # Idle grace expired: head home, abandoning the
                        # trip the moment new work arrives.
                        self._wakeup = None
                        yield from self._drive_to(
                            self.home, abort_on_work=True
                        )
                        if self.down:
                            break
                        continue
                else:
                    yield self._wakeup
                self._wakeup = None
                if self.down:
                    break
            if self.down:
                continue
            task = self._queue.popleft()
            self._current_task = task
            coop = self.runtime.coop
            if coop is not None:
                coop.note_backlog(self)
            if self._skip_repaired(task):
                continue
            leg_distance = yield from self._travel_to(task.position)
            if self.down or self._current_task is not task:
                continue  # Broke down (or lost the job) on the way.
            if self.service_time > 0:
                yield self.sim.timeout(self.service_time)
                if self.down or self._current_task is not task:
                    continue
            if self._skip_repaired(task):
                continue
            if self._verify_on_site(task, leg_distance):
                continue
            self.runtime.complete_replacement(self, task, leg_distance)
            self._current_task = None
            self._report_completion(task)
            if self.capacity is not None:
                self.spares = (self.spares or 0) - 1
                if self.spares <= 0 and self.depot is not None:
                    yield from self._drive_to(self.depot)
                    if self.down:
                        continue
                    if self.reload_time > 0:
                        yield self.sim.timeout(self.reload_time)
                        if self.down:
                            continue
                    self.spares = self.capacity

    def _skip_repaired(self, task: RepairTask) -> bool:
        """Drop a job a peer already finished (re-dispatch races only)."""
        if not self.runtime.config.resilience_enabled:
            return False
        if not self.runtime.already_repaired(task.failed_id):
            return False
        if self._current_task is task:
            self._current_task = None
        return True

    def _verify_on_site(self, task: RepairTask, leg_distance: float) -> bool:
        """Confirmed-on-site check: is the 'failed' sensor actually dead?

        Standing at the failure site, the robot probes the sensor at
        point-blank range before swapping it out (a short administrative
        exchange — jamming cannot defeat it because the robot can read
        the node's status LED, so no channel traffic is modelled).  A
        live sensor aborts the replacement; the trip is charged to the
        ``false_dispatch`` metric family.  Returns True when aborted.
        """
        if not self.runtime.config.verify_failures:
            return False
        if not self.runtime.sensor_is_alive(task.failed_id):
            return False
        self._current_task = None
        self.runtime.abort_replacement(self, task, leg_distance)
        # Forget the case so a later, genuine failure of the same node
        # is accepted afresh (the abort was not a repair).
        self._handled.discard(task.failed_id)
        self._report_completion(task, verified_alive=True)
        return True

    def _travel_to(self, target: Point) -> typing.Generator:
        """Drive to *target*, detouring around active jam disks.

        With jam-aware dispatch off (no planner) this is exactly
        :meth:`_drive_to`.  With it on, the route is planned once at
        departure against the live fault field and driven leg by leg;
        the returned distance is the **summed multi-leg path length**,
        so a trip later aborted on site charges the actual detour
        metres to ``wasted_travel_m``, not the straight-line distance.
        """
        planner = self.runtime.jam_planner
        if planner is None:
            travelled = yield from self._drive_to(target)
            return travelled
        route = planner.plan(self.position, target)
        if len(route) <= 1:
            travelled = yield from self._drive_to(target)
            return travelled
        straight = self.position.distance_to(target)
        planned = self.position.distance_to(route[0]) + sum(
            route[i].distance_to(route[i + 1])
            for i in range(len(route) - 1)
        )
        detour = max(0.0, planned - straight)
        self.runtime.metrics.record_reroute(self.node_id, detour)
        if self.tracer.active:
            self.tracer.emit(
                "reroute",
                time=self.sim.now,
                robot=self.node_id,
                waypoints=len(route) - 1,
                detour_m=round(detour, 3),
            )
        travelled = 0.0
        for waypoint in route:
            leg = yield from self._drive_to(waypoint)
            travelled += leg
            if self.down:
                break
        return travelled

    def _drive_to(
        self, target: Point, abort_on_work: bool = False
    ) -> typing.Generator:
        """Drive in a straight line to *target* at constant speed.

        Motion is integrated in segments that end exactly at each
        location-update threshold crossing, so updates fire at the same
        positions a continuous model would produce.  Returns the distance
        travelled.  With ``abort_on_work`` the drive stops at the next
        segment boundary once repair work is queued (used by the
        return-to-post extension).  A breakdown freezes the robot at the
        last completed segment boundary (positions stay quantised to
        update-threshold segments, so traces remain reproducible).
        """
        travelled = 0.0
        while not self.position.is_close(target, 1e-9):
            if self.down:
                return travelled
            if abort_on_work and self._queue:
                return travelled
            remaining = self.position.distance_to(target)
            to_next_update = self.update_threshold - self._distance_since_update
            step = min(remaining, max(to_next_update, 1e-9))
            yield self.sim.timeout(step / self.speed)
            if self.down:
                return travelled
            self.move_to(self.position.towards(target, step))
            travelled += step
            self._distance_since_update += step
            self.runtime.metrics.record_travel(self.node_id, step)
            if self._distance_since_update >= self.update_threshold - 1e-9:
                self.publish_location()
        # Paper §3.1: after replacing (i.e. on arrival) the robot updates
        # the manager / nearby sensors with its final position.
        if self._distance_since_update > 1e-9:
            self.publish_location()
        return travelled

    def _report_completion(
        self, task: RepairTask, verified_alive: bool = False
    ) -> None:
        """Tell the manager this job finished (or was aborted on-site).

        The paper's baseline dispatch ("closest") needs no feedback, so
        no message is sent there — keeping baseline transmission counts
        untouched.  The load-aware policies need it for queue tracking,
        and resilience mode needs it to settle completion deadlines.
        """
        config = self.runtime.config
        if self.acting_manager and self.desk is not None:
            # Acting manager completing its own job: settle locally.
            self.desk.handle_completion(
                CompletionNotice(
                    robot_id=self.node_id,
                    failed_id=task.failed_id,
                    completion_time=self.sim.now,
                    verified_alive=verified_alive,
                )
            )
            return
        if (
            config.dispatch_policy == DispatchPolicy.CLOSEST
            and not config.resilience_enabled
            and not config.coop_repair
        ):
            # Baseline closest-robot dispatch needs no feedback; coop
            # repair does (the desk's load view picks helpers).
            return
        if self.manager_id is None or self.manager_position is None:
            return
        if not self.runtime.coordination.uses_central_manager:
            return  # Distributed: this robot was its own dispatcher.
        self.send_routed(
            self.manager_id,
            self.manager_position,
            Category.COMPLETION,
            CompletionNotice(
                robot_id=self.node_id,
                failed_id=task.failed_id,
                completion_time=self.sim.now,
                verified_alive=verified_alive,
            ),
        )

    # ------------------------------------------------------------------
    # Location updates
    # ------------------------------------------------------------------
    def publish_location(self) -> None:
        """Announce the current position per the active algorithm."""
        self._distance_since_update = 0.0
        self._flood_seq += 1
        self.runtime.coordination.publish_robot_location(
            self, self._flood_seq
        )

    @property
    def flood_seq(self) -> int:
        """Monotone sequence number for this robot's announcements."""
        return self._flood_seq

    def next_flood_seq(self) -> int:
        """Advance and return the announcement sequence number."""
        self._flood_seq += 1
        return self._flood_seq
