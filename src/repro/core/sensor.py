"""Sensor node behaviour: guardians, beacons, failure reporting, floods.

Sensors are static.  Each sensor:

* keeps a neighbour table fresh through beacons (full-beacon mode);
* *guards* the neighbours that chose it (reporting their failures) and
  is in turn guarded by its own nearest neighbour (paper §3.1);
* tracks robot positions learned from location-update floods, relaying
  each flood at most once per sequence number, with the relay scope
  decided by the active coordination strategy (§3.2, §3.3);
* reports detected failures to its manager — the central manager, its
  subarea robot, or the closest robot, depending on the algorithm.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.knowledge import RobotKnowledge
from repro.core.messages import (
    Confidence,
    FailureNotice,
    FloodMessage,
    GuardianConfirm,
    ProbeReply,
    ProbeRequest,
    SuspicionQuery,
    SuspicionVote,
)
from repro.geometry.point import Point
from repro.net.frames import Category, NodeAnnouncement, NodeId, Packet
from repro.net.node import NetworkNode

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import ScenarioRuntime

__all__ = ["SensorNode"]


@dataclasses.dataclass(slots=True)
class _Suspicion:
    """A guardian's open case against a silent guardee (verification
    mode): where the suspect was, when the case opened, and the
    corroborate/deny votes collected so far."""

    position: Point
    start_time: float
    #: voter id -> (corroborate?, voter's freshest beacon time).
    votes: typing.Dict[NodeId, typing.Tuple[bool, float]] = (
        dataclasses.field(default_factory=dict)
    )


class SensorNode(NetworkNode):
    """A static sensor participating in failure detection and reporting."""

    kind = "sensor"

    def __init__(self, *args: typing.Any, **kwargs: typing.Any) -> None:
        runtime: "ScenarioRuntime" = kwargs.pop("runtime")
        super().__init__(*args, **kwargs)
        self.runtime = runtime

        #: This sensor's guardian (the neighbour that watches over it).
        self.guardian_id: typing.Optional[NodeId] = None
        #: Sensors that chose this node as their guardian.
        self.guardees: typing.Set[NodeId] = set()
        #: Last known positions of guardees (needed to report failures).
        self.guardee_positions: typing.Dict[NodeId, Point] = {}

        #: The robot this sensor reports failures to ("myrobot", §3.2/3.3).
        self.myrobot_id: typing.Optional[NodeId] = None
        self.myrobot_position: typing.Optional[Point] = None
        #: Central manager contact (centralized algorithm only).
        self.manager_id: typing.Optional[NodeId] = None
        self.manager_position: typing.Optional[Point] = None

        #: Robot positions learned from floods: id -> (position, seq),
        #: held in a flat-array table so the closest-robot query (the
        #: dynamic algorithm's relay predicate) runs kernel-style.
        self.known_robots = RobotKnowledge()
        #: Fixed-algorithm subarea index of this sensor (None otherwise).
        self.subarea: typing.Optional[int] = None

        #: Highest flood sequence number relayed, per origin.
        self._flood_seen: typing.Dict[NodeId, int] = {}
        #: Last time a beacon (or announcement) was heard, per neighbour.
        self._last_beacon: typing.Dict[NodeId, float] = {}
        #: Failures this sensor has already reported (suppress repeats).
        self._reported: typing.Set[NodeId] = set()
        #: Reports awaiting repair evidence (resilience mode only):
        #: failed_id -> (position, attempt, detect_time, confidence).
        self._pending_reports: typing.Dict[
            NodeId, typing.Tuple[Point, int, float, str]
        ] = {}
        #: Open suspicion cases (verification mode only).
        self._suspicions: typing.Dict[NodeId, _Suspicion] = {}

    # ------------------------------------------------------------------
    # Receive hooks
    # ------------------------------------------------------------------
    def on_broadcast_received(
        self, packet: Packet, sender_id: NodeId, sender_position: Point
    ) -> None:
        payload = packet.payload
        if isinstance(payload, NodeAnnouncement):
            self._last_beacon[payload.node_id] = self.sim.now
            if payload.node_id in self.guardees:
                self.guardee_positions[payload.node_id] = payload.position
            elif (
                self.runtime.config.verify_failures
                and payload.node_id in self._reported
            ):
                # A sensor this guardian declared dead is beaconing
                # again (e.g. its jamming region cleared): rehabilitate.
                self.note_alive(payload.node_id, payload.position)
        elif isinstance(payload, FloodMessage):
            self._handle_flood(packet, payload)
        elif isinstance(payload, SuspicionQuery):
            self._handle_suspicion_query(payload)

    def on_packet_delivered(self, packet: Packet) -> None:
        payload = packet.payload
        if isinstance(payload, GuardianConfirm):
            self.accept_guardee(payload.guardee_id, payload.guardee_position)
        elif isinstance(payload, SuspicionVote):
            suspicion = self._suspicions.get(payload.suspect_id)
            if suspicion is not None:
                suspicion.votes[payload.voter_id] = (
                    payload.corroborate,
                    payload.last_heard,
                )
        elif isinstance(payload, ProbeRequest):
            # Proof of life: answer the prober directly.
            self.send_routed(
                payload.prober_id,
                payload.prober_position,
                Category.VERIFICATION,
                ProbeReply(
                    target_id=self.node_id,
                    target_position=self.position,
                    prober_id=payload.prober_id,
                    sent_time=self.sim.now,
                ),
            )

    # ------------------------------------------------------------------
    # Guardian / guardee protocol
    # ------------------------------------------------------------------
    def accept_guardee(self, guardee_id: NodeId, position: Point) -> None:
        """Become guardian for *guardee_id* (via confirm or bootstrap)."""
        self.guardees.add(guardee_id)
        self.guardee_positions[guardee_id] = position
        self._last_beacon[guardee_id] = self.sim.now
        self.runtime.note_guardian(guardee_id, self.node_id)

    def release_guardee(self, guardee_id: NodeId) -> None:
        """Stop guarding *guardee_id* (it failed or re-selected)."""
        self.guardees.discard(guardee_id)
        self.guardee_positions.pop(guardee_id, None)

    def select_guardian(
        self,
        exclude: typing.Container[NodeId] = (),
        send_confirm: bool = True,
    ) -> typing.Optional[NodeId]:
        """Pick the nearest eligible sensor neighbour as guardian.

        The strategy may restrict candidates (the fixed algorithm keeps
        guardian pairs within one subarea, §3.2).  Returns the chosen
        guardian id, or None when no neighbour qualifies (the runtime's
        detection fallback still covers such orphans).
        """
        candidates = [
            entry
            for entry in self.neighbor_table.of_kind("sensor")
            if entry.node_id not in exclude
            and self.runtime.coordination.guardian_allowed(self, entry)
        ]
        best = None
        best_d2 = float("inf")
        for entry in candidates:
            d2 = self.position.squared_distance_to(entry.position)
            if d2 < best_d2:
                best = entry
                best_d2 = d2
        if best is None:
            self.guardian_id = None
            self.runtime.note_guardian(self.node_id, None)
            return None
        self.guardian_id = best.node_id
        self._last_beacon.setdefault(best.node_id, self.sim.now)
        self.runtime.note_guardian(self.node_id, best.node_id)
        if send_confirm:
            self.send_routed(
                best.node_id,
                best.position,
                Category.GUARDIAN_CONTROL,
                GuardianConfirm(
                    guardee_id=self.node_id,
                    guardee_position=self.position,
                    reselection=bool(exclude),
                ),
            )
        return best.node_id

    # ------------------------------------------------------------------
    # Failure detection & reporting
    # ------------------------------------------------------------------
    def detect_and_report(
        self, failed_id: NodeId, failed_position: Point
    ) -> None:
        """Declare *failed_id* dead and report it to the manager.

        Called by the beacon watcher (full-beacon mode) or scheduled by
        the runtime (event mode).  With verification enabled, silence
        only opens a *suspicion* case; the declaration waits for the
        corroboration round to resolve.
        """
        if not self.alive or failed_id in self._reported:
            return
        if self.runtime.config.verify_failures:
            self._begin_suspicion(failed_id, failed_position)
            return
        self._declare_failure(
            failed_id, failed_position, Confidence.CONFIRMED
        )

    def _declare_failure(
        self, failed_id: NodeId, failed_position: Point, confidence: str
    ) -> None:
        if not self.alive or failed_id in self._reported:
            return
        self._reported.add(failed_id)
        self.release_guardee(failed_id)
        self.neighbor_table.remove(failed_id)
        self.runtime.metrics.record_detection(
            failed_id, self.node_id, self.sim.now
        )
        self._send_report(
            failed_id, failed_position, self.sim.now, confidence=confidence
        )

    def _send_report(
        self,
        failed_id: NodeId,
        failed_position: Point,
        detect_time: float,
        attempt: int = 0,
        confidence: str = Confidence.CONFIRMED,
    ) -> None:
        notice = FailureNotice(
            failed_id=failed_id,
            failed_position=failed_position,
            guardian_id=self.node_id,
            detect_time=detect_time,
            confidence=confidence,
        )
        target = self.runtime.coordination.report_target(self)
        if target is not None:
            target_id, target_position = target
            self.send_routed(
                target_id,
                target_position,
                Category.FAILURE_REPORT,
                notice,
            )
        elif not self.runtime.config.resilience_enabled:
            return  # No manager known — detection recorded, report lost.
        # Resilience mode: watch for repair evidence and re-send to the
        # then-current manager if none appears (covers a lost report, a
        # dead dispatcher, or a dead maintainer).  A missing target now
        # may well resolve by the retry (e.g. a takeover flood arrives).
        if self.runtime.config.resilience_enabled:
            self._pending_reports[failed_id] = (
                failed_position, attempt, detect_time, confidence
            )
            self._watch_report(failed_id, attempt)

    def _watch_report(self, failed_id: NodeId, attempt: int) -> None:
        config = self.runtime.config
        delay = config.effective_repair_deadline_s + (
            config.redispatch_backoff_s * (2.0 ** attempt)
        )
        self.sim.call_in(
            delay, lambda: self._check_report(failed_id, attempt)
        )

    def _check_report(self, failed_id: NodeId, attempt: int) -> None:
        pending = self._pending_reports.get(failed_id)
        if pending is None or pending[1] != attempt:
            return  # Settled or superseded.
        if not self.alive:
            return
        if self.runtime.already_repaired(failed_id):
            self._pending_reports.pop(failed_id, None)
            return
        if attempt >= self.runtime.config.redispatch_limit:
            # Budget spent: stop retrying; the runtime reconciler takes
            # over (and ultimately declares the failure orphaned).
            self._pending_reports.pop(failed_id, None)
            return
        position, _attempt, detect_time, confidence = pending
        self._send_report(
            failed_id,
            position,
            detect_time,
            attempt=attempt + 1,
            confidence=confidence,
        )

    def file_report(
        self, failed_id: NodeId, failed_position: Point
    ) -> None:
        """Report a failure on the reconciler's behalf (escalation).

        Used when every earlier custodian of the failure is gone; this
        sensor adopts the report as if it had detected the failure
        itself.
        """
        if not self.alive:
            return
        self._reported.add(failed_id)
        self.runtime.metrics.record_detection(
            failed_id, self.node_id, self.sim.now
        )
        self._send_report(failed_id, failed_position, self.sim.now)

    def has_pending_report(self, failed_id: NodeId) -> bool:
        """Is this sensor still watching a report for *failed_id*?"""
        return failed_id in self._pending_reports

    # ------------------------------------------------------------------
    # Failure verification (suspicion / corroboration)
    # ------------------------------------------------------------------
    def _begin_suspicion(
        self, failed_id: NodeId, failed_position: Point
    ) -> None:
        """Open a suspicion case: ask the neighbourhood (including the
        suspect itself) whether *failed_id* is really gone."""
        if failed_id in self._suspicions:
            return
        now = self.sim.now
        self._suspicions[failed_id] = _Suspicion(
            position=failed_position, start_time=now
        )
        self.runtime.metrics.record_suspicion(
            failed_id, self.node_id, now
        )
        if self.tracer.active:
            self.tracer.emit(
                "suspicion",
                time=now,
                suspect=failed_id,
                guardian=self.node_id,
            )
        self.send_broadcast(
            Category.VERIFICATION,
            SuspicionQuery(
                suspect_id=failed_id,
                suspect_position=failed_position,
                guardian_id=self.node_id,
                guardian_position=self.position,
                sent_time=now,
            ),
        )
        # Adaptive verification scales this window with observed loss;
        # with the controller off it is exactly verification_timeout_s.
        self.sim.call_in(
            self.runtime.suspicion_timeout_s(self),
            lambda: self._resolve_suspicion(failed_id),
        )

    def _handle_suspicion_query(self, query: SuspicionQuery) -> None:
        if query.suspect_id == self.node_id:
            # This node is the suspect — the cheapest refutation is an
            # immediate off-cycle beacon, which clears every watcher.
            self.runtime.request_immediate_beacon(self)
            return
        if query.guardian_id == self.node_id:
            return
        last = self._last_beacon.get(query.suspect_id)
        if last is None:
            return  # Never heard of the suspect: abstain.
        config = self.runtime.config
        timeout_s = (
            config.missed_beacons_for_failure * config.beacon_period_s
        )
        self.send_routed(
            query.guardian_id,
            query.guardian_position,
            Category.VERIFICATION,
            SuspicionVote(
                suspect_id=query.suspect_id,
                voter_id=self.node_id,
                corroborate=(self.sim.now - last) > timeout_s,
                last_heard=last,
            ),
        )

    def _resolve_suspicion(self, failed_id: NodeId) -> None:
        suspicion = self._suspicions.pop(failed_id, None)
        if suspicion is None or not self.alive:
            return
        now = self.sim.now
        latency = now - suspicion.start_time
        # Any sign of life — a first-hand beacon since the case opened
        # (the suspect's self-defence) or a deny vote from a neighbour
        # that still hears it — clears the suspicion.
        last = self._last_beacon.get(failed_id, 0.0)
        deny_times = [
            heard
            for corroborate, heard in suspicion.votes.values()
            if not corroborate
        ]
        if last >= suspicion.start_time or deny_times:
            self.runtime.metrics.record_suspicion_resolved(
                failed_id, now, latency, "cleared"
            )
            if self.tracer.active:
                self.tracer.emit(
                    "suspicion_cleared",
                    time=now,
                    suspect=failed_id,
                    guardian=self.node_id,
                )
            # Credit the suspect with its freshest known sign of life so
            # the watch loop restarts its silence clock from there.
            self._last_beacon[failed_id] = max([last] + deny_times)
            return
        corroborations = 1 + sum(
            1
            for corroborate, _heard in suspicion.votes.values()
            if corroborate
        )
        confidence = (
            Confidence.CORROBORATED
            if corroborations >= self.runtime.verification_quorum_for(self)
            else Confidence.SUSPECTED
        )
        self.runtime.metrics.record_suspicion_resolved(
            failed_id, now, latency, confidence
        )
        self._declare_failure(failed_id, suspicion.position, confidence)

    def stale_neighbor_fraction(self, timeout_s: float) -> float:
        """Fraction of current beacon peers silent for over *timeout_s*.

        The adaptive-verification controller's per-neighbourhood jam
        signal: a guardian that has stopped hearing most of the
        neighbours still in its table is probably inside an interference
        region even when the network-wide loss ratio looks clean.  Only
        nodes still present in the neighbour table count, so long-dead
        (removed) sensors do not inflate the fraction.
        """
        now = self.sim.now
        tracked = [
            heard
            for node_id, heard in self._last_beacon.items()
            if node_id in self.neighbor_table
        ]
        if not tracked:
            return 0.0
        stale = sum(1 for heard in tracked if now - heard > timeout_s)
        return stale / len(tracked)

    def note_alive(self, node_id: NodeId, position: Point) -> None:
        """Undo any declaration about *node_id*: it is provably alive.

        Triggered by a first-hand beacon from a rehabilitated sensor or
        by the runtime after a maintainer's on-site verification.
        """
        if not self.runtime.config.verify_failures:
            return
        self._reported.discard(node_id)
        self._pending_reports.pop(node_id, None)
        self._suspicions.pop(node_id, None)
        self._last_beacon[node_id] = self.sim.now
        self.neighbor_table.upsert(
            node_id, position, "sensor", self.sim.now
        )
        if self.runtime.guardian_of.get(node_id) == self.node_id:
            self.accept_guardee(node_id, position)

    def start_beacon_watch(self) -> None:
        """Run the per-period guardian/guardee liveness checks.

        Only used in full-beacon mode; event mode schedules detections
        directly.
        """
        self.sim.process(
            self._watch_loop(), name=f"watch:{self.node_id}"
        )

    def _watch_loop(self) -> typing.Generator:
        period = self.runtime.config.beacon_period_s
        timeout_s = (
            self.runtime.config.missed_beacons_for_failure * period
        )
        while self.alive:
            yield self.sim.timeout(period)
            if not self.alive:
                return
            now = self.sim.now
            # Guardees: report the silent ones.
            for guardee_id in sorted(self.guardees):
                last = self._last_beacon.get(guardee_id, 0.0)
                if now - last > timeout_s:
                    position = self.guardee_positions.get(guardee_id)
                    if position is not None:
                        self.detect_and_report(guardee_id, position)
            # Guardian: silently re-select when it disappears.
            if self.guardian_id is not None:
                last = self._last_beacon.get(self.guardian_id, 0.0)
                if now - last > timeout_s:
                    old = self.guardian_id
                    self.neighbor_table.remove(old)
                    self.select_guardian(exclude=(old,))
            # Prune stale *sensor* entries so greedy forwarding does not
            # aim at corpses.  Robot entries are refreshed by floods, not
            # beacons, so they are exempt.
            for entry in self.neighbor_table.of_kind("sensor"):
                if now - self._last_beacon.get(entry.node_id, 0.0) > timeout_s:
                    self.neighbor_table.remove(entry.node_id)

    # ------------------------------------------------------------------
    # Location-update floods
    # ------------------------------------------------------------------
    def _handle_flood(self, packet: Packet, flood: FloodMessage) -> None:
        if packet.source == flood.origin_id and flood.subject is None:
            # Heard the robot itself: it is a one-hop neighbour right now.
            # (Subject-bearing floods announce someone *else's* state, so
            # the position must not be attributed to the origin.)
            self.neighbor_table.upsert(
                flood.origin_id, flood.position, flood.kind, self.sim.now
            )
        last_seq = self._flood_seen.get(flood.origin_id, -1)
        if flood.seq <= last_seq:
            return  # Duplicate or superseded: nothing new to learn/relay.
        self._flood_seen[flood.origin_id] = flood.seq
        self._learn_from_flood(flood)
        if self.runtime.coordination.should_relay_flood(self, flood):
            relay = Packet(
                source=self.node_id,
                destination=packet.destination,
                category=packet.category,
                payload=flood,
            )
            self.mac.broadcast_packet(relay)

    def _learn_from_flood(self, flood: FloodMessage) -> None:
        """Fold a flooded announcement into local robot knowledge."""
        if flood.kind == "manager":
            self.manager_id = flood.origin_id
            self.manager_position = flood.position
            return
        if flood.subject is not None:
            # An obituary: a monitor announcing *subject*'s death at its
            # last known position.  Forget the dead robot and let the
            # strategy re-point myrobot (dynamic Voronoi re-partition).
            self.known_robots.pop(flood.subject, None)
            if self.myrobot_id == flood.subject:
                self.myrobot_id = None
                self.myrobot_position = None
            self.runtime.coordination.on_flood_learned(self, flood)
            return
        known = self.known_robots.get(flood.origin_id)
        if known is None or flood.seq >= known[1]:
            self.known_robots[flood.origin_id] = (flood.position, flood.seq)
        # Keep the routing layer's idea of robot positions fresh too.
        entry = self.neighbor_table.get(flood.origin_id)
        if entry is not None:
            self.neighbor_table.upsert(
                flood.origin_id, flood.position, flood.kind, self.sim.now
            )
        self.runtime.coordination.on_flood_learned(self, flood)

    # ------------------------------------------------------------------
    # Robot knowledge queries (used by strategies)
    # ------------------------------------------------------------------
    def closest_known_robot(
        self, exclude: typing.Container[NodeId] = ()
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        """The robot with the smallest known distance to this sensor.

        Delegates to the knowledge table's flat-array scan — the same
        squared-distance float ops and ``(d2, id)`` tie-break as the
        dict loop this method used to run, without the per-robot
        ``Point`` method calls.
        """
        position = self.position
        return self.known_robots.closest(position.x, position.y, exclude)

    def location_hint(
        self, node_id: NodeId
    ) -> typing.Optional[typing.Tuple[Point, int]]:
        """Serve robot positions learned from floods to the router."""
        known = self.known_robots.get(node_id)
        if known is None:
            return None
        return known

    def distance_to_robot(self, robot_id: NodeId) -> float:
        """Distance to a robot's last known position (inf if unknown)."""
        known = self.known_robots.get(robot_id)
        if known is None:
            return float("inf")
        return self.position.distance_to(known[0])
