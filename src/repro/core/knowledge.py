"""Flat-array robot-knowledge table for sensors.

Every sensor tracks the robots it has learned about from floods as
``robot_id -> (position, seq)``.  The dominant query on that table is
:meth:`RobotKnowledge.closest` — the dynamic algorithm's relay
predicate calls it once per received location-update flood, which makes
it the single hottest geometry loop in a dynamic-algorithm run.

:class:`RobotKnowledge` therefore keeps two synchronized views:

* ``_entries`` — the plain dict, serving the dict-shaped API
  (``[]``/``get``/``pop``/``update``/``items``) the strategies and the
  router's location-hint path already use;
* ``_rows`` — prebuilt ``(robot_id, x, y, (robot_id, position))`` rows
  scanned by :meth:`closest`.  Iterating existing row tuples beats
  zipping parallel coordinate arrays in CPython (list iteration yields
  the tuples with no per-element allocation), and the trailing pair is
  the query's *result* tuple, built once per update instead of once per
  query — the same layout :class:`~repro.net.spatial.SpatialGrid` uses
  for its cell buckets.

Mutations keep the rows in step incrementally (append on first sight,
in-place overwrite on update, swap-remove on obituary), so the table
never rebuilds.  Row order is *not* insertion order after a removal,
which is safe because :meth:`closest` selects the lexicographic minimum
of ``(d2, robot_id)`` — the same scan-order-independent result as the
scalar dict loop it replaces, float op for float op (``dx = px - x;
dy = py - y; dx*dx + dy*dy``, strict ``<`` update with an id
tie-break).
"""

from __future__ import annotations

import typing

from repro.geometry.point import Point
from repro.net.frames import NodeId

__all__ = ["RobotKnowledge"]

#: One table entry: last known position and flood sequence number.
Entry = typing.Tuple[Point, int]

#: One scan row: ``(robot_id, x, y, (robot_id, position))`` — flattened
#: coordinates for the inner loop plus the prebuilt result pair.
_Row = typing.Tuple[NodeId, float, float, typing.Tuple[NodeId, Point]]


class RobotKnowledge:
    """``robot_id -> (position, seq)`` with a flat-array nearest query."""

    __slots__ = ("_entries", "_slots", "_rows")

    def __init__(self) -> None:
        self._entries: typing.Dict[NodeId, Entry] = {}
        #: robot_id -> index into ``_rows``.
        self._slots: typing.Dict[NodeId, int] = {}
        self._rows: typing.List[_Row] = []

    # ------------------------------------------------------------------
    # Dict-shaped mutation / lookup API
    # ------------------------------------------------------------------
    def __setitem__(self, robot_id: NodeId, entry: Entry) -> None:
        self._entries[robot_id] = entry
        position = entry[0]
        row = (robot_id, position.x, position.y, (robot_id, position))
        slot = self._slots.get(robot_id)
        if slot is None:
            self._slots[robot_id] = len(self._rows)
            self._rows.append(row)
        else:
            self._rows[slot] = row

    def __getitem__(self, robot_id: NodeId) -> Entry:
        return self._entries[robot_id]

    def get(
        self, robot_id: NodeId, default: typing.Optional[Entry] = None
    ) -> typing.Optional[Entry]:
        return self._entries.get(robot_id, default)

    def pop(
        self, robot_id: NodeId, default: typing.Optional[Entry] = None
    ) -> typing.Optional[Entry]:
        """Remove *robot_id* (swap-remove in the row list)."""
        entry = self._entries.pop(robot_id, None)
        if entry is None:
            return default
        slot = self._slots.pop(robot_id)
        rows = self._rows
        last = len(rows) - 1
        if slot != last:
            moved = rows[last]
            rows[slot] = moved
            self._slots[moved[0]] = slot
        del rows[last]
        return entry

    def update(
        self,
        other: typing.Union[
            "RobotKnowledge", typing.Mapping[NodeId, Entry]
        ],
    ) -> None:
        for robot_id, entry in other.items():
            self[robot_id] = entry

    # ------------------------------------------------------------------
    # Dict-shaped inspection API
    # ------------------------------------------------------------------
    def items(self) -> typing.ItemsView[NodeId, Entry]:
        return self._entries.items()

    def keys(self) -> typing.KeysView[NodeId]:
        return self._entries.keys()

    def __contains__(self, robot_id: object) -> bool:
        return robot_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> typing.Iterator[NodeId]:
        return iter(self._entries)

    def __repr__(self) -> str:
        return f"RobotKnowledge({self._entries!r})"

    # ------------------------------------------------------------------
    # The hot query
    # ------------------------------------------------------------------
    def closest(
        self,
        px: float,
        py: float,
        exclude: typing.Container[NodeId] = (),
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        """The known robot nearest to ``(px, py)``, ids breaking ties.

        Scalar reference: the original ``closest_known_robot`` dict
        loop — squared distances via ``dx*dx + dy*dy``, strict ``<``
        update, and on exact distance ties the smaller robot id wins.
        That selection is a lexicographic minimum over ``(d2, id)``, so
        the rows' swap-remove ordering cannot change the result.  The
        returned pair is the row's prebuilt tuple, so the query
        allocates nothing; the no-exclusions path (every call on the
        relay hot path) skips the membership test entirely.
        """
        best_id: typing.Optional[NodeId] = None
        best_pair: typing.Optional[typing.Tuple[NodeId, Point]] = None
        best_d2 = float("inf")
        if exclude:
            for robot_id, x, y, pair in self._rows:
                if robot_id in exclude:
                    continue
                dx = px - x
                dy = py - y
                d2 = dx * dx + dy * dy
                if d2 < best_d2 or (
                    d2 == best_d2
                    and best_id is not None
                    and robot_id < best_id
                ):
                    best_id = robot_id
                    best_pair = pair
                    best_d2 = d2
        else:
            for robot_id, x, y, pair in self._rows:
                dx = px - x
                dy = py - y
                d2 = dx * dx + dy * dy
                if d2 < best_d2 or (
                    d2 == best_d2
                    and best_id is not None
                    and robot_id < best_id
                ):
                    best_id = robot_id
                    best_pair = pair
                    best_d2 = d2
        return best_pair
