"""Scenario runtime: builds a deployment and drives it end to end.

:class:`ScenarioRuntime` turns a :class:`~repro.deploy.ScenarioConfig`
into a live simulation: it places sensors and robots, wires the
coordination strategy, runs the initialization protocol (paper §2 stage
a), schedules failures, and performs replacements when robots arrive.
It is the only place where "administrative" actions happen — state seeded
directly instead of via messages — and every such action mirrors a
deployment-time or excluded-from-measurement protocol step, as documented
inline.

Typical use::

    from repro.core import ScenarioRuntime
    from repro.deploy import paper_scenario, Algorithm

    runtime = ScenarioRuntime(paper_scenario(Algorithm.DYNAMIC, 9, seed=1))
    report = runtime.run()
    print("\\n".join(report.summary_lines()))
"""

from __future__ import annotations

import typing

from repro.core.coordination import CoordinationStrategy, strategy_for
from repro.core.manager import CentralManagerNode
from repro.core.messages import FloodMessage
from repro.core.robot import RepairTask, RobotNode
from repro.core.sensor import SensorNode
from repro.core.traffic import DataTrafficService
from repro.deploy.failure import ExponentialLifetime, FailureProcess
from repro.deploy.placement_cache import sensor_positions_for
from repro.deploy.scenario import (
    DetectionMode,
    ScenarioConfig,
)
from repro.faults.adaptive import (
    AdaptiveVerification,
    CoopRepairService,
    JamAwarePlanner,
)
from repro.faults.injector import FaultInjector
from repro.faults.network import NetworkFaultService
from repro.faults.recovery import ResilienceService
from repro.faults.script import FaultKind
from repro.geometry.kernels import distances_to_point
from repro.geometry.point import Point
from repro.metrics.collector import MetricsCollector, RunReport
from repro.net.beacon import BeaconService
from repro.net.channel import Channel
from repro.net.frames import (
    Category,
    NodeAnnouncement,
    NodeId,
    reset_id_counters,
)
from repro.net.node import NetworkNode
from repro.net.radio import robot_radio, sensor_radio
from repro.routing.stats import RoutingStats
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

__all__ = ["ScenarioRuntime", "run_scenario"]


class ScenarioRuntime:
    """One fully wired simulated deployment."""

    def __init__(
        self,
        config: ScenarioConfig,
        tracer: typing.Optional[Tracer] = None,
    ) -> None:
        self.config = config
        reset_id_counters()  # fresh packet/frame ids => replayable traces
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.tracer = tracer or Tracer()
        self.channel = Channel(self.sim, self.streams, self.tracer)
        self.routing_stats = RoutingStats()
        self.metrics = MetricsCollector()

        #: Live sensors by id (dead sensors are removed).
        self.sensors: typing.Dict[NodeId, SensorNode] = {}
        #: Maintenance robots by id.
        self.robots: typing.Dict[NodeId, RobotNode] = {}
        #: The central manager (centralized algorithm only).
        self.manager: typing.Optional[CentralManagerNode] = None
        #: Mirror of guardianship: guardee id -> guardian id (or None).
        self.guardian_of: typing.Dict[NodeId, typing.Optional[NodeId]] = {}

        self.failure_process = FailureProcess(
            self.sim,
            ExponentialLifetime(config.mean_lifetime_s),
            self.streams.stream("lifetime"),
            horizon=config.sim_time_s,
        )
        self.failure_process.death_hooks.append(self._on_sensor_death)

        self._detection_rng = self.streams.stream("detection")
        #: Background sensing traffic (paper's motivating workload);
        #: active only when the config sets a traffic period.
        self.traffic: typing.Optional[DataTrafficService] = (
            DataTrafficService(self, config.data_traffic_period_s)
            if config.data_traffic_period_s is not None
            else None
        )
        self._beacon_services: typing.Dict[NodeId, BeaconService] = {}
        self._replacement_counter = 0
        self._relay_set: typing.Optional[typing.Set[NodeId]] = None
        self._initialized = False
        #: Failure ids whose replacement has been completed.
        self._repaired_ids: typing.Set[NodeId] = set()

        # Strategy construction may consult config-derived geometry only;
        # node-dependent setup happens in initialize().
        self.coordination: CoordinationStrategy = strategy_for(self)
        self._build_nodes()

        # Fault injection and self-healing (off by default; both are
        # inert no-ops unless the config turns them on).
        self.resilience: typing.Optional[ResilienceService] = (
            ResilienceService(self) if config.resilience_enabled else None
        )
        self.faults: typing.Optional[FaultInjector] = (
            FaultInjector(self) if config.faults_enabled else None
        )
        #: Spatial network faults (jamming/partition regions); when
        #: None the channel's fault hook stays unset and the transmit
        #: path is bit-identical to the pre-fault-model channel.
        self.network_faults: typing.Optional[NetworkFaultService] = (
            NetworkFaultService(self)
            if config.network_faults_enabled
            else None
        )
        # Degraded-mode adaptation (extension): each controller exists
        # only when its flag is on, so with all three off no adaptive
        # code runs and every trace stays bit-identical to baseline.
        self.adaptive: typing.Optional[AdaptiveVerification] = (
            AdaptiveVerification(self) if config.adaptive_verify else None
        )
        self.coop: typing.Optional[CoopRepairService] = (
            CoopRepairService(self) if config.coop_repair else None
        )
        self.jam_planner: typing.Optional[JamAwarePlanner] = (
            JamAwarePlanner(self) if config.jam_aware else None
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_nodes(self) -> None:
        config = self.config
        # Sensor placement comes from the per-process placement cache:
        # configs sharing the placement-relevant subset (style, count,
        # seed, field size, radio range) reuse one computed layout.
        # The cache derives a fresh "placement" stream from the seed,
        # which reproduces the draw sequence this method used to make
        # bit-identically — the stream is dedicated to placement, so
        # not advancing it here perturbs no other subsystem.
        sensor_positions = sensor_positions_for(
            config, sensor_radio().range_m
        )

        for index, position in enumerate(sensor_positions):
            self._create_sensor(f"sensor-{index:04d}", position)

        robot_rng = self.streams.stream("robot_placement")
        for index, position in enumerate(
            self.coordination.robot_positions(robot_rng)
        ):
            robot = RobotNode(
                f"robot-{index:02d}",
                position,
                robot_radio(config.loss_rate),
                self.sim,
                self.channel,
                self.streams,
                routing_stats=self.routing_stats,
                tracer=self.tracer,
                runtime=self,
            )
            robot.router.shortcut_slack_m = config.update_threshold_m
            if config.robot_capacity is not None:
                robot.depot = config.bounds.center
            self.robots[robot.node_id] = robot

        if self.coordination.uses_central_manager:
            self.manager = CentralManagerNode(
                "manager-00",
                config.bounds.center,
                robot_radio(config.loss_rate),
                self.sim,
                self.channel,
                self.streams,
                routing_stats=self.routing_stats,
                tracer=self.tracer,
                runtime=self,
            )
            self.manager.router.shortcut_slack_m = config.update_threshold_m

        # Administrative neighbour-table seed: stands in for the paper's
        # initialization location broadcasts ("all the sensors broadcast
        # their locations to their one-hop neighbors"), whose messages
        # are still emitted in initialize() for accounting.
        for node in self.channel.nodes():
            self._seed_node_neighbors(node, bidirectional=False)

    def _create_sensor(self, node_id: NodeId, position: Point) -> SensorNode:
        sensor = SensorNode(
            node_id,
            position,
            sensor_radio(self.config.loss_rate),
            self.sim,
            self.channel,
            self.streams,
            routing_stats=self.routing_stats,
            tracer=self.tracer,
            runtime=self,
        )
        sensor.router.shortcut_slack_m = self.config.update_threshold_m
        self.sensors[node_id] = sensor
        return sensor

    def _seed_node_neighbors(
        self, node: NetworkNode, bidirectional: bool
    ) -> None:
        """Fill neighbour tables by radio reachability.

        A node ``u`` appears in ``v``'s table iff ``v`` can hear ``u``,
        i.e. the distance is within *u's* (the sender's) range.
        """
        now = self.sim.now
        probe_range = max(node.radio.range_m, robot_radio().range_m)
        others = self.channel.nodes_within(
            node.position, probe_range, exclude=node.node_id
        )
        # One flat-array kernel pass computes every candidate distance
        # (same math.hypot as Point.distance_to, so the reachability
        # cutoffs below see bit-identical values).
        distances = distances_to_point(
            [other.position.x for other in others],
            [other.position.y for other in others],
            node.position.x,
            node.position.y,
        )
        for other, distance in zip(others, distances):
            if distance <= other.radio.range_m:
                node.neighbor_table.upsert(
                    other.node_id, other.position, other.kind, now
                )
            if bidirectional and distance <= node.radio.range_m:
                other.neighbor_table.upsert(
                    node.node_id, node.position, node.kind, now
                )

    # ------------------------------------------------------------------
    # Initialization (paper §2 stage a)
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Run the three initialization steps and start all processes."""
        if self._initialized:
            return
        self._initialized = True

        # Step: sensors broadcast their locations for neighbour discovery
        # and guardian establishment (messages counted; state was seeded).
        for sensor in self.sensors_sorted():
            sensor.send_broadcast(
                Category.INITIALIZATION,
                NodeAnnouncement(
                    node_id=sensor.node_id,
                    position=sensor.position,
                    kind=sensor.kind,
                ),
            )

        # Step: algorithm-specific role and relationship setup.
        self.coordination.setup()

        # Step: guardian/guardee establishment — every sensor picks its
        # nearest (eligible) neighbour and confirms.
        for sensor in self.sensors_sorted():
            sensor.select_guardian(send_confirm=True)

        # Detection machinery.
        if self.config.detection_mode == DetectionMode.BEACON:
            for sensor in self.sensors_sorted():
                self._start_beaconing(sensor)

        # Robots start waiting for work.
        for robot in self.robots_sorted():
            robot.start()

        # Background sensing traffic, when configured.
        if self.traffic is not None:
            self.traffic.start()

        # Failures begin.
        for sensor in self.sensors_sorted():
            self.failure_process.register(sensor)

        # Self-healing machinery and fault injection, when configured.
        if self.resilience is not None:
            self.resilience.start()
        if self.faults is not None:
            self.faults.start()
        if self.network_faults is not None:
            self.network_faults.start()
        if self.adaptive is not None:
            self.adaptive.start()

    def _start_beaconing(self, sensor: SensorNode) -> None:
        service = BeaconService(
            sensor, self.config.beacon_period_s, started=True
        )
        self._beacon_services[sensor.node_id] = service
        sensor.start_beacon_watch()

    # ------------------------------------------------------------------
    # Death & detection
    # ------------------------------------------------------------------
    def _on_sensor_death(self, node: NetworkNode, time: float) -> None:
        self.metrics.record_death(node.node_id, node.position, time)
        self.sensors.pop(node.node_id, None)
        self._beacon_services.pop(node.node_id, None)
        if self.tracer.active:
            self.tracer.emit(
                "failure", time=time, node=node.node_id,
                position=node.position,
            )
        if self.config.detection_mode == DetectionMode.EVENT:
            low, high = self.config.detection_delay_bounds
            delay = self._detection_rng.uniform(low, high)
            failed_id = node.node_id
            position = node.position
            self.sim.call_in(
                delay, lambda: self._event_detection(failed_id, position)
            )

    def _event_detection(self, failed_id: NodeId, position: Point) -> None:
        """Event-mode stand-in for beacon-timeout detection.

        Performs exactly what the beacon protocol would have converged to
        by this time: neighbours purge the dead node, its guardian
        reports the failure, and its orphaned guardees re-select
        guardians.
        """
        # Neighbours that could hear the dead node drop it from their
        # tables (beacon expiry would have done this by now).
        for node in self.channel.nodes_within(
            position, sensor_radio().range_m
        ):
            node.neighbor_table.remove(failed_id)

        guardian_id = self.guardian_of.get(failed_id)
        guardian = self.sensors.get(guardian_id) if guardian_id else None
        if guardian is not None and guardian.alive:
            guardian.detect_and_report(failed_id, position)
        else:
            # The guardian died too (the paper assumes this is rare but
            # we still handle it): the nearest live sensor notices after
            # one more beacon period.
            fallback = self._nearest_live_sensor(position, exclude=failed_id)
            if fallback is not None:
                self.sim.call_in(
                    self.config.beacon_period_s,
                    lambda: fallback.detect_and_report(failed_id, position),
                )

        # Orphaned guardees re-select (paper: a guardee that stops
        # hearing its guardian picks a new one).
        for guardee_id, gid in list(self.guardian_of.items()):
            if gid != failed_id:
                continue
            guardee = self.sensors.get(guardee_id)
            if guardee is not None and guardee.alive:
                guardee.neighbor_table.remove(failed_id)
                guardee.select_guardian(exclude=(failed_id,))

    def _nearest_live_sensor(
        self, position: Point, exclude: NodeId
    ) -> typing.Optional[SensorNode]:
        best: typing.Optional[SensorNode] = None
        best_d2 = float("inf")
        for node in self.channel.nodes_within(
            position, sensor_radio().range_m, exclude=exclude
        ):
            if not isinstance(node, SensorNode):
                continue
            d2 = position.squared_distance_to(node.position)
            if d2 < best_d2:
                best = node
                best_d2 = d2
        return best

    def note_guardian(
        self, guardee_id: NodeId, guardian_id: typing.Optional[NodeId]
    ) -> None:
        """Record who guards *guardee_id* (called by sensors)."""
        self.guardian_of[guardee_id] = guardian_id

    # ------------------------------------------------------------------
    # Replacement
    # ------------------------------------------------------------------
    def complete_replacement(
        self, robot: RobotNode, task: RepairTask, leg_distance: float
    ) -> None:
        """Robot arrived at the failure site: place a functional node.

        Paper §4.2(a): "After a failed node is replaced, the new node
        broadcasts its location to its one-hop neighbors.  The neighbors
        send beacons containing their own locations.  This enables the
        new node to set up its own neighbor table."
        """
        # Ground truth captured *before* the replacement mutates the
        # field: replacing a still-alive sensor is a false dispatch.
        was_alive = self.sensor_is_alive(task.failed_id)
        self._replacement_counter += 1
        new_id = f"sensor-r{self._replacement_counter:05d}"
        sensor = self._create_sensor(new_id, task.position)

        # Administrative bootstrap mirroring the broadcast/beacon
        # exchange quoted above (messages emitted below for accounting).
        self._seed_node_neighbors(sensor, bidirectional=True)
        self.coordination.seed_replacement(sensor)
        sensor.send_broadcast(
            Category.INITIALIZATION,
            NodeAnnouncement(
                node_id=new_id, position=task.position, kind=sensor.kind
            ),
        )
        sensor.select_guardian(send_confirm=True)

        if self.config.detection_mode == DetectionMode.BEACON:
            self._start_beaconing(sensor)
        if self.config.regenerate_lifetimes:
            self.failure_process.register(sensor)
        if self.traffic is not None:
            self.traffic.attach(sensor)

        self._repaired_ids.add(task.failed_id)
        self.metrics.record_replacement(
            task.failed_id,
            robot.node_id,
            self.sim.now,
            leg_distance,
            new_id,
        )
        if self.tracer.active:
            self.tracer.emit(
                "replacement",
                time=self.sim.now,
                failed=task.failed_id,
                robot=robot.node_id,
                new_node=new_id,
                leg_distance=leg_distance,
            )
        if was_alive and (
            self.config.verify_failures
            or self.config.network_faults_enabled
        ):
            # A healthy sensor was just "replaced" — the false-positive
            # outcome the verification protocol exists to prevent.  Only
            # charged when this PR's machinery is configured, keeping
            # pre-existing pure-loss baselines bit-identical.
            self.metrics.record_false_dispatch(
                task.failed_id,
                robot.node_id,
                self.sim.now,
                wasted_m=leg_distance,
                aborted=False,
            )
            if self.tracer.active:
                self.tracer.emit(
                    "false_replacement",
                    time=self.sim.now,
                    failed=task.failed_id,
                    robot=robot.node_id,
                )

    def abort_replacement(
        self, robot: RobotNode, task: RepairTask, leg_distance: float
    ) -> None:
        """The maintainer's on-site check found the sensor alive: no
        replacement happens, and the wasted trip is charged to the
        false-dispatch metric family (verification mode only)."""
        now = self.sim.now
        self.metrics.record_false_dispatch(
            task.failed_id,
            robot.node_id,
            now,
            wasted_m=leg_distance,
            aborted=True,
        )
        if self.tracer.active:
            self.tracer.emit(
                "aborted_replacement",
                time=now,
                failed=task.failed_id,
                robot=robot.node_id,
                leg_distance=leg_distance,
            )
        # The robot parked next to the survivor announces the good news;
        # administratively mirror the short-range exchange every sensor
        # in earshot of the site would overhear.
        survivor = self.sensors.get(task.failed_id)
        if survivor is None:
            return
        for node in self.channel.nodes_within(
            survivor.position, sensor_radio().range_m
        ):
            if isinstance(node, SensorNode):
                node.note_alive(survivor.node_id, survivor.position)

    # ------------------------------------------------------------------
    # Verification knobs (adaptive when the controller exists)
    # ------------------------------------------------------------------
    def suspicion_timeout_s(self, sensor: SensorNode) -> float:
        """How long *sensor* waits before resolving a suspicion case.

        Exactly ``config.verification_timeout_s`` unless adaptive
        verification is on, in which case the observed-loss controller
        scales it (shorter on clean channels, longer under jams).
        """
        base = self.config.verification_timeout_s
        if self.adaptive is None:
            return base
        return self.adaptive.suspicion_timeout_s(base)

    def probe_deadline_s(self) -> float:
        """How long a dispatcher waits on an are-you-alive probe."""
        base = 2.0 * self.config.verification_timeout_s
        if self.adaptive is None:
            return base
        return self.adaptive.probe_deadline_s(base)

    def verification_quorum_for(self, sensor: SensorNode) -> int:
        """The corroboration quorum for a suspicion raised by *sensor*."""
        if self.adaptive is None:
            return self.config.verification_quorum
        return self.adaptive.quorum_for(sensor)

    def sensor_is_alive(self, node_id: NodeId) -> bool:
        """Ground truth: is the sensor with *node_id* currently alive?"""
        sensor = self.sensors.get(node_id)
        return sensor is not None and sensor.alive

    def request_immediate_beacon(self, sensor: SensorNode) -> None:
        """Have *sensor* broadcast an off-cycle beacon right now (its
        self-defence against a suspicion query)."""
        if not sensor.alive:
            return
        service = self._beacon_services.get(sensor.node_id)
        if service is not None:
            service.beacon_now()
            return
        sensor.send_broadcast(
            Category.BEACON,
            NodeAnnouncement(
                node_id=sensor.node_id,
                position=sensor.position,
                kind=sensor.kind,
            ),
        )

    # ------------------------------------------------------------------
    # Robot faults & recovery (extension; inert unless configured)
    # ------------------------------------------------------------------
    def already_repaired(self, failed_id: NodeId) -> bool:
        """Has *failed_id*'s replacement already been placed?"""
        return failed_id in self._repaired_ids

    def fail_robot(
        self,
        robot: RobotNode,
        kind: str,
        downtime_s: typing.Optional[float],
    ) -> None:
        """Break *robot* now; ``downtime_s=None`` means permanently.

        The robot drops off the air immediately (mid-drive, mid-repair,
        or idle); its queued tasks are orphaned and will be recovered by
        heartbeat-silence detection, dispatch deadlines, or the
        reconciler — never by this function peeking at global state.
        """
        if not robot.alive:
            return
        now = self.sim.now
        orphaned = robot.take_orphaned_tasks()
        robot.mark_down(permanent=downtime_s is None)
        self.metrics.record_robot_fault(
            robot.node_id, kind, now, permanent=downtime_s is None
        )
        if self.tracer.active:
            self.tracer.emit(
                "robot_fault",
                time=now,
                robot=robot.node_id,
                kind=kind,
                permanent=downtime_s is None,
                orphaned=len(orphaned),
            )
        if downtime_s is not None:
            self.sim.call_in(downtime_s, lambda: self.recover_robot(robot))

    def recover_robot(self, robot: RobotNode) -> None:
        """A broken (non-permanent) robot comes back into service."""
        if not robot.down:
            return
        robot.mark_up()
        now = self.sim.now
        self.metrics.record_robot_recovery(robot.node_id, now)
        if self.tracer.active:
            self.tracer.emit(
                "robot_recovered", time=now, robot=robot.node_id
            )
        if self.resilience is not None:
            self.resilience.on_robot_recovered(robot)
        if self.coop is not None:
            # Post-outage auction kick: the fresh helper's availability
            # lets overloaded peers retry exhausted auctions.
            self.coop.note_recovery(robot)

    def fail_manager(self, downtime_s: typing.Optional[float]) -> None:
        """Kill the central manager (centralized algorithm only)."""
        manager = self.manager
        if manager is None or not manager.alive:
            return
        now = self.sim.now
        manager.alive = False
        self.channel.unregister(manager.node_id)
        self.metrics.record_robot_fault(
            manager.node_id,
            FaultKind.MANAGER_DOWN,
            now,
            permanent=downtime_s is None,
        )
        if self.tracer.active:
            self.tracer.emit(
                "manager_fault",
                time=now,
                manager=manager.node_id,
                permanent=downtime_s is None,
            )
        if downtime_s is not None:
            self.sim.call_in(downtime_s, lambda: self.recover_manager())

    def recover_manager(self) -> None:
        """Restart the central manager; it re-announces itself."""
        manager = self.manager
        if manager is None or manager.alive:
            return
        manager.alive = True
        if not self.channel.has_node(manager.node_id):
            self.channel.register(manager)
        now = self.sim.now
        self.metrics.record_robot_recovery(manager.node_id, now)
        if self.tracer.active:
            self.tracer.emit(
                "manager_recovered", time=now, manager=manager.node_id
            )
        # Network-wide re-announcement: sensors and robots repoint to
        # the restarted manager (robots demote any acting manager).
        manager.send_broadcast(
            Category.LOCATION_UPDATE,
            FloodMessage(
                origin_id=manager.node_id,
                position=manager.position,
                kind="manager",
                seq=manager.next_flood_seq(),
            ),
        )
        if self.resilience is not None:
            self.resilience.on_manager_recovered()
        if self.coop is not None:
            # The restored desk can broker offers again: overloaded
            # robots re-evaluate the backlog the outage left behind.
            for robot in self.robots_sorted():
                self.coop.note_backlog(robot)

    def dispatching_desk(self) -> typing.Optional[typing.Any]:
        """The currently authoritative dispatch desk, if any.

        The static manager's desk while it is alive, else the acting
        manager's (lowest robot id wins a tie, though promotion keeps a
        single acting manager).  ``None`` under distributed algorithms.
        """
        if self.manager is not None and self.manager.alive:
            return self.manager.desk
        for robot in self.robots_sorted():
            if robot.alive and robot.acting_manager and robot.desk is not None:
                return robot.desk
        return None

    def declare_orphaned(self, failed_id: NodeId, reason: str) -> None:
        """Mark a failure as permanently unserviceable (explicitly)."""
        now = self.sim.now
        self.metrics.record_orphaned(failed_id, reason, now)
        if self.tracer.active:
            self.tracer.emit(
                "orphaned", time=now, failed=failed_id, reason=reason
            )

    def nearest_live_sensor(
        self, position: Point, exclude: NodeId = ""
    ) -> typing.Optional[SensorNode]:
        """Public accessor for the nearest live sensor to *position*."""
        return self._nearest_live_sensor(position, exclude=exclude)

    # ------------------------------------------------------------------
    # Efficient broadcast (extension; paper future work)
    # ------------------------------------------------------------------
    def is_relay(self, node_id: NodeId) -> bool:
        """Is *node_id* in the relay (connected dominating) set?

        Only consulted when ``config.efficient_broadcast`` is on.
        Replacement sensors are conservatively treated as relays.
        """
        if self._relay_set is None:
            self._relay_set = self._compute_relay_set()
        if node_id.startswith("sensor-r"):
            return True
        return node_id in self._relay_set

    def _compute_relay_set(self) -> typing.Set[NodeId]:
        """Greedy connected-dominating-set over the initial sensor graph.

        Classic Guha–Khuller style growth: repeatedly blacken the
        gray node covering the most uncovered (white) sensors.  The
        result is connected because only gray (already dominated)
        nodes are blackened.
        """
        sensors = self.sensors_sorted()
        if not sensors:
            return set()
        range_m = sensor_radio().range_m
        adjacency: typing.Dict[NodeId, typing.List[NodeId]] = {}
        for sensor in sensors:
            adjacency[sensor.node_id] = [
                other.node_id
                for other in self.channel.nodes_within(
                    sensor.position, range_m, exclude=sensor.node_id
                )
                if isinstance(other, SensorNode)
            ]

        white = {s.node_id for s in sensors}
        black: typing.Set[NodeId] = set()
        gray: typing.Set[NodeId] = set()

        # Seed: the sensor with the most neighbours.
        seed = max(sensors, key=lambda s: len(adjacency[s.node_id])).node_id
        black.add(seed)
        white.discard(seed)
        for neighbor in adjacency[seed]:
            if neighbor in white:
                white.discard(neighbor)
                gray.add(neighbor)

        while white:
            candidates = sorted(gray)
            if not candidates:
                # Disconnected remainder: seed a new component.
                next_seed = sorted(white)[0]
                gray.add(next_seed)
                white.discard(next_seed)
                candidates = [next_seed]
            choice = max(
                candidates,
                key=lambda nid: (
                    sum(1 for n in adjacency[nid] if n in white),
                    nid,
                ),
            )
            gray.discard(choice)
            black.add(choice)
            for neighbor in adjacency[choice]:
                if neighbor in white:
                    white.discard(neighbor)
                    gray.add(neighbor)
        return black

    # ------------------------------------------------------------------
    # Queries & run loop
    # ------------------------------------------------------------------
    def sensors_sorted(self) -> typing.List[SensorNode]:
        """Live sensors in id order."""
        return [self.sensors[nid] for nid in sorted(self.sensors)]

    def robots_sorted(self) -> typing.List[RobotNode]:
        """Robots in id order."""
        return [self.robots[nid] for nid in sorted(self.robots)]

    def run(
        self, until: typing.Optional[float] = None
    ) -> RunReport:
        """Initialize (if needed), simulate, and summarise."""
        self.initialize()
        self.sim.run(until=until if until is not None else self.config.sim_time_s)
        return self.report()

    def report(self) -> RunReport:
        """Summarise the run so far."""
        return self.metrics.report(
            self.channel, self.routing_stats, self.config.describe()
        )

    def __repr__(self) -> str:
        return (
            f"<ScenarioRuntime {self.config.algorithm} "
            f"robots={len(self.robots)} sensors={len(self.sensors)} "
            f"t={self.sim.now:.0f}>"
        )


def run_scenario(
    config: ScenarioConfig,
    tracer: typing.Optional[Tracer] = None,
    until: typing.Optional[float] = None,
) -> RunReport:
    """Build, run and summarise one scenario — the main convenience API."""
    return ScenarioRuntime(config, tracer=tracer).run(until=until)
