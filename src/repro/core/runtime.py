"""Scenario runtime: builds a deployment and drives it end to end.

:class:`ScenarioRuntime` turns a :class:`~repro.deploy.ScenarioConfig`
into a live simulation: it places sensors and robots, wires the
coordination strategy, runs the initialization protocol (paper §2 stage
a), schedules failures, and performs replacements when robots arrive.
It is the only place where "administrative" actions happen — state seeded
directly instead of via messages — and every such action mirrors a
deployment-time or excluded-from-measurement protocol step, as documented
inline.

Typical use::

    from repro.core import ScenarioRuntime
    from repro.deploy import paper_scenario, Algorithm

    runtime = ScenarioRuntime(paper_scenario(Algorithm.DYNAMIC, 9, seed=1))
    report = runtime.run()
    print("\\n".join(report.summary_lines()))
"""

from __future__ import annotations

import typing

from repro.core.coordination import CoordinationStrategy, strategy_for
from repro.core.manager import CentralManagerNode
from repro.core.robot import RepairTask, RobotNode
from repro.core.sensor import SensorNode
from repro.core.traffic import DataTrafficService
from repro.deploy.failure import ExponentialLifetime, FailureProcess
from repro.deploy.placement import (
    connected_uniform_positions,
    jittered_grid_positions,
)
from repro.deploy.scenario import (
    DetectionMode,
    PlacementStyle,
    ScenarioConfig,
)
from repro.geometry.point import Point
from repro.metrics.collector import MetricsCollector, RunReport
from repro.net.beacon import BeaconService
from repro.net.channel import Channel
from repro.net.frames import (
    Category,
    NodeAnnouncement,
    NodeId,
    reset_id_counters,
)
from repro.net.node import NetworkNode
from repro.net.radio import robot_radio, sensor_radio
from repro.routing.stats import RoutingStats
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

__all__ = ["ScenarioRuntime", "run_scenario"]


class ScenarioRuntime:
    """One fully wired simulated deployment."""

    def __init__(
        self,
        config: ScenarioConfig,
        tracer: typing.Optional[Tracer] = None,
    ) -> None:
        self.config = config
        reset_id_counters()  # fresh packet/frame ids => replayable traces
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.tracer = tracer or Tracer()
        self.channel = Channel(self.sim, self.streams, self.tracer)
        self.routing_stats = RoutingStats()
        self.metrics = MetricsCollector()

        #: Live sensors by id (dead sensors are removed).
        self.sensors: typing.Dict[NodeId, SensorNode] = {}
        #: Maintenance robots by id.
        self.robots: typing.Dict[NodeId, RobotNode] = {}
        #: The central manager (centralized algorithm only).
        self.manager: typing.Optional[CentralManagerNode] = None
        #: Mirror of guardianship: guardee id -> guardian id (or None).
        self.guardian_of: typing.Dict[NodeId, typing.Optional[NodeId]] = {}

        self.failure_process = FailureProcess(
            self.sim,
            ExponentialLifetime(config.mean_lifetime_s),
            self.streams.stream("lifetime"),
            horizon=config.sim_time_s,
        )
        self.failure_process.death_hooks.append(self._on_sensor_death)

        self._detection_rng = self.streams.stream("detection")
        #: Background sensing traffic (paper's motivating workload);
        #: active only when the config sets a traffic period.
        self.traffic: typing.Optional[DataTrafficService] = (
            DataTrafficService(self, config.data_traffic_period_s)
            if config.data_traffic_period_s is not None
            else None
        )
        self._beacon_services: typing.Dict[NodeId, BeaconService] = {}
        self._replacement_counter = 0
        self._relay_set: typing.Optional[typing.Set[NodeId]] = None
        self._initialized = False

        # Strategy construction may consult config-derived geometry only;
        # node-dependent setup happens in initialize().
        self.coordination: CoordinationStrategy = strategy_for(self)
        self._build_nodes()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_nodes(self) -> None:
        config = self.config
        placement_rng = self.streams.stream("placement")
        if config.placement == PlacementStyle.GRID:
            sensor_positions = jittered_grid_positions(
                config.sensor_count, config.bounds, placement_rng
            )
        else:
            sensor_positions = connected_uniform_positions(
                config.sensor_count,
                config.bounds,
                sensor_radio().range_m,
                placement_rng,
            )

        for index, position in enumerate(sensor_positions):
            self._create_sensor(f"sensor-{index:04d}", position)

        robot_rng = self.streams.stream("robot_placement")
        for index, position in enumerate(
            self.coordination.robot_positions(robot_rng)
        ):
            robot = RobotNode(
                f"robot-{index:02d}",
                position,
                robot_radio(config.loss_rate),
                self.sim,
                self.channel,
                self.streams,
                routing_stats=self.routing_stats,
                tracer=self.tracer,
                runtime=self,
            )
            robot.router.shortcut_slack_m = config.update_threshold_m
            if config.robot_capacity is not None:
                robot.depot = config.bounds.center
            self.robots[robot.node_id] = robot

        if self.coordination.uses_central_manager:
            self.manager = CentralManagerNode(
                "manager-00",
                config.bounds.center,
                robot_radio(config.loss_rate),
                self.sim,
                self.channel,
                self.streams,
                routing_stats=self.routing_stats,
                tracer=self.tracer,
                runtime=self,
            )
            self.manager.router.shortcut_slack_m = config.update_threshold_m

        # Administrative neighbour-table seed: stands in for the paper's
        # initialization location broadcasts ("all the sensors broadcast
        # their locations to their one-hop neighbors"), whose messages
        # are still emitted in initialize() for accounting.
        for node in self.channel.nodes():
            self._seed_node_neighbors(node, bidirectional=False)

    def _create_sensor(self, node_id: NodeId, position: Point) -> SensorNode:
        sensor = SensorNode(
            node_id,
            position,
            sensor_radio(self.config.loss_rate),
            self.sim,
            self.channel,
            self.streams,
            routing_stats=self.routing_stats,
            tracer=self.tracer,
            runtime=self,
        )
        sensor.router.shortcut_slack_m = self.config.update_threshold_m
        self.sensors[node_id] = sensor
        return sensor

    def _seed_node_neighbors(
        self, node: NetworkNode, bidirectional: bool
    ) -> None:
        """Fill neighbour tables by radio reachability.

        A node ``u`` appears in ``v``'s table iff ``v`` can hear ``u``,
        i.e. the distance is within *u's* (the sender's) range.
        """
        now = self.sim.now
        probe_range = max(node.radio.range_m, robot_radio().range_m)
        for other in self.channel.nodes_within(
            node.position, probe_range, exclude=node.node_id
        ):
            distance = node.position.distance_to(other.position)
            if distance <= other.radio.range_m:
                node.neighbor_table.upsert(
                    other.node_id, other.position, other.kind, now
                )
            if bidirectional and distance <= node.radio.range_m:
                other.neighbor_table.upsert(
                    node.node_id, node.position, node.kind, now
                )

    # ------------------------------------------------------------------
    # Initialization (paper §2 stage a)
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Run the three initialization steps and start all processes."""
        if self._initialized:
            return
        self._initialized = True

        # Step: sensors broadcast their locations for neighbour discovery
        # and guardian establishment (messages counted; state was seeded).
        for sensor in self.sensors_sorted():
            sensor.send_broadcast(
                Category.INITIALIZATION,
                NodeAnnouncement(
                    node_id=sensor.node_id,
                    position=sensor.position,
                    kind=sensor.kind,
                ),
            )

        # Step: algorithm-specific role and relationship setup.
        self.coordination.setup()

        # Step: guardian/guardee establishment — every sensor picks its
        # nearest (eligible) neighbour and confirms.
        for sensor in self.sensors_sorted():
            sensor.select_guardian(send_confirm=True)

        # Detection machinery.
        if self.config.detection_mode == DetectionMode.BEACON:
            for sensor in self.sensors_sorted():
                self._start_beaconing(sensor)

        # Robots start waiting for work.
        for robot in self.robots_sorted():
            robot.start()

        # Background sensing traffic, when configured.
        if self.traffic is not None:
            self.traffic.start()

        # Failures begin.
        for sensor in self.sensors_sorted():
            self.failure_process.register(sensor)

    def _start_beaconing(self, sensor: SensorNode) -> None:
        service = BeaconService(
            sensor, self.config.beacon_period_s, started=True
        )
        self._beacon_services[sensor.node_id] = service
        sensor.start_beacon_watch()

    # ------------------------------------------------------------------
    # Death & detection
    # ------------------------------------------------------------------
    def _on_sensor_death(self, node: NetworkNode, time: float) -> None:
        self.metrics.record_death(node.node_id, node.position, time)
        self.sensors.pop(node.node_id, None)
        self._beacon_services.pop(node.node_id, None)
        if self.tracer.active:
            self.tracer.emit(
                "failure", time=time, node=node.node_id,
                position=node.position,
            )
        if self.config.detection_mode == DetectionMode.EVENT:
            low, high = self.config.detection_delay_bounds
            delay = self._detection_rng.uniform(low, high)
            failed_id = node.node_id
            position = node.position
            self.sim.call_in(
                delay, lambda: self._event_detection(failed_id, position)
            )

    def _event_detection(self, failed_id: NodeId, position: Point) -> None:
        """Event-mode stand-in for beacon-timeout detection.

        Performs exactly what the beacon protocol would have converged to
        by this time: neighbours purge the dead node, its guardian
        reports the failure, and its orphaned guardees re-select
        guardians.
        """
        # Neighbours that could hear the dead node drop it from their
        # tables (beacon expiry would have done this by now).
        for node in self.channel.nodes_within(
            position, sensor_radio().range_m
        ):
            node.neighbor_table.remove(failed_id)

        guardian_id = self.guardian_of.get(failed_id)
        guardian = self.sensors.get(guardian_id) if guardian_id else None
        if guardian is not None and guardian.alive:
            guardian.detect_and_report(failed_id, position)
        else:
            # The guardian died too (the paper assumes this is rare but
            # we still handle it): the nearest live sensor notices after
            # one more beacon period.
            fallback = self._nearest_live_sensor(position, exclude=failed_id)
            if fallback is not None:
                self.sim.call_in(
                    self.config.beacon_period_s,
                    lambda: fallback.detect_and_report(failed_id, position),
                )

        # Orphaned guardees re-select (paper: a guardee that stops
        # hearing its guardian picks a new one).
        for guardee_id, gid in list(self.guardian_of.items()):
            if gid != failed_id:
                continue
            guardee = self.sensors.get(guardee_id)
            if guardee is not None and guardee.alive:
                guardee.neighbor_table.remove(failed_id)
                guardee.select_guardian(exclude=(failed_id,))

    def _nearest_live_sensor(
        self, position: Point, exclude: NodeId
    ) -> typing.Optional[SensorNode]:
        best: typing.Optional[SensorNode] = None
        best_d2 = float("inf")
        for node in self.channel.nodes_within(
            position, sensor_radio().range_m, exclude=exclude
        ):
            if not isinstance(node, SensorNode):
                continue
            d2 = position.squared_distance_to(node.position)
            if d2 < best_d2:
                best = node
                best_d2 = d2
        return best

    def note_guardian(
        self, guardee_id: NodeId, guardian_id: typing.Optional[NodeId]
    ) -> None:
        """Record who guards *guardee_id* (called by sensors)."""
        self.guardian_of[guardee_id] = guardian_id

    # ------------------------------------------------------------------
    # Replacement
    # ------------------------------------------------------------------
    def complete_replacement(
        self, robot: RobotNode, task: RepairTask, leg_distance: float
    ) -> None:
        """Robot arrived at the failure site: place a functional node.

        Paper §4.2(a): "After a failed node is replaced, the new node
        broadcasts its location to its one-hop neighbors.  The neighbors
        send beacons containing their own locations.  This enables the
        new node to set up its own neighbor table."
        """
        self._replacement_counter += 1
        new_id = f"sensor-r{self._replacement_counter:05d}"
        sensor = self._create_sensor(new_id, task.position)

        # Administrative bootstrap mirroring the broadcast/beacon
        # exchange quoted above (messages emitted below for accounting).
        self._seed_node_neighbors(sensor, bidirectional=True)
        self.coordination.seed_replacement(sensor)
        sensor.send_broadcast(
            Category.INITIALIZATION,
            NodeAnnouncement(
                node_id=new_id, position=task.position, kind=sensor.kind
            ),
        )
        sensor.select_guardian(send_confirm=True)

        if self.config.detection_mode == DetectionMode.BEACON:
            self._start_beaconing(sensor)
        if self.config.regenerate_lifetimes:
            self.failure_process.register(sensor)
        if self.traffic is not None:
            self.traffic.attach(sensor)

        self.metrics.record_replacement(
            task.failed_id,
            robot.node_id,
            self.sim.now,
            leg_distance,
            new_id,
        )
        if self.tracer.active:
            self.tracer.emit(
                "replacement",
                time=self.sim.now,
                failed=task.failed_id,
                robot=robot.node_id,
                new_node=new_id,
                leg_distance=leg_distance,
            )

    # ------------------------------------------------------------------
    # Efficient broadcast (extension; paper future work)
    # ------------------------------------------------------------------
    def is_relay(self, node_id: NodeId) -> bool:
        """Is *node_id* in the relay (connected dominating) set?

        Only consulted when ``config.efficient_broadcast`` is on.
        Replacement sensors are conservatively treated as relays.
        """
        if self._relay_set is None:
            self._relay_set = self._compute_relay_set()
        if node_id.startswith("sensor-r"):
            return True
        return node_id in self._relay_set

    def _compute_relay_set(self) -> typing.Set[NodeId]:
        """Greedy connected-dominating-set over the initial sensor graph.

        Classic Guha–Khuller style growth: repeatedly blacken the
        gray node covering the most uncovered (white) sensors.  The
        result is connected because only gray (already dominated)
        nodes are blackened.
        """
        sensors = self.sensors_sorted()
        if not sensors:
            return set()
        range_m = sensor_radio().range_m
        adjacency: typing.Dict[NodeId, typing.List[NodeId]] = {}
        for sensor in sensors:
            adjacency[sensor.node_id] = [
                other.node_id
                for other in self.channel.nodes_within(
                    sensor.position, range_m, exclude=sensor.node_id
                )
                if isinstance(other, SensorNode)
            ]

        white = {s.node_id for s in sensors}
        black: typing.Set[NodeId] = set()
        gray: typing.Set[NodeId] = set()

        # Seed: the sensor with the most neighbours.
        seed = max(sensors, key=lambda s: len(adjacency[s.node_id])).node_id
        black.add(seed)
        white.discard(seed)
        for neighbor in adjacency[seed]:
            if neighbor in white:
                white.discard(neighbor)
                gray.add(neighbor)

        while white:
            candidates = sorted(gray)
            if not candidates:
                # Disconnected remainder: seed a new component.
                next_seed = sorted(white)[0]
                gray.add(next_seed)
                white.discard(next_seed)
                candidates = [next_seed]
            choice = max(
                candidates,
                key=lambda nid: (
                    sum(1 for n in adjacency[nid] if n in white),
                    nid,
                ),
            )
            gray.discard(choice)
            black.add(choice)
            for neighbor in adjacency[choice]:
                if neighbor in white:
                    white.discard(neighbor)
                    gray.add(neighbor)
        return black

    # ------------------------------------------------------------------
    # Queries & run loop
    # ------------------------------------------------------------------
    def sensors_sorted(self) -> typing.List[SensorNode]:
        """Live sensors in id order."""
        return [self.sensors[nid] for nid in sorted(self.sensors)]

    def robots_sorted(self) -> typing.List[RobotNode]:
        """Robots in id order."""
        return [self.robots[nid] for nid in sorted(self.robots)]

    def run(
        self, until: typing.Optional[float] = None
    ) -> RunReport:
        """Initialize (if needed), simulate, and summarise."""
        self.initialize()
        self.sim.run(until=until if until is not None else self.config.sim_time_s)
        return self.report()

    def report(self) -> RunReport:
        """Summarise the run so far."""
        return self.metrics.report(
            self.channel, self.routing_stats, self.config.describe()
        )

    def __repr__(self) -> str:
        return (
            f"<ScenarioRuntime {self.config.algorithm} "
            f"robots={len(self.robots)} sensors={len(self.sensors)} "
            f"t={self.sim.now:.0f}>"
        )


def run_scenario(
    config: ScenarioConfig,
    tracer: typing.Optional[Tracer] = None,
    until: typing.Optional[float] = None,
) -> RunReport:
    """Build, run and summarise one scenario — the main convenience API."""
    return ScenarioRuntime(config, tracer=tracer).run(until=until)
