"""Convex polygons and rectangles.

The dynamic coordination algorithm reasons about Voronoi cells, which are
convex polygons obtained by repeatedly clipping a bounding rectangle with
half-planes.  This module provides exactly that machinery, plus the
rectangle type used for deployment areas and fixed square subareas.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.geometry.point import Point

__all__ = ["Rect", "ConvexPolygon", "HalfPlane"]

_EPS = 1e-9


@dataclasses.dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(f"degenerate rectangle: {self!r}")

    @classmethod
    def square(cls, side: float, origin: Point = Point(0.0, 0.0)) -> "Rect":
        """A side × side square with its lower-left corner at *origin*."""
        return cls(origin.x, origin.y, origin.x + side, origin.y + side)

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point(
            (self.x_min + self.x_max) / 2.0,
            (self.y_min + self.y_max) / 2.0,
        )

    @property
    def corners(self) -> typing.Tuple[Point, Point, Point, Point]:
        """Corners in counter-clockwise order from the lower-left."""
        return (
            Point(self.x_min, self.y_min),
            Point(self.x_max, self.y_min),
            Point(self.x_max, self.y_max),
            Point(self.x_min, self.y_max),
        )

    def contains(self, point: Point, tolerance: float = _EPS) -> bool:
        """True if *point* is inside or on the boundary."""
        return (
            self.x_min - tolerance <= point.x <= self.x_max + tolerance
            and self.y_min - tolerance <= point.y <= self.y_max + tolerance
        )

    def clamp(self, point: Point) -> Point:
        """The closest point of the rectangle to *point*."""
        return Point(
            min(max(point.x, self.x_min), self.x_max),
            min(max(point.y, self.y_min), self.y_max),
        )

    def to_polygon(self) -> "ConvexPolygon":
        """This rectangle as a :class:`ConvexPolygon`."""
        return ConvexPolygon(self.corners)

    def diagonal(self) -> float:
        """Length of the rectangle's diagonal."""
        return math.hypot(self.width, self.height)


@dataclasses.dataclass(frozen=True, slots=True)
class HalfPlane:
    """The set of points p with ``normal · p <= offset``.

    Used for Voronoi clipping: the half-plane of points closer to site *a*
    than to site *b* is :meth:`bisector_towards`.
    """

    normal: Point
    offset: float

    @classmethod
    def bisector_towards(cls, a: Point, b: Point) -> "HalfPlane":
        """Half-plane of points at least as close to *a* as to *b*.

        Derived from ``|p-a|² <= |p-b|²``, which linearises to
        ``2(b-a)·p <= |b|² - |a|²``.
        """
        if a == b:
            raise ValueError("bisector of coincident points is undefined")
        normal = Point(2.0 * (b.x - a.x), 2.0 * (b.y - a.y))
        offset = (b.x * b.x + b.y * b.y) - (a.x * a.x + a.y * a.y)
        return cls(normal, offset)

    def contains(self, point: Point, tolerance: float = _EPS) -> bool:
        """True if *point* satisfies the inequality (with tolerance)."""
        return self.normal.dot(point) <= self.offset + tolerance

    def signed_violation(self, point: Point) -> float:
        """Positive when *point* lies outside the half-plane."""
        return self.normal.dot(point) - self.offset


class ConvexPolygon:
    """A convex polygon given by its vertices in counter-clockwise order.

    Construction normalises orientation (clockwise input is reversed) and
    rejects polygons with fewer than three vertices.  The polygon may
    become empty through clipping; an empty polygon reports zero area and
    contains nothing.
    """

    __slots__ = ("vertices",)

    def __init__(self, vertices: typing.Iterable[Point]) -> None:
        verts = list(vertices)
        if verts and _signed_area(verts) < 0:
            verts.reverse()
        self.vertices: typing.Tuple[Point, ...] = tuple(verts)

    @property
    def is_empty(self) -> bool:
        """True if clipping has reduced the polygon to nothing."""
        return len(self.vertices) < 3

    @property
    def area(self) -> float:
        """Enclosed area via the shoelace formula (0 when empty)."""
        if self.is_empty:
            return 0.0
        return _signed_area(list(self.vertices))

    @property
    def centroid(self) -> Point:
        """Area centroid.

        Raises
        ------
        ValueError
            For an empty polygon.
        """
        if self.is_empty:
            raise ValueError("centroid of an empty polygon")
        area_acc = 0.0
        cx = 0.0
        cy = 0.0
        verts = self.vertices
        for i, a in enumerate(verts):
            b = verts[(i + 1) % len(verts)]
            cross = a.cross(b)
            area_acc += cross
            cx += (a.x + b.x) * cross
            cy += (a.y + b.y) * cross
        if abs(area_acc) < _EPS:
            # Degenerate (collinear) polygon: fall back to vertex mean.
            n = len(verts)
            return Point(
                sum(v.x for v in verts) / n, sum(v.y for v in verts) / n
            )
        area_acc *= 0.5
        return Point(cx / (6.0 * area_acc), cy / (6.0 * area_acc))

    def contains(self, point: Point, tolerance: float = _EPS) -> bool:
        """True if *point* is inside or on the boundary."""
        if self.is_empty:
            return False
        verts = self.vertices
        for i, a in enumerate(verts):
            b = verts[(i + 1) % len(verts)]
            edge = b - a
            to_point = point - a
            if edge.cross(to_point) < -tolerance:
                return False
        return True

    def clip_halfplane(self, halfplane: HalfPlane) -> "ConvexPolygon":
        """Sutherland–Hodgman clip against one half-plane.

        Returns a new polygon; the receiver is unchanged.
        """
        if self.is_empty:
            return self
        output: typing.List[Point] = []
        verts = self.vertices
        for i, current in enumerate(verts):
            nxt = verts[(i + 1) % len(verts)]
            current_in = halfplane.contains(current)
            next_in = halfplane.contains(nxt)
            if current_in:
                output.append(current)
                if not next_in:
                    output.append(_halfplane_intersection(
                        current, nxt, halfplane
                    ))
            elif next_in:
                output.append(_halfplane_intersection(current, nxt, halfplane))
        return ConvexPolygon(_dedupe_ring(output))

    def perimeter(self) -> float:
        """Total boundary length (0 when empty)."""
        if self.is_empty:
            return 0.0
        verts = self.vertices
        return sum(
            verts[i].distance_to(verts[(i + 1) % len(verts)])
            for i in range(len(verts))
        )

    def bounding_rect(self) -> Rect:
        """Smallest axis-aligned rectangle containing the polygon.

        Raises
        ------
        ValueError
            For an empty polygon.
        """
        if self.is_empty:
            raise ValueError("bounding rectangle of an empty polygon")
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def __repr__(self) -> str:
        if self.is_empty:
            return "ConvexPolygon(<empty>)"
        return f"ConvexPolygon({len(self.vertices)} vertices, area={self.area:.4g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConvexPolygon):
            return NotImplemented
        return self.vertices == other.vertices

    def __hash__(self) -> int:
        return hash(self.vertices)


def _signed_area(vertices: typing.Sequence[Point]) -> float:
    """Shoelace signed area: positive for counter-clockwise rings."""
    total = 0.0
    n = len(vertices)
    for i, a in enumerate(vertices):
        b = vertices[(i + 1) % n]
        total += a.cross(b)
    return total / 2.0


def _halfplane_intersection(
    a: Point, b: Point, halfplane: HalfPlane
) -> Point:
    """Intersection of segment *ab* with the half-plane boundary line."""
    da = halfplane.signed_violation(a)
    db = halfplane.signed_violation(b)
    denom = da - db
    if abs(denom) < _EPS:
        # Segment effectively parallel to the boundary: either endpoint
        # is as correct as the other.
        return a
    t = da / denom
    return a.lerp(b, t)


def _dedupe_ring(vertices: typing.Sequence[Point]) -> typing.List[Point]:
    """Drop consecutive (near-)duplicate vertices from a ring."""
    result: typing.List[Point] = []
    for vertex in vertices:
        if not result or not vertex.is_close(result[-1], 1e-7):
            result.append(vertex)
    if len(result) > 1 and result[0].is_close(result[-1], 1e-7):
        result.pop()
    return result
