"""Flat-array geometry kernels for the simulator's hot loops.

The scalar geometry API (:class:`~repro.geometry.point.Point`,
:func:`~repro.geometry.voronoi.closest_site_index`,
:func:`~repro.geometry.detour.segment_distance_to_point`, ...) is the
readable reference; these kernels are the throughput layer.  Each one
takes parallel coordinate lists (``xs[i], ys[i]`` is point *i*) and
processes a whole batch in one object-free pass: no ``Point``
allocation, no attribute loads, no per-element method calls.

**Exact-float-order invariant.**  Every kernel replicates the float-op
sequence of the scalar reference named in its docstring *op for op* —
the same subtractions, the same multiply/add order, the same
``math.hypot`` calls — so batch results are **bit-identical** to the
scalar loops they replace, and the pinned trace-hash baselines
(``tests/baselines/``) stay unchanged.  Two algebraic identities are
relied on (both exact in IEEE-754): ``(-x) * (-x) == x * x`` (negation
only flips the sign bit) and ``hypot(a, b) == hypot(-a, -b)``, so
``dx = px - x`` versus ``dx = x - px`` are interchangeable *under a
square or a hypot* and nowhere else.  The property suite in
``tests/property/test_kernel_equivalence.py`` asserts exact (``==``,
not approximate) agreement with the scalar references on random
inputs.

Design notes live in ``docs/PERFORMANCE.md`` ("Flat-array geometry
kernels").
"""

from __future__ import annotations

import typing

from math import hypot as _hypot

__all__ = [
    "nearest_site_index",
    "nearest_site_indices",
    "compile_nearest_site_kernel",
    "in_disk_mask",
    "filter_within_radius",
    "collect_entries_within_radius",
    "distances_to_point",
    "segment_distances_to_points",
]

#: Parallel coordinate arrays — plain lists of floats.  Tuples also
#: work; anything indexable and zippable does.
Floats = typing.Sequence[float]


def nearest_site_index(
    px: float, py: float, site_xs: Floats, site_ys: Floats
) -> int:
    """Index of the site nearest to ``(px, py)`` — first wins ties.

    Scalar reference: :func:`repro.geometry.voronoi.closest_site_index`
    (init from site 0, strict ``<`` update, squared distances computed
    as ``dx*dx + dy*dy`` with ``dx = px - sx``).

    Raises
    ------
    ValueError
        If the site arrays are empty.
    """
    if not site_xs:
        raise ValueError("nearest site of an empty site set")
    dx = px - site_xs[0]
    dy = py - site_ys[0]
    best_index = 0
    best_distance = dx * dx + dy * dy
    for i in range(1, len(site_xs)):
        dx = px - site_xs[i]
        dy = py - site_ys[i]
        distance = dx * dx + dy * dy
        if distance < best_distance:
            best_distance = distance
            best_index = i
    return best_index


def nearest_site_indices(
    xs: Floats, ys: Floats, site_xs: Floats, site_ys: Floats
) -> typing.List[int]:
    """Voronoi membership for N points × M sites in one pass.

    ``result[i]`` is the index of the site nearest to point *i*, first
    site winning exact ties — element-wise identical to calling
    :func:`repro.geometry.voronoi.closest_site_index` per point.

    Raises
    ------
    ValueError
        If the site arrays are empty (only checked when there are
        points to classify).
    """
    if xs and not site_xs:
        raise ValueError("nearest site of an empty site set")
    site_count = len(site_xs)
    first_x = site_xs[0] if site_xs else 0.0
    first_y = site_ys[0] if site_ys else 0.0
    site_range = range(1, site_count)
    result: typing.List[int] = []
    append = result.append
    for px, py in zip(xs, ys):
        dx = px - first_x
        dy = py - first_y
        best_index = 0
        best_distance = dx * dx + dy * dy
        for i in site_range:
            dx = px - site_xs[i]
            dy = py - site_ys[i]
            distance = dx * dx + dy * dy
            if distance < best_distance:
                best_distance = distance
                best_index = i
        append(best_index)
    return result


def compile_nearest_site_kernel(
    site_xs: Floats, site_ys: Floats
) -> typing.Callable[[Floats, Floats], typing.List[int]]:
    """Build a batch classifier specialized to one frozen site set.

    Returns ``classify(xs, ys) -> indices`` computing exactly what
    :func:`nearest_site_indices` computes for these sites — the same
    subtractions, squares, and strict-``<`` first-wins comparisons, so
    results are bit-identical — but with the site loop *unrolled* at
    build time: every site coordinate becomes a bound parameter default
    (a fast local load) and the per-site iteration/unpacking overhead
    disappears.  Roughly twice as fast per point as the generic kernel
    at the paper's site counts.

    Building costs around a millisecond (source generation plus
    ``compile``), so this pays off only when one site set is classified
    against many times — e.g. :class:`~repro.geometry.voronoi.VoronoiDiagram`
    resolving owners against its cached site list.  One-shot callers
    should use :func:`nearest_site_indices`.

    Raises
    ------
    ValueError
        If the site arrays are empty.
    """
    if not site_xs:
        raise ValueError("nearest site of an empty site set")
    site_count = len(site_xs)
    params = ", ".join(
        f"_sx{i}=0.0, _sy{i}=0.0" for i in range(site_count)
    )
    lines = [
        f"def _classify(xs, ys, {params}, _zip=zip):",
        "    result = []",
        "    append = result.append",
        "    for px, py in _zip(xs, ys):",
        "        dx = px - _sx0",
        "        dy = py - _sy0",
        "        best_index = 0",
        "        best_distance = dx * dx + dy * dy",
    ]
    for i in range(1, site_count):
        lines += [
            f"        dx = px - _sx{i}",
            f"        dy = py - _sy{i}",
            "        distance = dx * dx + dy * dy",
            "        if distance < best_distance:",
            "            best_distance = distance",
            f"            best_index = {i}",
        ]
    lines += ["        append(best_index)", "    return result"]
    namespace: typing.Dict[str, typing.Any] = {}
    exec("\n".join(lines), {"zip": zip}, namespace)
    classify = namespace["_classify"]
    defaults: typing.List[typing.Any] = []
    for sx, sy in zip(site_xs, site_ys):
        defaults.append(sx)
        defaults.append(sy)
    defaults.append(zip)
    classify.__defaults__ = tuple(defaults)
    return typing.cast(
        typing.Callable[[Floats, Floats], typing.List[int]], classify
    )


def in_disk_mask(
    xs: Floats, ys: Floats, cx: float, cy: float, radius: float
) -> typing.List[bool]:
    """Boundary-inclusive disk membership for a batch of points.

    ``result[i]`` is ``True`` iff point *i* lies within *radius* of
    ``(cx, cy)``.  Scalar reference:
    :meth:`repro.faults.network.FaultRegion.covers` — ``dx = x - cx``,
    ``dx*dx + dy*dy <= radius * radius``.
    """
    rr = radius * radius
    return [
        ((dx := x - cx) * dx + (dy := y - cy) * dy) <= rr
        for x, y in zip(xs, ys)
    ]


def filter_within_radius(
    xs: Floats, ys: Floats, cx: float, cy: float, radius: float
) -> typing.List[int]:
    """Indices of the points within *radius* of ``(cx, cy)``.

    Boundary inclusive; result indices are ascending.  Scalar
    reference: the distance test of
    :meth:`repro.net.spatial.SpatialGrid.within` —
    ``r2 = radius * radius``, ``qx = x - cx``,
    ``qx*qx + qy*qy <= r2``.
    """
    r2 = radius * radius
    result: typing.List[int] = []
    append = result.append
    index = 0
    for x, y in zip(xs, ys):
        qx = x - cx
        qy = y - cy
        if qx * qx + qy * qy <= r2:
            append(index)
        index += 1
    return result


def collect_entries_within_radius(
    entries: typing.Sequence[typing.Tuple[typing.Any, float, float, typing.Any]],
    cx: float,
    cy: float,
    r2: float,
    out: typing.List[typing.Any],
) -> None:
    """Append ``payload`` to *out* for every entry row inside the disk.

    The fused filter-and-gather behind the spatial grid's range query:
    *entries* are prebuilt ``(key, x, y, payload)`` rows (iterating
    existing tuples is faster than zipping parallel coordinate arrays —
    list iteration allocates nothing per element), *r2* is the
    **squared** radius (hoisted by the caller, computed as
    ``radius * radius``), and the membership test is the exact float
    sequence of :meth:`repro.net.spatial.SpatialGrid.within`
    (``qx = px - cx; qy = py - cy; qx*qx + qy*qy <= r2``).
    """
    append = out.append
    for _key, px, py, item in entries:
        qx = px - cx
        qy = py - cy
        if qx * qx + qy * qy <= r2:
            append(item)


def distances_to_point(
    xs: Floats, ys: Floats, px: float, py: float
) -> typing.List[float]:
    """Euclidean distances from every point to ``(px, py)``.

    Scalar reference: :meth:`repro.geometry.point.Point.distance_to`
    (``math.hypot`` of the coordinate differences; hypot is exact under
    operand negation, so the subtraction direction is immaterial).
    """
    return [_hypot(x - px, y - py) for x, y in zip(xs, ys)]


def segment_distances_to_points(
    ax: float,
    ay: float,
    bx: float,
    by: float,
    xs: Floats,
    ys: Floats,
) -> typing.List[float]:
    """Distance from each point to the closed segment ``(ax,ay)-(bx,by)``.

    Scalar reference:
    :func:`repro.geometry.detour.segment_distance_to_point`, op for op:
    ``length_sq = dx*dx + dy*dy`` (the segment vector's self-dot), the
    projection parameter ``t = ((px-ax)*dx + (py-ay)*dy) / length_sq``
    clamped to ``[0, 1]``, the foot point via the
    :meth:`~repro.geometry.point.Point.lerp` expression
    ``ax + (bx - ax) * t``, and ``math.hypot`` to the foot.
    """
    dx = bx - ax
    dy = by - ay
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return [_hypot(ax - px, ay - py) for px, py in zip(xs, ys)]
    result: typing.List[float] = []
    append = result.append
    for px, py in zip(xs, ys):
        t = ((px - ax) * dx + (py - ay) * dy) / length_sq
        t = min(1.0, max(0.0, t))
        fx = ax + (bx - ax) * t
        fy = ay + (by - ay) * t
        append(_hypot(fx - px, fy - py))
    return result
