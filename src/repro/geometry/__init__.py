"""Planar geometry: points, convex polygons, Voronoi diagrams, partitions.

Everything the coordination algorithms need to reason about the 2-D
deployment field, implemented from scratch (no scipy dependency in the
library itself; scipy is only used by tests as an oracle).
"""

from repro.geometry.detour import (
    detour_around,
    plan_route,
    polyline_length,
    segment_crosses_disk,
    segment_distance_to_point,
)
from repro.geometry.partition import (
    Partition,
    SquarePartition,
    StaggeredPartition,
)
from repro.geometry.point import Point, centroid_of, midpoint
from repro.geometry.polygon import ConvexPolygon, HalfPlane, Rect
from repro.geometry.voronoi import (
    VoronoiDiagram,
    closest_site,
    closest_site_index,
    voronoi_cell,
    voronoi_cells,
)

__all__ = [
    "ConvexPolygon",
    "HalfPlane",
    "Partition",
    "Point",
    "Rect",
    "SquarePartition",
    "StaggeredPartition",
    "VoronoiDiagram",
    "centroid_of",
    "closest_site",
    "closest_site_index",
    "detour_around",
    "midpoint",
    "plan_route",
    "polyline_length",
    "segment_crosses_disk",
    "segment_distance_to_point",
    "voronoi_cell",
    "voronoi_cells",
]
