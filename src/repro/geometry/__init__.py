"""Planar geometry: points, convex polygons, Voronoi diagrams, partitions.

Everything the coordination algorithms need to reason about the 2-D
deployment field, implemented from scratch (no scipy dependency in the
library itself; scipy is only used by tests as an oracle).
"""

from repro.geometry.detour import (
    detour_around,
    plan_route,
    polyline_length,
    segment_crosses_disk,
    segment_distance_to_point,
)
from repro.geometry.kernels import (
    collect_entries_within_radius,
    compile_nearest_site_kernel,
    distances_to_point,
    filter_within_radius,
    in_disk_mask,
    nearest_site_index,
    nearest_site_indices,
    segment_distances_to_points,
)
from repro.geometry.partition import (
    Partition,
    SquarePartition,
    StaggeredPartition,
)
from repro.geometry.point import Point, centroid_of, midpoint
from repro.geometry.polygon import ConvexPolygon, HalfPlane, Rect
from repro.geometry.voronoi import (
    VoronoiDiagram,
    closest_site,
    closest_site_index,
    closest_site_indices,
    voronoi_cell,
    voronoi_cells,
)

__all__ = [
    "ConvexPolygon",
    "HalfPlane",
    "Partition",
    "Point",
    "Rect",
    "SquarePartition",
    "StaggeredPartition",
    "VoronoiDiagram",
    "centroid_of",
    "closest_site",
    "closest_site_index",
    "closest_site_indices",
    "collect_entries_within_radius",
    "compile_nearest_site_kernel",
    "detour_around",
    "distances_to_point",
    "filter_within_radius",
    "in_disk_mask",
    "midpoint",
    "nearest_site_index",
    "nearest_site_indices",
    "plan_route",
    "polyline_length",
    "segment_crosses_disk",
    "segment_distance_to_point",
    "segment_distances_to_points",
    "voronoi_cell",
    "voronoi_cells",
]
