"""2-D points and vectors.

:class:`Point` is an immutable value type used throughout the simulator
for node positions, robot waypoints and Voronoi sites.  All geometry in
the paper is planar, so no third coordinate is modelled.
"""

from __future__ import annotations

import dataclasses
import math
import typing

__all__ = ["Point", "midpoint", "centroid_of"]


@dataclasses.dataclass(frozen=True, slots=True)
class Point:
    """An immutable point (or free vector) in the plane, in metres."""

    x: float
    y: float

    # ------------------------------------------------------------------
    # Arithmetic (points double as vectors where convenient)
    # ------------------------------------------------------------------
    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to *other*."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared distance — cheaper for nearest-neighbour comparisons."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def norm(self) -> float:
        """Length of this point viewed as a vector from the origin."""
        return math.hypot(self.x, self.y)

    def dot(self, other: "Point") -> float:
        """Dot product with *other* (both viewed as vectors)."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def normalized(self) -> "Point":
        """Unit vector in this direction.

        Raises
        ------
        ValueError
            For the zero vector.
        """
        length = self.norm()
        if length == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return Point(self.x / length, self.y / length)

    def angle_to(self, other: "Point") -> float:
        """Angle of the vector from self to other, in radians (-pi, pi]."""
        return math.atan2(other.y - self.y, other.x - self.x)

    # ------------------------------------------------------------------
    # Interpolation & helpers
    # ------------------------------------------------------------------
    def towards(self, target: "Point", distance: float) -> "Point":
        """The point *distance* metres from self along the line to target.

        If *distance* exceeds the separation, returns *target* (movement
        never overshoots its goal).
        """
        separation = self.distance_to(target)
        if separation <= distance or separation == 0.0:
            return target
        fraction = distance / separation
        return Point(
            self.x + (target.x - self.x) * fraction,
            self.y + (target.y - self.y) * fraction,
        )

    def lerp(self, target: "Point", fraction: float) -> "Point":
        """Linear interpolation: ``self`` at 0.0, ``target`` at 1.0."""
        return Point(
            self.x + (target.x - self.x) * fraction,
            self.y + (target.y - self.y) * fraction,
        )

    def is_close(self, other: "Point", tolerance: float = 1e-9) -> bool:
        """True if within *tolerance* metres of *other*."""
        return self.distance_to(other) <= tolerance

    def as_tuple(self) -> typing.Tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> typing.Iterator[float]:
        yield self.x
        yield self.y

    def __repr__(self) -> str:
        return f"Point({self.x:.6g}, {self.y:.6g})"


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of the segment *ab*."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def centroid_of(points: typing.Sequence[Point]) -> Point:
    """Arithmetic mean of *points*.

    Raises
    ------
    ValueError
        For an empty sequence.
    """
    if not points:
        raise ValueError("centroid of an empty point set is undefined")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    return Point(sx / len(points), sy / len(points))
