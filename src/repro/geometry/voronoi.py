"""Bounded Voronoi diagrams by half-plane intersection.

The dynamic distributed manager algorithm (paper §3.3) partitions the
deployment area among robots by the Voronoi diagram of their current
positions: every sensor reports failures to the robot whose cell contains
it.  Robot counts are small (the paper uses 4–16), so the O(n² · v)
half-plane clipping construction is simple, robust and exact enough —
no Fortune sweep needed.

The module also provides the nearest-site queries that sensors use when
deciding (and re-deciding) their ``myrobot``.
"""

from __future__ import annotations

import typing

from repro.geometry.kernels import (
    compile_nearest_site_kernel,
    nearest_site_indices,
)
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon, HalfPlane, Rect

__all__ = [
    "VoronoiDiagram",
    "voronoi_cell",
    "voronoi_cells",
    "closest_site",
    "closest_site_index",
    "closest_site_indices",
]


def voronoi_cell(
    site: Point,
    other_sites: typing.Iterable[Point],
    bounds: Rect,
) -> ConvexPolygon:
    """The bounded Voronoi cell of *site* against *other_sites*.

    Coincident other sites are skipped (their bisector is undefined; the
    tie is broken in favour of *site*, matching how sensors keep their
    current ``myrobot`` on exact ties).
    """
    cell = bounds.to_polygon()
    for other in other_sites:
        if other == site:
            continue
        cell = cell.clip_halfplane(HalfPlane.bisector_towards(site, other))
        if cell.is_empty:
            break
    return cell


def voronoi_cells(
    sites: typing.Sequence[Point],
    bounds: Rect,
) -> typing.List[ConvexPolygon]:
    """Bounded Voronoi cells for every site, in input order."""
    return [
        voronoi_cell(site, sites[:i] + sites[i + 1 :], bounds)
        for i, site in enumerate(list(sites))
    ]


def closest_site_index(
    point: Point,
    sites: typing.Sequence[Point],
) -> int:
    """Index of the site nearest to *point* (first wins ties).

    Raises
    ------
    ValueError
        If *sites* is empty.
    """
    if not sites:
        raise ValueError("closest site of an empty site set")
    best_index = 0
    best_distance = point.squared_distance_to(sites[0])
    for i in range(1, len(sites)):
        distance = point.squared_distance_to(sites[i])
        if distance < best_distance:
            best_distance = distance
            best_index = i
    return best_index


def closest_site(point: Point, sites: typing.Sequence[Point]) -> Point:
    """The site nearest to *point* (first wins ties)."""
    return sites[closest_site_index(point, sites)]


def closest_site_indices(
    points: typing.Sequence[Point],
    sites: typing.Sequence[Point],
) -> typing.List[int]:
    """Nearest-site index for every point, in one flat-array pass.

    Element-wise identical to :func:`closest_site_index` per point
    (same squared-distance float ops, first site wins ties) — see
    :func:`repro.geometry.kernels.nearest_site_indices`.

    Raises
    ------
    ValueError
        If *sites* is empty and *points* is not.
    """
    return nearest_site_indices(
        [p.x for p in points],
        [p.y for p in points],
        [s.x for s in sites],
        [s.y for s in sites],
    )


class VoronoiDiagram:
    """A bounded Voronoi diagram over a mutable set of named sites.

    This is the analytical counterpart of what the dynamic algorithm
    maintains *implicitly* through message flooding; the experiment
    harness uses it to validate that sensors' distributed ``myrobot``
    choices converge to the true diagram.

    Example::

        diagram = VoronoiDiagram(Rect.square(400.0))
        diagram.set_site("r1", Point(100, 100))
        diagram.set_site("r2", Point(300, 300))
        assert diagram.owner_of(Point(50, 50)) == "r1"
    """

    def __init__(self, bounds: Rect) -> None:
        self.bounds = bounds
        self._sites: typing.Dict[str, Point] = {}
        self._cells: typing.Optional[typing.Dict[str, ConvexPolygon]] = None
        #: Compiled nearest-site classifier over the current sites (see
        #: :func:`repro.geometry.kernels.compile_nearest_site_kernel`),
        #: with the matching name order; rebuilt lazily after any site
        #: change, then reused for every ``owner_of`` query.
        self._classifier: typing.Optional[
            typing.Callable[
                [typing.Sequence[float], typing.Sequence[float]],
                typing.List[int],
            ]
        ] = None
        self._classifier_names: typing.List[str] = []

    # ------------------------------------------------------------------
    # Site management
    # ------------------------------------------------------------------
    def set_site(self, name: str, position: Point) -> None:
        """Add or move the site *name*; invalidates cached cells."""
        self._sites[name] = position
        self._cells = None
        self._classifier = None

    def remove_site(self, name: str) -> None:
        """Remove the site *name* (KeyError if absent)."""
        del self._sites[name]
        self._cells = None
        self._classifier = None

    @property
    def sites(self) -> typing.Dict[str, Point]:
        """A copy of the current name → position mapping."""
        return dict(self._sites)

    def __len__(self) -> int:
        return len(self._sites)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def cell_of(self, name: str) -> ConvexPolygon:
        """The bounded Voronoi cell of site *name*."""
        return self._all_cells()[name]

    def cells(self) -> typing.Dict[str, ConvexPolygon]:
        """All cells, keyed by site name."""
        return dict(self._all_cells())

    def owner_of(self, point: Point) -> str:
        """Name of the site whose cell contains *point*.

        Equivalently the nearest site; ties break by insertion order.
        """
        if not self._sites:
            raise ValueError("diagram has no sites")
        classifier = self._classifier
        if classifier is None:
            names = list(self._sites)
            positions = [self._sites[n] for n in names]
            classifier = compile_nearest_site_kernel(
                [p.x for p in positions], [p.y for p in positions]
            )
            self._classifier = classifier
            self._classifier_names = names
        return self._classifier_names[
            classifier((point.x,), (point.y,))[0]
        ]

    def neighbours_of(self, name: str) -> typing.List[str]:
        """Sites whose cells share a boundary with *name*'s cell.

        Determined by testing whether removing the other site changes the
        cell — simple and reliable at the small site counts used here.
        """
        base_cell = self.cell_of(name)
        position = self._sites[name]
        result = []
        for other, other_pos in self._sites.items():
            if other == name or other_pos == position:
                continue
            others = [
                p
                for n, p in self._sites.items()
                if n not in (name, other)
            ]
            without = voronoi_cell(position, others, self.bounds)
            if _polygon_differs(base_cell, without):
                result.append(other)
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _all_cells(self) -> typing.Dict[str, ConvexPolygon]:
        if self._cells is None:
            names = list(self._sites)
            positions = [self._sites[n] for n in names]
            cells = voronoi_cells(positions, self.bounds)
            self._cells = dict(zip(names, cells))
        return self._cells

    def __repr__(self) -> str:
        return f"<VoronoiDiagram sites={len(self._sites)} bounds={self.bounds!r}>"


def _polygon_differs(
    a: ConvexPolygon, b: ConvexPolygon, tolerance: float = 1e-6
) -> bool:
    """True if the polygons differ by more than *tolerance* in area.

    Good enough for adjacency detection: removing a non-neighbour leaves
    the cell area unchanged; removing a neighbour strictly grows it.
    """
    return abs(a.area - b.area) > tolerance
