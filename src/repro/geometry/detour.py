"""Tangent-segment detours around circular obstacles.

Jam-aware dispatch (degraded-mode extension) plans robot travel around
active jam disks so an en-route robot never drives through a region
where it cannot hear abort or verification messages.  The planner works
on plain disks, so it lives with the rest of the planar geometry rather
than with the fault model.

The shortest obstacle-avoiding path between two points outside a disk
is straight-line → tangent point → arc along the (inflated) circle →
tangent point → straight-line.  :func:`detour_around` returns that path
as a polyline (the arc sampled every ≤ 30°); :func:`plan_route` chains
detours over several disks, handling one obstruction at a time in
travel order.
"""

from __future__ import annotations

import math
import typing

from repro.geometry.kernels import (
    distances_to_point,
    segment_distances_to_points,
)
from repro.geometry.point import Point

__all__ = [
    "segment_distance_to_point",
    "segment_crosses_disk",
    "detour_around",
    "plan_route",
    "polyline_length",
]

_EPS = 1e-9

#: Maximum arc step when sampling the circular part of a detour.
_ARC_STEP_RAD = math.pi / 6
#: Obstructions handled per route before the planner gives up and goes
#: straight — a loop guard, far above any realistic jam count.
_MAX_OBSTACLES = 8


def segment_distance_to_point(a: Point, b: Point, p: Point) -> float:
    """Distance from point *p* to the closed segment ``ab``."""
    d = b - a
    length_sq = d.dot(d)
    if length_sq == 0.0:
        return a.distance_to(p)
    t = (p - a).dot(d) / length_sq
    t = min(1.0, max(0.0, t))
    return a.lerp(b, t).distance_to(p)


def segment_crosses_disk(
    a: Point, b: Point, center: Point, radius: float
) -> bool:
    """True when the open travel leg ``ab`` enters the disk interior.

    Endpoints already inside the disk do not count as a crossing — a
    leg that *starts* or *ends* inside cannot be detoured around, only
    driven.
    """
    if (
        a.distance_to(center) <= radius + _EPS
        or b.distance_to(center) <= radius + _EPS
    ):
        return False
    return segment_distance_to_point(a, b, center) < radius - _EPS


def detour_around(
    a: Point, b: Point, center: Point, radius: float
) -> typing.Tuple[Point, ...]:
    """Waypoints routing ``a → b`` around the disk, excluding ``a``/``b``.

    Returns the empty tuple when the straight leg already clears the
    disk, or when either endpoint is inside it (no detour exists).  The
    returned points run tangent-point → arc samples → tangent-point on
    whichever side gives the shorter total polyline.
    """
    if not segment_crosses_disk(a, b, center, radius):
        return ()

    def tangent_angles(p: Point) -> typing.Tuple[float, float]:
        # Angles (from the centre) of the two points where the tangents
        # from p touch the circle.
        to_p = math.atan2(p.y - center.y, p.x - center.x)
        reach = p.distance_to(center)
        spread = math.acos(min(1.0, radius / reach))
        return (to_p - spread, to_p + spread)

    def on_circle(angle: float) -> Point:
        return Point(
            center.x + radius * math.cos(angle),
            center.y + radius * math.sin(angle),
        )

    a_low, a_high = tangent_angles(a)
    b_low, b_high = tangent_angles(b)

    def arc(start: float, end: float, direction: float) -> typing.List[float]:
        # Angles from start to end travelling in *direction* (+1 CCW).
        span = (end - start) * direction
        span %= 2.0 * math.pi
        steps = max(1, math.ceil(span / _ARC_STEP_RAD))
        return [
            start + direction * span * step / steps
            for step in range(steps + 1)
        ]

    candidates: typing.List[typing.Tuple[float, typing.Tuple[Point, ...]]] = []
    # One candidate per winding direction: leave a at the tangent point
    # matching the direction, walk the arc, leave for b from the
    # matching tangent point on b's side.
    for direction, start_angle, end_angle in (
        (1.0, a_high, b_low),
        (-1.0, a_low, b_high),
    ):
        waypoints = tuple(
            on_circle(angle)
            for angle in arc(start_angle, end_angle, direction)
        )
        path = (a, *waypoints, b)
        candidates.append((polyline_length(path), waypoints))

    candidates.sort(key=lambda item: item[0])
    return candidates[0][1]


def polyline_length(points: typing.Sequence[Point]) -> float:
    """Total length of the polyline through *points*."""
    return sum(
        points[i].distance_to(points[i + 1])
        for i in range(len(points) - 1)
    )


def plan_route(
    start: Point,
    target: Point,
    disks: typing.Sequence[typing.Tuple[Point, float]],
    margin: float = 0.0,
) -> typing.Tuple[Point, ...]:
    """Waypoints from *start* to *target* avoiding ``(center, radius)``
    disks, excluding *start* and including *target* as the final point.

    Disks are inflated by *margin*; each leg is checked against every
    disk and the first obstruction in travel order is detoured around,
    repeating until the path is clear (bounded by a fixed obstacle
    budget).  Legs that begin or end inside a disk are driven straight —
    a repair target inside a jam still has to be reached.
    """
    route: typing.List[Point] = [start, target]
    if not disks:
        return tuple(route[1:])
    # Flatten the disk set once; every leg below runs three batched
    # kernel passes (endpoint distances and segment distance per disk)
    # replicating segment_crosses_disk's float ops disk by disk.
    centers = [center for center, _ in disks]
    center_xs = [center.x for center in centers]
    center_ys = [center.y for center in centers]
    inflated_radii = [radius + margin for _, radius in disks]
    for _ in range(_MAX_OBSTACLES):
        changed = False
        for index in range(len(route) - 1):
            a, b = route[index], route[index + 1]
            from_a = distances_to_point(center_xs, center_ys, a.x, a.y)
            from_b = distances_to_point(center_xs, center_ys, b.x, b.y)
            from_leg = segment_distances_to_points(
                a.x, a.y, b.x, b.y, center_xs, center_ys
            )
            # The nearest obstruction along this leg, by entry distance.
            blocking: typing.Optional[typing.Tuple[float, Point, float]] = None
            for disk_index, inflated in enumerate(inflated_radii):
                # segment_crosses_disk: endpoints inside don't count,
                # and the open leg must enter the disk interior.
                if (
                    from_a[disk_index] <= inflated + _EPS
                    or from_b[disk_index] <= inflated + _EPS
                ):
                    continue
                if from_leg[disk_index] < inflated - _EPS:
                    center = centers[disk_index]
                    along = (center - a).dot((b - a)) if a != b else 0.0
                    if blocking is None or along < blocking[0]:
                        blocking = (along, center, inflated)
            if blocking is None:
                continue
            _, center, inflated = blocking
            waypoints = detour_around(a, b, center, inflated)
            if not waypoints:
                continue
            route[index + 1:index + 1] = list(waypoints)
            changed = True
            break
        if not changed:
            break
    return tuple(route[1:])
