"""Static area partitions for the fixed distributed manager algorithm.

The paper's fixed algorithm divides the field into equal-size subareas,
one robot per subarea (§3.2), and evaluates the square partition ("other
partition methods, e.g. hexagon partition, show negligible difference").
We implement the square grid exactly as in the paper, plus a staggered
("hexagon-like") partition used by the partition-shape ablation bench.
"""

from __future__ import annotations

import abc
import math
import typing

from repro.geometry.point import Point
from repro.geometry.polygon import Rect

__all__ = ["Partition", "SquarePartition", "StaggeredPartition"]


class Partition(abc.ABC):
    """A fixed tessellation of a rectangular field into equal subareas.

    Subareas are indexed ``0 .. count-1``; every point of the field maps
    to exactly one subarea.
    """

    def __init__(self, bounds: Rect, count: int) -> None:
        if count < 1:
            raise ValueError(f"partition needs at least one subarea: {count}")
        self.bounds = bounds
        self.count = count

    @abc.abstractmethod
    def index_of(self, point: Point) -> int:
        """Index of the subarea containing *point* (clamped to the field)."""

    @abc.abstractmethod
    def center_of(self, index: int) -> Point:
        """Geometric centre of subarea *index* — the robot's home post."""

    def centers(self) -> typing.List[Point]:
        """Centres of all subareas in index order."""
        return [self.center_of(i) for i in range(self.count)]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.count:
            raise IndexError(
                f"subarea index {index} out of range 0..{self.count - 1}"
            )


class SquarePartition(Partition):
    """The paper's square partition: a ``cols × rows`` grid of squares.

    For the paper's scenarios the robot count is a perfect square
    (4, 9, 16) and the field is square, so every subarea is a
    200 m × 200 m square.  Non-square counts are laid out as the most
    balanced ``cols × rows`` grid with ``cols * rows == count``.
    """

    def __init__(self, bounds: Rect, count: int) -> None:
        super().__init__(bounds, count)
        self.cols, self.rows = _balanced_grid(count)
        self._cell_width = bounds.width / self.cols
        self._cell_height = bounds.height / self.rows

    def index_of(self, point: Point) -> int:
        clamped = self.bounds.clamp(point)
        col = min(
            int((clamped.x - self.bounds.x_min) / self._cell_width),
            self.cols - 1,
        )
        row = min(
            int((clamped.y - self.bounds.y_min) / self._cell_height),
            self.rows - 1,
        )
        return row * self.cols + col

    def center_of(self, index: int) -> Point:
        self._check_index(index)
        row, col = divmod(index, self.cols)
        return Point(
            self.bounds.x_min + (col + 0.5) * self._cell_width,
            self.bounds.y_min + (row + 0.5) * self._cell_height,
        )

    def rect_of(self, index: int) -> Rect:
        """The rectangle of subarea *index*."""
        self._check_index(index)
        row, col = divmod(index, self.cols)
        return Rect(
            self.bounds.x_min + col * self._cell_width,
            self.bounds.y_min + row * self._cell_height,
            self.bounds.x_min + (col + 1) * self._cell_width,
            self.bounds.y_min + (row + 1) * self._cell_height,
        )

    def __repr__(self) -> str:
        return (
            f"<SquarePartition {self.cols}x{self.rows} over {self.bounds!r}>"
        )


class StaggeredPartition(Partition):
    """A hexagon-like partition: Voronoi cells of a staggered lattice.

    Row centres alternate a quarter-cell left/right of the square grid's
    centres, and each point belongs to the *closest* centre — producing
    hexagon-ish, connected, near-equal cells (a true hexagonal packing's
    neighbour structure) without any wrap-around at the field edges.
    The paper reports the partition shape makes "negligible difference";
    the ablation bench :mod:`benchmarks.test_ablation_partition`
    verifies that claim against this layout.
    """

    def __init__(self, bounds: Rect, count: int) -> None:
        super().__init__(bounds, count)
        self.cols, self.rows = _balanced_grid(count)
        self._cell_width = bounds.width / self.cols
        self._cell_height = bounds.height / self.rows
        self._centers = [
            self._lattice_center(index) for index in range(count)
        ]

    def _lattice_center(self, index: int) -> Point:
        row, col = divmod(index, self.cols)
        offset = (self._cell_width / 4.0) * (1 if row % 2 else -1)
        x = self.bounds.x_min + (col + 0.5) * self._cell_width + offset
        y = self.bounds.y_min + (row + 0.5) * self._cell_height
        return self.bounds.clamp(Point(x, y))

    def index_of(self, point: Point) -> int:
        clamped = self.bounds.clamp(point)
        best_index = 0
        best_d2 = clamped.squared_distance_to(self._centers[0])
        for index in range(1, self.count):
            d2 = clamped.squared_distance_to(self._centers[index])
            if d2 < best_d2:
                best_d2 = d2
                best_index = index
        return best_index

    def center_of(self, index: int) -> Point:
        self._check_index(index)
        return self._centers[index]

    def __repr__(self) -> str:
        return (
            f"<StaggeredPartition {self.cols}x{self.rows} "
            f"over {self.bounds!r}>"
        )


def _balanced_grid(count: int) -> typing.Tuple[int, int]:
    """The ``(cols, rows)`` factorisation of *count* closest to square.

    Perfect squares give ``(√count, √count)`` — the paper's layouts.
    """
    best = (count, 1)
    for rows in range(1, int(math.isqrt(count)) + 1):
        if count % rows == 0:
            best = (count // rows, rows)
    return best
