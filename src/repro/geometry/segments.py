"""Segment intersection helpers used by face routing.

Face routing changes faces when the edge it is about to traverse crosses
the line segment from the perimeter-entry point to the destination; this
module provides the exact predicate and the crossing point.
"""

from __future__ import annotations

import typing

from repro.geometry.point import Point

__all__ = ["orientation", "segments_intersect", "segment_intersection"]

_EPS = 1e-12


def orientation(a: Point, b: Point, c: Point) -> float:
    """Signed area orientation of the triple (a, b, c).

    Positive for counter-clockwise, negative for clockwise, ~0 for
    collinear.
    """
    return (b - a).cross(c - a)


def segments_intersect(
    p1: Point, p2: Point, p3: Point, p4: Point
) -> bool:
    """True if closed segments ``p1p2`` and ``p3p4`` intersect."""
    return segment_intersection(p1, p2, p3, p4) is not None


def segment_intersection(
    p1: Point, p2: Point, p3: Point, p4: Point
) -> typing.Optional[Point]:
    """Intersection point of segments ``p1p2`` and ``p3p4``, or None.

    For collinear overlapping segments an arbitrary shared point is
    returned (the start of the overlap); face routing only needs *a*
    crossing witness, not a canonical one.
    """
    d1 = p2 - p1
    d2 = p4 - p3
    denom = d1.cross(d2)
    delta = p3 - p1

    if abs(denom) < _EPS:
        # Parallel.  Check collinearity, then 1-D overlap.
        if abs(delta.cross(d1)) > _EPS:
            return None
        # Project onto the dominant axis of d1.
        length_sq = d1.dot(d1)
        if length_sq < _EPS:
            # p1p2 is a point.
            if _point_on_segment(p1, p3, p4):
                return p1
            return None
        t3 = delta.dot(d1) / length_sq
        t4 = (p4 - p1).dot(d1) / length_sq
        lo, hi = min(t3, t4), max(t3, t4)
        overlap_lo = max(0.0, lo)
        overlap_hi = min(1.0, hi)
        if overlap_lo > overlap_hi + _EPS:
            return None
        return p1.lerp(p2, overlap_lo)

    t = delta.cross(d2) / denom
    u = delta.cross(d1) / denom
    if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
        return p1.lerp(p2, min(max(t, 0.0), 1.0))
    return None


def _point_on_segment(p: Point, a: Point, b: Point) -> bool:
    """True if *p* lies on segment ``ab`` (assumes collinearity)."""
    return (
        min(a.x, b.x) - _EPS <= p.x <= max(a.x, b.x) + _EPS
        and min(a.y, b.y) - _EPS <= p.y <= max(a.y, b.y) + _EPS
    )
