"""``python -m repro.lint`` — module entry for the determinism linter."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
