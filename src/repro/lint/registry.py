"""Rule model and registry for the determinism linter.

A rule is a class with a ``rule_id`` (``R1`` ... ``R5``), a short name,
a prose description of the determinism contract it protects, and a
``check`` method that walks one file's AST and yields
:class:`Violation` records.  Rules self-register via :func:`register`
so the engine, the CLI's ``--list-rules``, and the docs all see the
same catalogue.
"""

from __future__ import annotations

import ast
import dataclasses
import typing

__all__ = [
    "FileContext",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "register",
    "rule_ids",
]


@dataclasses.dataclass(frozen=True, order=True)
class Violation:
    """One lint finding, pinned to a file position."""

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The canonical ``file:line rule-id message`` form."""
        return f"{self.path}:{self.line} {self.rule_id} {self.message}"

    def as_dict(self) -> typing.Dict[str, typing.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one file.

    ``path`` is the path as given to the engine, normalised to forward
    slashes so exemption patterns match on every platform.
    """

    path: str
    tree: ast.AST
    lines: typing.Sequence[str]
    config: typing.Any  # repro.lint.config.LintConfig (no import cycle)


class Rule:
    """Base class for lint rules."""

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check(
        self, context: FileContext
    ) -> typing.Iterator[Violation]:  # pragma: no cover - interface
        raise NotImplementedError

    def violation(
        self, context: FileContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` at *node*'s position."""
        return Violation(
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: typing.Dict[str, Rule] = {}


def register(rule_class: typing.Type[Rule]) -> typing.Type[Rule]:
    """Class decorator adding one instance of *rule_class* to the registry."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"rule {rule_class.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def all_rules() -> typing.List[Rule]:
    """Every registered rule, ordered by rule id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def rule_ids() -> typing.List[str]:
    return sorted(_REGISTRY)
