"""Rule model and registry for the determinism linter.

A rule is a class with a ``rule_id`` (``R1`` ... ``R10``), a short name,
a prose description of the determinism contract it protects, and a
``check`` method that yields :class:`Violation` records.  Rules
self-register via :func:`register` so the engine, the CLI's
``--list-rules``, and the docs all see the same catalogue.

Two scopes exist:

* **file** rules (:class:`Rule`) walk one file's AST in isolation;
* **project** rules (:class:`ProjectRule`) receive a
  :class:`repro.lint.project.ProjectContext` — every module under the
  linted paths, with import tables and symbol tables — and may reason
  across module boundaries (ownership, reachability, schema drift).
"""

from __future__ import annotations

import ast
import dataclasses
import typing

__all__ = [
    "FileContext",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "file_rules",
    "get_rule",
    "project_rules",
    "register",
    "rule_ids",
]


@dataclasses.dataclass(frozen=True, order=True)
class Violation:
    """One lint finding, pinned to a file position."""

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The canonical ``file:line rule-id message`` form."""
        return f"{self.path}:{self.line} {self.rule_id} {self.message}"

    def as_dict(self) -> typing.Dict[str, typing.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one file.

    ``path`` is the path as given to the engine, normalised to forward
    slashes so exemption patterns match on every platform.
    """

    path: str
    tree: ast.AST
    lines: typing.Sequence[str]
    config: typing.Any  # repro.lint.config.LintConfig (no import cycle)
    #: Dotted module name (``repro.net.channel``) when derivable from
    #: the path; lets rules resolve relative imports.
    module_name: typing.Optional[str] = None
    #: True when the file is a package ``__init__.py``.
    is_package: bool = False


class Rule:
    """Base class for file-scoped lint rules."""

    rule_id: str = ""
    name: str = ""
    description: str = ""
    #: ``"file"`` rules see one file at a time; ``"project"`` rules see
    #: the whole linted tree (:class:`ProjectRule`).
    scope: str = "file"

    def check(
        self, context: FileContext
    ) -> typing.Iterator[Violation]:  # pragma: no cover - interface
        raise NotImplementedError

    def violation(
        self, context: FileContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` at *node*'s position."""
        return Violation(
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program (cross-module) lint rules.

    The engine calls :meth:`check_project` once per run with the
    :class:`~repro.lint.project.ProjectContext` built over every linted
    file; suppressions still apply per violation via the owning file's
    ``# simlint:`` comments.
    """

    scope = "project"

    def check(
        self, context: FileContext
    ) -> typing.Iterator[Violation]:
        """Project rules do not run in the single-file pass."""
        return iter(())

    def check_project(
        self, project: typing.Any
    ) -> typing.Iterator[Violation]:  # pragma: no cover - interface
        raise NotImplementedError

    def violation_at(
        self,
        path: str,
        node: ast.AST,
        message: str,
    ) -> Violation:
        """Build a :class:`Violation` at *node*'s position in *path*."""
        return Violation(
            path=path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: typing.Dict[str, Rule] = {}


def register(rule_class: typing.Type[Rule]) -> typing.Type[Rule]:
    """Class decorator adding one instance of *rule_class* to the registry."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"rule {rule_class.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def _rule_sort_key(rule_id: str) -> typing.Tuple[str, int, str]:
    """Sort ``R2`` before ``R10``: split the id into prefix + number."""
    digits = "".join(ch for ch in rule_id if ch.isdigit())
    prefix = rule_id[: len(rule_id) - len(digits)] if digits else rule_id
    return (prefix, int(digits) if digits else 0, rule_id)


def all_rules() -> typing.List[Rule]:
    """Every registered rule, ordered by rule id (numerically aware)."""
    return [
        _REGISTRY[rule_id]
        for rule_id in sorted(_REGISTRY, key=_rule_sort_key)
    ]


def file_rules() -> typing.List[Rule]:
    """Registered file-scoped rules, ordered by rule id."""
    return [rule for rule in all_rules() if rule.scope == "file"]


def project_rules() -> typing.List[Rule]:
    """Registered project-scoped rules, ordered by rule id."""
    return [rule for rule in all_rules() if rule.scope == "project"]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def rule_ids() -> typing.List[str]:
    return sorted(_REGISTRY, key=_rule_sort_key)
