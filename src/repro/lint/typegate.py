"""``repro.lint.typegate`` — the ``mypy --strict`` ratchet.

Runs ``mypy --strict`` over ``src/repro`` and compares the findings to
a checked-in baseline, so the type debt can only shrink:

* an error whose fingerprint (``path:code:message``) appears in the
  baseline is *grandfathered* — reported as baseline, exit 0;
* a baseline line ``path::*`` grandfathers every error in that file
  (used to seed the baseline on an existing tree);
* any error **not** in the baseline fails the gate (exit 1) — new code
  and new files must type-check strictly.

mypy is an optional tool: the runtime has zero third-party
dependencies, and so does the simulator's test suite.  When mypy is
not importable the gate **skips** with a notice (exit 0) unless
``--require`` is given (exit 3) — CI installs mypy and passes
``--require``; a bare checkout stays runnable.

Usage::

    python -m repro.lint.typegate                # gate against baseline
    python -m repro.lint.typegate --require      # fail if mypy missing
    python -m repro.lint.typegate --update-baseline   # rewrite baseline

Exit codes: 0 gate passed (or skipped), 1 new type errors, 2 usage
error, 3 mypy unavailable under ``--require``.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import re
import subprocess
import sys
import typing

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_PATHS",
    "fingerprint",
    "load_baseline",
    "main",
    "mypy_available",
    "parse_mypy_output",
    "run_gate",
]

DEFAULT_PATHS = ("src/repro",)
DEFAULT_BASELINE = os.path.join(
    "tests", "baselines", "mypy_strict_baseline.txt"
)

#: ``path:line: error: message  [code]`` as mypy prints it.
_ERROR_PATTERN = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+)(?::\d+)?:\s*error:\s*"
    r"(?P<message>.*?)(?:\s+\[(?P<code>[a-z0-9-]+)\])?$"
)


def mypy_available() -> bool:
    """True when ``python -m mypy`` can run in this interpreter."""
    return importlib.util.find_spec("mypy") is not None


def _normalize_path(path: str) -> str:
    normalized = path.replace(os.sep, "/")
    if normalized.startswith("./"):
        normalized = normalized[2:]
    if normalized.startswith("src/"):
        normalized = normalized[len("src/"):]
    return normalized


def fingerprint(path: str, code: str, message: str) -> str:
    """Stable identity of one mypy error, line-number free.

    Line numbers churn with every edit; ``path:code:message`` survives
    unrelated changes to the same file.
    """
    return f"{_normalize_path(path)}:{code}:{message.strip()}"


def parse_mypy_output(
    lines: typing.Iterable[str],
) -> typing.List[typing.Tuple[str, str]]:
    """``(fingerprint, rendered line)`` for each error in mypy output."""
    findings: typing.List[typing.Tuple[str, str]] = []
    for line in lines:
        match = _ERROR_PATTERN.match(line.strip())
        if not match:
            continue
        findings.append(
            (
                fingerprint(
                    match.group("path"),
                    match.group("code") or "misc",
                    match.group("message"),
                ),
                line.strip(),
            )
        )
    return findings


def load_baseline(path: str) -> typing.Tuple[
    typing.Set[str], typing.Set[str]
]:
    """``(exact fingerprints, wildcarded module paths)`` from *path*.

    Missing baseline means an empty baseline: everything is new.
    """
    exact: typing.Set[str] = set()
    wildcards: typing.Set[str] = set()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                if line.endswith("::*"):
                    wildcards.add(line[: -len("::*")])
                else:
                    exact.add(line)
    except OSError:
        pass
    return exact, wildcards


def _run_mypy(
    paths: typing.Sequence[str],
) -> typing.Tuple[int, typing.List[str]]:
    process = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--strict",
            "--no-error-summary",
            "--hide-error-context",
            *paths,
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    output = process.stdout.splitlines() + process.stderr.splitlines()
    return process.returncode, output


def run_gate(
    paths: typing.Sequence[str],
    baseline_path: str,
    update_baseline: bool = False,
) -> typing.Tuple[int, typing.List[str]]:
    """Run mypy and apply the baseline; returns ``(exit code, report)``."""
    returncode, output = _run_mypy(paths)
    findings = parse_mypy_output(output)
    if returncode not in (0, 1):
        # Crash or usage error: surface mypy's own output verbatim.
        return returncode, output

    if update_baseline:
        lines = [
            "# mypy --strict baseline for src/repro.",
            "# One fingerprint per line: path:error-code:message.",
            "# `path::*` grandfathers every error in that module.",
            "# Regenerate: python -m repro.lint.typegate "
            "--update-baseline",
        ]
        lines.extend(
            sorted({found_fingerprint for found_fingerprint, _ in findings})
        )
        os.makedirs(os.path.dirname(baseline_path) or ".", exist_ok=True)
        with open(baseline_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        return 0, [
            f"baseline rewritten with {len(findings)} "
            f"fingerprint(s): {baseline_path}"
        ]

    exact, wildcards = load_baseline(baseline_path)
    new_errors = [
        rendered
        for found_fingerprint, rendered in findings
        if found_fingerprint not in exact
        and found_fingerprint.split(":", 1)[0] not in wildcards
    ]
    if new_errors:
        report = [
            f"{len(new_errors)} type error(s) not in the baseline "
            f"({baseline_path}):"
        ]
        report.extend(new_errors)
        report.append(
            "fix them, or (for pre-existing debt only) regenerate the "
            "baseline with --update-baseline"
        )
        return 1, report
    grandfathered = len(findings) - len(new_errors)
    return 0, [
        "mypy --strict gate passed: no new type errors "
        f"({grandfathered} grandfathered by {baseline_path})"
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-typegate",
        description=(
            "mypy --strict over src/repro, gated by a checked-in "
            "baseline so type debt only shrinks"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="paths to type-check (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings",
    )
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 3) when mypy is not installed, instead of "
        "skipping",
    )
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not mypy_available():
        if args.require:
            print(
                "repro-typegate: mypy is not installed and --require "
                "was given (pip install mypy)",
                file=sys.stderr,
            )
            return 3
        print(
            "repro-typegate: mypy not installed; gate skipped "
            "(install mypy or run in CI to enforce)"
        )
        return 0
    exit_code, report = run_gate(
        args.paths, args.baseline, update_baseline=args.update_baseline
    )
    stream = sys.stdout if exit_code == 0 else sys.stderr
    for line in report:
        print(line, file=stream)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
