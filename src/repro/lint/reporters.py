"""Render lint findings as text, JSON, or SARIF.

The text form is the grep-able contract promised by the CLI:
``file:line rule-id message``, one violation per line, followed by a
one-line summary on stderr-friendly plain text.  The JSON form carries
the same data plus the rule catalogue for tooling.  The SARIF form is
a minimal SARIF 2.1.0 log that CI code-scanning uploads understand —
one run, one rule descriptor per registered rule, one result per
violation.
"""

from __future__ import annotations

import json
import typing

from repro.lint.registry import Violation, all_rules

__all__ = ["render_text", "render_json", "render_sarif", "REPORTERS"]


def render_text(
    violations: typing.Sequence[Violation], files_checked: int
) -> str:
    """One ``file:line rule-id message`` line per violation + summary."""
    lines = [violation.render() for violation in violations]
    noun = "file" if files_checked == 1 else "files"
    if violations:
        lines.append(
            f"{len(violations)} violation"
            f"{'' if len(violations) == 1 else 's'} "
            f"in {files_checked} {noun}"
        )
    else:
        lines.append(f"clean: {files_checked} {noun} checked")
    return "\n".join(lines)


def render_json(
    violations: typing.Sequence[Violation], files_checked: int
) -> str:
    """A JSON document with violations, counts, and the rule catalogue."""
    document = {
        "files_checked": files_checked,
        "violation_count": len(violations),
        "violations": [violation.as_dict() for violation in violations],
        "rules": {
            rule.rule_id: {"name": rule.name, "description": rule.description}
            for rule in all_rules()
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(
    violations: typing.Sequence[Violation], files_checked: int
) -> str:
    """A SARIF 2.1.0 log for CI code-scanning annotation.

    *files_checked* has no SARIF slot; it rides along as a run
    property so the number still appears in uploaded artifacts.
    """
    results = [
        {
            "ruleId": violation.rule_id,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.column + 1,
                        },
                    }
                }
            ],
        }
        for violation in violations
    ]
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [
                            {
                                "id": rule.rule_id,
                                "name": rule.name,
                                "shortDescription": {
                                    "text": rule.description
                                },
                            }
                            for rule in all_rules()
                        ],
                    }
                },
                "results": results,
                "properties": {"filesChecked": files_checked},
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


REPORTERS: typing.Dict[
    str, typing.Callable[[typing.Sequence[Violation], int], str]
] = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
