"""Render lint findings as text or JSON.

The text form is the grep-able contract promised by the CLI:
``file:line rule-id message``, one violation per line, followed by a
one-line summary on stderr-friendly plain text.  The JSON form carries
the same data plus the rule catalogue for tooling.
"""

from __future__ import annotations

import json
import typing

from repro.lint.registry import Violation, all_rules

__all__ = ["render_text", "render_json", "REPORTERS"]


def render_text(
    violations: typing.Sequence[Violation], files_checked: int
) -> str:
    """One ``file:line rule-id message`` line per violation + summary."""
    lines = [violation.render() for violation in violations]
    noun = "file" if files_checked == 1 else "files"
    if violations:
        lines.append(
            f"{len(violations)} violation"
            f"{'' if len(violations) == 1 else 's'} "
            f"in {files_checked} {noun}"
        )
    else:
        lines.append(f"clean: {files_checked} {noun} checked")
    return "\n".join(lines)


def render_json(
    violations: typing.Sequence[Violation], files_checked: int
) -> str:
    """A JSON document with violations, counts, and the rule catalogue."""
    document = {
        "files_checked": files_checked,
        "violation_count": len(violations),
        "violations": [violation.as_dict() for violation in violations],
        "rules": {
            rule.rule_id: {"name": rule.name, "description": rule.description}
            for rule in all_rules()
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


REPORTERS: typing.Dict[
    str, typing.Callable[[typing.Sequence[Violation], int], str]
] = {
    "text": render_text,
    "json": render_json,
}
