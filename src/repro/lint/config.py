"""Linter configuration: rule selection, exemptions, and heuristics.

The defaults encode this repository's determinism contract (e.g. only
``repro/sim/rng.py`` may import the stdlib ``random`` module).  Projects
can extend them from ``pyproject.toml``::

    [tool.simlint]
    select = ["R1", "R2", "R3", "R4", "R5"]
    sinks = ["my_scheduler"]

    [tool.simlint.exempt]
    R1 = ["repro/sim/rng.py", "tools/*.py"]

Patterns match with :mod:`fnmatch` against the forward-slash path, and a
plain pattern also matches as a path suffix, so ``repro/sim/rng.py``
exempts that file wherever the tree is checked out.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import typing

__all__ = ["LintConfig", "DEFAULT_CONFIG", "load_config", "path_matches"]

#: Calls that feed the event queue, the flooding layer, or neighbor
#: selection — the places where nondeterministic iteration order (R3)
#: changes a seeded run's event schedule.
DEFAULT_SINK_NAMES = frozenset(
    {
        # event-queue scheduling (repro.sim.engine)
        "call_at",
        "call_in",
        "schedule",
        "process",
        "timeout",
        # flooding / transmission (repro.core.messages, repro.net)
        "broadcast",
        "flood",
        "relay",
        "send",
        "transmit",
        "enqueue",
        # neighbor / guardian selection (repro.net.neighbors, repro.core)
        "choose_guardian",
        "select_guardian",
        "pick_neighbor",
        "nearest",
    }
)

#: Dotted call targets that read the wall clock (R2).
DEFAULT_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Identifier shapes treated as simulation timestamps by R4.  An
#: attribute or variable is "time-like" when it is exactly one of the
#: exact names, or ends in one of the suffixes (``death_time``,
#: ``arrival_time``, ...).
DEFAULT_TIME_EXACT_NAMES = frozenset({"now", "deadline", "timestamp"})
DEFAULT_TIME_SUFFIXES = ("_time", "_time_s", "_at")

#: Epoch-guarded classes for R6.  For each class name: the epoch
#: attribute, the fields whose mutation must bump it, and the cache
#: fields whose *population* must consult it (deleting/clearing a cache
#: entry is always safe).  The fields listed here are also ownership-
#: checked project-wide: no module other than the class's defining
#: module may reach into them through a non-``self`` receiver.
DEFAULT_EPOCH_SPECS: typing.Mapping[
    str, typing.Mapping[str, typing.Tuple[str, ...]]
] = {
    "SpatialGrid": {
        "epoch": ("epoch",),
        "mutated": ("_cells", "_positions"),
        "caches": ("_memo",),
    },
    "Channel": {
        "epoch": ("epoch",),
        "mutated": (),
        "caches": ("_receiver_cache",),
    },
}

#: Calls whose results are shared, epoch-keyed cache entries (R6): the
#: returned list must be treated as read-only, so mutating it in place
#: (``.append``/``.sort``/...) corrupts every later cache hit.
DEFAULT_SHARED_RESULT_CALLS = frozenset({"receivers_of"})

#: Scheduling sinks that accept a callback/process, and the positional
#: slot it occupies — the seeds of R8's reachability walk.
DEFAULT_SCHEDULE_CALLBACK_SLOTS: typing.Mapping[str, int] = {
    "call_in": 1,
    "call_at": 1,
    "process": 0,
}

#: Unit suffix vocabulary for R10.  Longest suffix wins, so
#: ``area_per_robot_m2`` reads as square metres, not metres.
DEFAULT_UNIT_SUFFIXES: typing.Mapping[str, str] = {
    "_s": "s",
    "_m": "m",
    "_mps": "m/s",
    "_m2": "m2",
    "_bits": "bit",
    "_bps": "bit/s",
}


def path_matches(path: str, pattern: str) -> bool:
    """True if *pattern* fnmatch-es *path* or is a suffix of it."""
    if fnmatch.fnmatch(path, pattern):
        return True
    return path.endswith(pattern) or path == pattern


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Immutable linter settings shared by all rules in one run."""

    #: Rule ids to run; ``None`` means every registered rule.
    select: typing.Optional[typing.Tuple[str, ...]] = None
    #: rule id -> path patterns where the rule is off entirely.
    exemptions: typing.Mapping[str, typing.Tuple[str, ...]] = (
        dataclasses.field(
            default_factory=lambda: {
                "R1": ("repro/sim/rng.py",),
                # The Tracer class itself (emit's definition and the
                # sink dispatch) is the one place R7 must not fire.
                "R7": ("repro/sim/trace.py",),
            }
        )
    )
    sink_names: typing.FrozenSet[str] = DEFAULT_SINK_NAMES
    wall_clock_calls: typing.FrozenSet[str] = DEFAULT_WALL_CLOCK_CALLS
    time_exact_names: typing.FrozenSet[str] = DEFAULT_TIME_EXACT_NAMES
    time_suffixes: typing.Tuple[str, ...] = DEFAULT_TIME_SUFFIXES
    epoch_specs: typing.Mapping[
        str, typing.Mapping[str, typing.Tuple[str, ...]]
    ] = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_EPOCH_SPECS)
    )
    shared_result_calls: typing.FrozenSet[str] = (
        DEFAULT_SHARED_RESULT_CALLS
    )
    schedule_callback_slots: typing.Mapping[str, int] = (
        dataclasses.field(
            default_factory=lambda: dict(DEFAULT_SCHEDULE_CALLBACK_SLOTS)
        )
    )
    unit_suffixes: typing.Mapping[str, str] = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_UNIT_SUFFIXES)
    )

    def rule_enabled(self, rule_id: str) -> bool:
        return self.select is None or rule_id in self.select

    def is_exempt(self, path: str, rule_id: str) -> bool:
        """True when *rule_id* must not run against *path* at all."""
        patterns = self.exemptions.get(rule_id, ())
        return any(path_matches(path, pattern) for pattern in patterns)

    def replace(self, **changes: typing.Any) -> "LintConfig":
        return dataclasses.replace(self, **changes)


DEFAULT_CONFIG = LintConfig()


def _load_toml(path: str) -> typing.Optional[typing.Mapping[str, typing.Any]]:
    try:
        import tomllib
    except ImportError:  # pragma: no cover - python < 3.11
        return None
    try:
        with open(path, "rb") as handle:
            return tomllib.load(handle)
    except (OSError, ValueError):
        return None


def load_config(
    pyproject_path: typing.Optional[str] = None,
) -> LintConfig:
    """Defaults merged with ``[tool.simlint]`` from *pyproject_path*.

    Missing file, missing table, or a Python without :mod:`tomllib` all
    fall back to :data:`DEFAULT_CONFIG` — configuration is additive,
    never required.
    """
    if pyproject_path is None:
        return DEFAULT_CONFIG
    document = _load_toml(pyproject_path)
    if not document:
        return DEFAULT_CONFIG
    table = document.get("tool", {}).get("simlint", {})
    if not isinstance(table, dict) or not table:
        return DEFAULT_CONFIG

    changes: typing.Dict[str, typing.Any] = {}
    select = table.get("select")
    if isinstance(select, list) and select:
        changes["select"] = tuple(str(rule) for rule in select)
    sinks = table.get("sinks")
    if isinstance(sinks, list):
        changes["sink_names"] = DEFAULT_SINK_NAMES | frozenset(
            str(name) for name in sinks
        )
    exempt = table.get("exempt")
    if isinstance(exempt, dict):
        merged = {
            rule: tuple(patterns)
            for rule, patterns in DEFAULT_CONFIG.exemptions.items()
        }
        for rule, patterns in exempt.items():
            if isinstance(patterns, list):
                merged[str(rule)] = merged.get(str(rule), ()) + tuple(
                    str(p) for p in patterns
                )
        changes["exemptions"] = merged
    return DEFAULT_CONFIG.replace(**changes) if changes else DEFAULT_CONFIG
