"""``repro-lint`` — the determinism linter's command line.

Usage::

    repro-lint src/                 # lint a tree, exit 1 on violations
    repro-lint --list-rules         # print the rule catalogue
    repro-lint --format json src/   # machine-readable report
    python -m repro.lint src/       # same tool, module form

Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import os
import sys
import typing

from repro.lint.config import DEFAULT_CONFIG, load_config
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules, rule_ids
from repro.lint.reporters import REPORTERS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism linter for the simulator: checks that "
            "randomness flows through RandomStreams (R1), nothing reads "
            "the wall clock (R2), unordered collections stay out of "
            "scheduling paths (R3), simulation times are never compared "
            "exactly (R4), mutable defaults / bare except are absent "
            "(R5) — plus whole-program passes for epoch-cache integrity "
            "(R6), trace guards (R7), sim-races on shared state (R8), "
            "serialization drift (R9), and unit-suffix consistency "
            "(R10)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--pyproject",
        metavar="FILE",
        default=None,
        help=(
            "pyproject.toml to read [tool.simlint] from (default: "
            "./pyproject.toml when present)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker threads for the per-file pass (default: 1; the "
            "report is identical at any worker count)"
        ),
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help=(
            "skip the cross-module pass (R6/R8/R9); useful when "
            "linting a fragment outside its tree"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id}  {rule.name}")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    pyproject = args.pyproject
    if pyproject is None and os.path.isfile("pyproject.toml"):
        pyproject = "pyproject.toml"
    config = load_config(pyproject) if pyproject else DEFAULT_CONFIG

    if args.select:
        selected = tuple(
            rule.strip().upper()
            for rule in args.select.split(",")
            if rule.strip()
        )
        unknown = sorted(set(selected) - set(rule_ids()))
        if unknown:
            print(
                f"repro-lint: unknown rule ids: {', '.join(unknown)} "
                f"(known: {', '.join(rule_ids())})",
                file=sys.stderr,
            )
            return 2
        config = config.replace(select=selected)

    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        print(
            f"repro-lint: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    if args.jobs < 1:
        print("repro-lint: --jobs must be >= 1", file=sys.stderr)
        return 2

    violations, files_checked = lint_paths(
        args.paths,
        config=config,
        jobs=args.jobs,
        project_scope=not args.no_project,
    )
    print(REPORTERS[args.format](violations, files_checked))
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
