"""Whole-program invariant rules, R6–R10.

These protect the *cross-module* contracts that keep the reproduction's
guarantees (every failed sensor replaced exactly once, bit-identical
replays) true through hot-path rewrites:

* **R6** — epoch-cache integrity: mutations of ``SpatialGrid`` node
  state bump the epoch, cache population consults it, nobody reaches
  into another module's epoch-guarded private state, and nobody
  mutates a shared cached receiver list in place.
* **R7** — trace-guard discipline: every ``tracer.emit`` call sits
  under a ``tracer.active`` guard (directly or via a hoisted flag).
* **R8** — sim-race detector: event handlers reachable from the
  scheduler must not write module-global or class-global mutable
  state; such state survives across runs and replicates, so
  same-timestamp handlers stop replaying deterministically.
* **R9** — serialization drift: every dataclass field of a class with
  a ``to_json_dict``/``from_json_dict`` pair must round-trip through
  both, or the store schema silently rots.
* **R10** — unit-suffix consistency: a ``_s``/``_m``/``_mps``-suffixed
  name is never assigned from (or compared against) an expression of a
  different unit.

R6, R8, and R9 are project rules (they need the
:class:`~repro.lint.project.ProjectContext`); R7 and R10 are
file-scoped and run in the per-file pass alongside R1–R5.
"""

from __future__ import annotations

import ast
import typing

from repro.lint.registry import (
    FileContext,
    ProjectRule,
    Rule,
    Violation,
    register,
)
from repro.lint.rules import ImportTable, _call_name

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ModuleInfo, ProjectContext

__all__ = [
    "EpochCacheIntegrity",
    "TraceGuard",
    "SimRaceDetector",
    "SerializationDrift",
    "UnitSuffixConsistency",
]

#: Method calls that mutate a list/dict/set receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "add",
        "discard",
    }
)

#: ... of which these only *remove* entries; deleting from a cache can
#: never serve stale data, so R6 exempts them from the epoch consult.
_DELETION_METHODS = frozenset({"pop", "popitem", "clear", "discard"})

#: Free functions that mutate their first argument in place.
_MUTATING_FUNCTIONS = frozenset(
    {"insort", "insort_left", "insort_right", "heappush", "heappop"}
)


def _receiver_field(
    node: ast.AST, aliases: typing.Mapping[str, str]
) -> typing.Optional[str]:
    """The ``self.<field>`` an expression is rooted in, if any.

    Follows subscripts, attribute chains, and ``setdefault``/``get``
    calls downward, and resolves local aliases (``bucket =
    self._cells[cell]``) through *aliases*.
    """
    while True:
        if isinstance(node, ast.Name):
            return aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")
            ):
                return node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


def _local_aliases(
    function: ast.FunctionDef, fields: typing.Container[str]
) -> typing.Dict[str, str]:
    """Local names bound to (parts of) ``self.<field>`` containers."""
    aliases: typing.Dict[str, str] = {}
    for node in ast.walk(function):
        if not isinstance(node, ast.Assign):
            continue
        if len(node.targets) != 1 or not isinstance(
            node.targets[0], ast.Name
        ):
            continue
        field = _receiver_field(node.value, aliases)
        if field in fields if field is not None else False:
            aliases[node.targets[0].id] = typing.cast(str, field)
    return aliases


@register
class EpochCacheIntegrity(ProjectRule):
    """R6: epoch counters and the caches keyed on them stay in sync."""

    rule_id = "R6"
    name = "epoch-cache-integrity"
    description = (
        "Methods mutating epoch-guarded state (SpatialGrid cells/"
        "positions) must bump the epoch counter (directly or via every "
        "caller); cache population (receiver sets, query memos) must "
        "consult the epoch in the same method; epoch-guarded private "
        "fields are owned by their defining module; and shared cached "
        "result lists (receivers_of) are read-only."
    )

    def check_project(
        self, project: "ProjectContext"
    ) -> typing.Iterator[Violation]:
        specs = project.config.epoch_specs
        owners: typing.Dict[str, typing.Set[str]] = {}
        for class_name in sorted(specs):
            spec = specs[class_name]
            guarded = tuple(spec.get("mutated", ())) + tuple(
                spec.get("caches", ())
            )
            for module, class_node in project.find_class(class_name):
                yield from self._check_class(
                    module, class_node, spec, class_name
                )
                for field in guarded:
                    owners.setdefault(field, set()).add(module.path)
        yield from self._check_ownership(project, owners)
        yield from self._check_shared_results(project)

    # ------------------------------------------------------------------
    # Intra-class: mutation must bump, population must consult
    # ------------------------------------------------------------------
    def _check_class(
        self,
        module: "ModuleInfo",
        class_node: ast.ClassDef,
        spec: typing.Mapping[str, typing.Tuple[str, ...]],
        class_name: str,
    ) -> typing.Iterator[Violation]:
        epoch_attrs = set(spec.get("epoch", ()))
        mutated_fields = set(spec.get("mutated", ()))
        cache_fields = set(spec.get("caches", ()))
        methods = module.methods_of(class_node)

        mutators: typing.Dict[str, ast.FunctionDef] = {}
        bumpers: typing.Set[str] = set()
        calls_out: typing.Dict[str, typing.Set[str]] = {}
        for method_name, method in methods.items():
            if method_name == "__init__":
                continue
            aliases = _local_aliases(
                method, mutated_fields | cache_fields
            )
            consults = self._consults_epoch(method, epoch_attrs)
            if self._bumps_epoch(method, epoch_attrs):
                bumpers.add(method_name)
            if self._mutates(method, mutated_fields, aliases):
                mutators[method_name] = method
            populated = self._populates(method, cache_fields, aliases)
            if populated and not consults:
                yield self.violation_at(
                    module.path,
                    method,
                    f"{class_name}.{method_name} populates cache "
                    f"field(s) {', '.join(sorted(populated))} without "
                    f"consulting the epoch counter "
                    f"({', '.join(sorted(epoch_attrs))}); a stale "
                    "entry would survive grid mutations",
                )
            calls_out[method_name] = {
                call.func.attr
                for call in ast.walk(method)
                if isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == "self"
            }

        # A mutator is covered when it bumps the epoch itself, or when
        # every intra-class call site sits inside a covered method (the
        # `_discard` helper pattern: remove()/move() bump around it).
        covered = set(bumpers)
        changed = True
        while changed:
            changed = False
            for method_name in mutators:
                if method_name in covered:
                    continue
                callers = {
                    caller
                    for caller, callees in calls_out.items()
                    if method_name in callees
                }
                if callers and callers <= covered:
                    covered.add(method_name)
                    changed = True
        for method_name in sorted(set(mutators) - covered):
            yield self.violation_at(
                module.path,
                mutators[method_name],
                f"{class_name}.{method_name} mutates epoch-guarded "
                f"state ({', '.join(sorted(mutated_fields))}) but "
                f"neither bumps {', '.join(sorted(epoch_attrs))} nor "
                "is called exclusively from methods that do; cached "
                "consumers would never invalidate",
            )

    @staticmethod
    def _bumps_epoch(
        method: ast.FunctionDef, epoch_attrs: typing.Set[str]
    ) -> bool:
        for node in ast.walk(method):
            target = None
            if isinstance(node, ast.AugAssign):
                target = node.target
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            if (
                isinstance(target, ast.Attribute)
                and target.attr in epoch_attrs
            ):
                return True
        return False

    @staticmethod
    def _consults_epoch(
        method: ast.FunctionDef, epoch_attrs: typing.Set[str]
    ) -> bool:
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in epoch_attrs
                and isinstance(node.ctx, ast.Load)
            ):
                return True
        return False

    def _mutates(
        self,
        method: ast.FunctionDef,
        fields: typing.Set[str],
        aliases: typing.Mapping[str, str],
    ) -> bool:
        return bool(
            self._container_writes(method, fields, aliases, deletes=True)
        )

    def _populates(
        self,
        method: ast.FunctionDef,
        fields: typing.Set[str],
        aliases: typing.Mapping[str, str],
    ) -> typing.Set[str]:
        return self._container_writes(
            method, fields, aliases, deletes=False
        )

    @staticmethod
    def _container_writes(
        method: ast.FunctionDef,
        fields: typing.Set[str],
        aliases: typing.Mapping[str, str],
        deletes: bool,
    ) -> typing.Set[str]:
        """Guarded fields written in *method*.

        With ``deletes=False``, entry-removing operations (``pop``,
        ``del``, ``clear``) are ignored — they can only invalidate.
        """
        written: typing.Set[str] = set()

        def note(node: ast.AST) -> None:
            field = _receiver_field(node, aliases)
            if field in fields:
                written.add(typing.cast(str, field))

        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        note(target.value)
                    elif isinstance(target, ast.Attribute) and not (
                        isinstance(node, ast.AnnAssign)
                        and node.value is None
                    ):
                        # Rebinding self.<field> replaces the whole
                        # container (not in __init__, checked upstream).
                        field = _receiver_field(target, aliases)
                        if field in fields:
                            written.add(typing.cast(str, field))
            elif isinstance(node, ast.Delete) and deletes:
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        note(target.value)
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    method_name = func.attr
                    if method_name in _MUTATOR_METHODS:
                        if (
                            not deletes
                            and method_name in _DELETION_METHODS
                        ):
                            continue
                        note(func.value)
                elif (
                    isinstance(func, ast.Name)
                    and func.id in _MUTATING_FUNCTIONS
                    and node.args
                ) or (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_FUNCTIONS
                    and node.args
                ):
                    note(node.args[0])
        return written

    # ------------------------------------------------------------------
    # Cross-module: ownership and shared result lists
    # ------------------------------------------------------------------
    def _check_ownership(
        self,
        project: "ProjectContext",
        owners: typing.Mapping[str, typing.Set[str]],
    ) -> typing.Iterator[Violation]:
        if not owners:
            return
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                owner_paths = owners.get(node.attr)
                if owner_paths is None:
                    continue
                if module.path in owner_paths:
                    continue
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in ("self", "cls")
                ):
                    continue  # another class's own field of that name
                yield self.violation_at(
                    module.path,
                    node,
                    f"reaches into epoch-guarded private state "
                    f"`{node.attr}` from outside its owning module; "
                    "go through the owning class's API so epoch "
                    "bookkeeping stays correct",
                )

    def _check_shared_results(
        self, project: "ProjectContext"
    ) -> typing.Iterator[Violation]:
        shared_calls = project.config.shared_result_calls
        if not shared_calls:
            return
        for module in project.modules:
            for scope in ast.walk(module.tree):
                if not isinstance(
                    scope, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                shared_names: typing.Set[str] = set()
                for node in scope.body:
                    for sub in ast.walk(node):
                        if (
                            isinstance(sub, ast.Assign)
                            and len(sub.targets) == 1
                            and isinstance(sub.targets[0], ast.Name)
                            and self._is_shared_call(
                                sub.value, shared_calls
                            )
                        ):
                            shared_names.add(sub.targets[0].id)
                for node in ast.walk(scope):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _MUTATOR_METHODS
                    ):
                        continue
                    receiver = node.func.value
                    direct = self._is_shared_call(receiver, shared_calls)
                    aliased = (
                        isinstance(receiver, ast.Name)
                        and receiver.id in shared_names
                    )
                    if direct or aliased:
                        yield self.violation_at(
                            module.path,
                            node,
                            f"in-place `{node.func.attr}` on the shared "
                            "cached list returned by "
                            f"{'/'.join(sorted(shared_calls))}(); the "
                            "cache hands the same list to every "
                            "caller — copy it before mutating",
                        )

    @staticmethod
    def _is_shared_call(
        node: ast.AST, shared_calls: typing.Container[str]
    ) -> bool:
        return (
            isinstance(node, ast.Call)
            and _call_name(node) in shared_calls
        )


@register
class TraceGuard(Rule):
    """R7: every ``tracer.emit`` sits under a ``tracer.active`` guard."""

    rule_id = "R7"
    name = "trace-guard"
    description = (
        "Every `tracer.emit(...)` call must sit under an `if "
        "<tracer>.active:` guard (directly, or via a local flag "
        "hoisted from `.active`); the call site otherwise builds the "
        "keyword dict on the hot path even when nobody listens (see "
        "docs/PERFORMANCE.md)."
    )

    def check(self, context: FileContext) -> typing.Iterator[Violation]:
        guard_names = self._guard_names(context.tree)
        for call, ancestry in self._emit_sites(context.tree):
            if not self._is_guarded(ancestry, guard_names):
                yield self.violation(
                    context,
                    call,
                    "`tracer.emit` called without a `tracer.active` "
                    "guard; wrap it in `if tracer.active:` (or a "
                    "hoisted flag) per docs/PERFORMANCE.md",
                )

    @staticmethod
    def _guard_names(tree: ast.AST) -> typing.Set[str]:
        """Names assigned from an ``.active`` read anywhere in the file."""
        names: typing.Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and any(
                isinstance(sub, ast.Attribute) and sub.attr == "active"
                for sub in ast.walk(node.value)
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _emit_sites(
        tree: ast.AST,
    ) -> typing.Iterator[typing.Tuple[ast.Call, typing.List[ast.AST]]]:
        stack: typing.List[ast.AST] = []

        def visit(
            node: ast.AST,
        ) -> typing.Iterator[
            typing.Tuple[ast.Call, typing.List[ast.AST]]
        ]:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and "tracer" in ast.unparse(node.func.value).lower()
            ):
                yield node, list(stack)
            stack.append(node)
            for child in ast.iter_child_nodes(node):
                yield from visit(child)
            stack.pop()

        yield from visit(tree)

    @staticmethod
    def _is_guarded(
        ancestry: typing.Sequence[ast.AST],
        guard_names: typing.Set[str],
    ) -> bool:
        for ancestor in ancestry:
            if not isinstance(ancestor, ast.If):
                continue
            test = ancestor.test
            for sub in ast.walk(test):
                if isinstance(sub, ast.Attribute) and sub.attr == "active":
                    return True
                if isinstance(sub, ast.Name) and sub.id in guard_names:
                    return True
        return False


@register
class SimRaceDetector(ProjectRule):
    """R8: scheduler-reachable handlers never write shared global state."""

    rule_id = "R8"
    name = "sim-race-detector"
    description = (
        "Event handlers reachable from `call_in`/`call_at`/`process` "
        "must not write module-global or class-level mutable state: it "
        "survives across seeded runs and is shared by same-timestamp "
        "handlers, so replicate order leaks into results — the "
        "discrete-event analog of a data race.  Per-run state belongs "
        "on the runtime/service; process-global id counters need a "
        "`reset_*` hook the runtime calls per scenario."
    )

    def check_project(
        self, project: "ProjectContext"
    ) -> typing.Iterator[Violation]:
        reachable = self._reachable_functions(project)
        for module in project.modules:
            mutable_globals = self._module_mutable_globals(module)
            if mutable_globals:
                reset_covered = self._reset_covered(module)
                for qualname, function in sorted(
                    self._functions_in(module)
                ):
                    if (module.path, qualname) not in reachable:
                        continue
                    yield from self._flag_global_writes(
                        module,
                        qualname,
                        function,
                        mutable_globals,
                        reset_covered,
                    )
            yield from self._flag_class_level_mutables(
                module, reachable
            )

    # ------------------------------------------------------------------
    # Shared-state discovery
    # ------------------------------------------------------------------
    @staticmethod
    def _is_mutable_value(node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            return _call_name(node) in (
                "list",
                "dict",
                "set",
                "bytearray",
                "defaultdict",
                "deque",
                "Counter",
                "OrderedDict",
                "count",
            )
        return False

    def _module_mutable_globals(
        self, module: "ModuleInfo"
    ) -> typing.Set[str]:
        """Module-level names holding mutable containers or counters."""
        names: typing.Set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                value = node.value
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
                targets = [node.target]
            else:
                continue
            mutable = self._is_mutable_value(value)
            scalar_counter = isinstance(value, ast.Constant) and isinstance(
                value.value, (int, float)
            ) and not isinstance(value.value, bool)
            if not (mutable or scalar_counter):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and not (
                    target.id.startswith("__")
                ):
                    names.add(target.id)
        # Scalars only matter when rebindable: keep a name if some
        # function declares it `global`, or it held a container.
        rebound: typing.Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Global):
                rebound.update(node.names)
        kept: typing.Set[str] = set()
        for name in names:
            if name in rebound or self._holds_container(module, name):
                kept.add(name)
        return kept

    def _holds_container(
        self, module: "ModuleInfo", name: str
    ) -> bool:
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == name
                for target in node.targets
            ):
                return self._is_mutable_value(node.value)
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == name
                and node.value is not None
            ):
                return self._is_mutable_value(node.value)
        return False

    @staticmethod
    def _reset_covered(module: "ModuleInfo") -> typing.Set[str]:
        """Globals reassigned by a top-level ``reset_*`` hook.

        The ``reset_id_counters`` idiom: process-global id sequences
        are deterministic because the runtime restarts them per
        scenario.  State covered by such a hook is exempt.
        """
        covered: typing.Set[str] = set()
        for name, function in module.functions.items():
            if not name.startswith("reset"):
                continue
            for node in ast.walk(function):
                if isinstance(node, ast.Global):
                    covered.update(node.names)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            covered.add(target.id)
        return covered

    # ------------------------------------------------------------------
    # Reachability from the scheduler
    # ------------------------------------------------------------------
    @staticmethod
    def _functions_in(
        module: "ModuleInfo",
    ) -> typing.Iterator[typing.Tuple[str, ast.FunctionDef]]:
        for name, function in module.functions.items():
            yield name, function
        for class_name, class_node in module.classes.items():
            for method in class_node.body:
                if isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield (
                        f"{class_name}.{method.name}",
                        typing.cast(ast.FunctionDef, method),
                    )

    def _reachable_functions(
        self, project: "ProjectContext"
    ) -> typing.Set[typing.Tuple[str, str]]:
        """``(module path, qualname)`` of scheduler-reachable functions.

        Seeds are the callback arguments of scheduling sinks anywhere
        in the project; edges follow calls by name — bare names resolve
        through the module's functions and imports, attribute calls
        resolve to every same-named method in the project (a cheap but
        sound over-approximation).
        """
        slots = project.config.schedule_callback_slots
        # Name -> definition sites.
        methods_by_name: typing.Dict[
            str, typing.List[typing.Tuple[str, str]]
        ] = {}
        functions_by_module: typing.Dict[
            str, typing.Dict[str, str]
        ] = {}
        classes_by_name: typing.Dict[
            str, typing.List[typing.Tuple[str, str]]
        ] = {}
        bodies: typing.Dict[
            typing.Tuple[str, str], ast.FunctionDef
        ] = {}
        for module in project.modules:
            per_module: typing.Dict[str, str] = {}
            for qualname, function in self._functions_in(module):
                key = (module.path, qualname)
                bodies[key] = function
                if "." in qualname:
                    class_name, method_name = qualname.split(".", 1)
                    methods_by_name.setdefault(
                        method_name, []
                    ).append(key)
                    classes_by_name.setdefault(class_name, []).append(
                        key
                    )
                else:
                    per_module[qualname] = qualname
            functions_by_module[module.path] = per_module

        def resolve_callable_name(
            module: "ModuleInfo", name: str
        ) -> typing.List[typing.Tuple[str, str]]:
            found: typing.List[typing.Tuple[str, str]] = []
            if name in module.functions:
                found.append((module.path, name))
            elif name in module.classes:
                for method_name in ("__init__", "__call__"):
                    key = (module.path, f"{name}.{method_name}")
                    if key in bodies:
                        found.append(key)
            else:
                origin = module.imports.bindings.get(name)
                if origin:
                    parts = origin.split(".")
                    target_module = project.by_name.get(
                        ".".join(parts[:-1])
                    )
                    if target_module is not None:
                        found.extend(
                            resolve_callable_name(
                                target_module, parts[-1]
                            )
                        )
            return found

        def callback_targets(
            module: "ModuleInfo", node: ast.AST
        ) -> typing.List[typing.Tuple[str, str]]:
            """Definitions a scheduled callback expression can enter."""
            if isinstance(node, ast.Lambda):
                targets: typing.List[typing.Tuple[str, str]] = []
                for sub in ast.walk(node.body):
                    if isinstance(sub, ast.Call):
                        targets.extend(call_targets(module, sub))
                return targets
            if isinstance(node, ast.Name):
                direct = resolve_callable_name(module, node.id)
                return direct or methods_by_name.get(node.id, [])
            if isinstance(node, ast.Attribute):
                return methods_by_name.get(node.attr, [])
            if isinstance(node, ast.Call):
                # `sim.process(self._run())` or `Callback(channel, ...)`
                # — the scheduled thing is what the call produces.
                return call_targets(module, node)
            return []

        def call_targets(
            module: "ModuleInfo", call: ast.Call
        ) -> typing.List[typing.Tuple[str, str]]:
            func = call.func
            if isinstance(func, ast.Name):
                named = resolve_callable_name(module, func.id)
                if named:
                    # A constructed class is later *called*: include
                    # __call__ alongside __init__.
                    if func.id in module.classes or any(
                        qual.endswith(".__init__")
                        for _path, qual in named
                    ):
                        named = list(named) + classes_by_name.get(
                            func.id, []
                        )
                    return named
                return classes_by_name.get(func.id, [])
            if isinstance(func, ast.Attribute):
                origin = module.imports.resolve(func)
                if origin:
                    parts = origin.split(".")
                    target_module = project.by_name.get(
                        ".".join(parts[:-1])
                    )
                    if target_module is not None:
                        resolved = resolve_callable_name(
                            target_module, parts[-1]
                        )
                        if resolved:
                            return resolved
                return methods_by_name.get(func.attr, [])
            return []

        seeds: typing.List[typing.Tuple[str, str]] = []
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                sink = _call_name(node)
                slot = slots.get(sink) if sink else None
                if slot is None:
                    continue
                callback: typing.Optional[ast.AST] = None
                if len(node.args) > slot:
                    callback = node.args[slot]
                else:
                    for keyword in node.keywords:
                        if keyword.arg in ("callback", "process", "fn"):
                            callback = keyword.value
                if callback is not None:
                    seeds.extend(callback_targets(module, callback))

        reachable: typing.Set[typing.Tuple[str, str]] = set()
        frontier = [seed for seed in seeds if seed in bodies]
        while frontier:
            key = frontier.pop()
            if key in reachable:
                continue
            reachable.add(key)
            module = project.by_path[key[0]]
            for node in ast.walk(bodies[key]):
                if isinstance(node, ast.Call):
                    for target in call_targets(module, node):
                        if target in bodies and target not in reachable:
                            frontier.append(target)
        return reachable

    # ------------------------------------------------------------------
    # Write detection
    # ------------------------------------------------------------------
    def _flag_global_writes(
        self,
        module: "ModuleInfo",
        qualname: str,
        function: ast.FunctionDef,
        mutable_globals: typing.Set[str],
        reset_covered: typing.Set[str],
    ) -> typing.Iterator[Violation]:
        declared_global: typing.Set[str] = set()
        local_names: typing.Set[str] = {
            argument.arg
            for argument in [
                *function.args.posonlyargs,
                *function.args.args,
                *function.args.kwonlyargs,
            ]
        }
        for node in ast.walk(function):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_names.add(target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                local_names.add(node.target.id)

        def is_shared(name: str) -> bool:
            if name not in mutable_globals or name in reset_covered:
                return False
            if name in declared_global:
                return True
            return name not in local_names

        for node in ast.walk(function):
            flagged: typing.Optional[str] = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                        and is_shared(target.id)
                    ):
                        flagged = target.id
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        if is_shared(target.value.id):
                            flagged = target.value.id
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATOR_METHODS and isinstance(
                    node.func.value, ast.Name
                ):
                    if is_shared(node.func.value.id):
                        flagged = node.func.value.id
            if flagged:
                yield self.violation_at(
                    module.path,
                    node,
                    f"scheduler-reachable `{qualname}` writes module-"
                    f"global mutable state `{flagged}`; it outlives "
                    "the run and is shared by same-timestamp handlers "
                    "(sim-race) — move it onto the runtime/service, "
                    "or cover it with a `reset_*` hook",
                )

    def _flag_class_level_mutables(
        self,
        module: "ModuleInfo",
        reachable: typing.Set[typing.Tuple[str, str]],
    ) -> typing.Iterator[Violation]:
        for class_name, class_node in sorted(module.classes.items()):
            has_reachable_method = any(
                (module.path, f"{class_name}.{method.name}") in reachable
                for method in class_node.body
                if isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
            )
            if not has_reachable_method:
                continue
            for node in class_node.body:
                if not isinstance(node, ast.Assign):
                    continue
                if not self._is_mutable_value(node.value):
                    continue
                yield self.violation_at(
                    module.path,
                    node,
                    f"class-level mutable attribute on `{class_name}` "
                    "(whose methods run as event handlers) is shared "
                    "by every instance and every run; initialise it "
                    "per-instance in __init__",
                )


@register
class SerializationDrift(ProjectRule):
    """R9: dataclass fields round-trip through both codec directions."""

    rule_id = "R9"
    name = "serialization-drift"
    description = (
        "Every dataclass field of a class with a `to_json_dict`/"
        "`from_json_dict` pair must appear in both methods (or the "
        "methods must iterate `dataclasses.fields(...)` generically); "
        "a field added to the dataclass but not the codec silently "
        "drops data from the run-result store."
    )

    _METHODS = ("to_json_dict", "from_json_dict")

    def check_project(
        self, project: "ProjectContext"
    ) -> typing.Iterator[Violation]:
        for module in project.modules:
            for class_name in sorted(module.classes):
                class_node = module.classes[class_name]
                methods = module.methods_of(class_node)
                if not all(name in methods for name in self._METHODS):
                    continue
                if not self._is_dataclass(class_node):
                    continue
                fields = project.class_fields(class_node, module)
                if not fields:
                    continue
                for method_name in self._METHODS:
                    method = methods[method_name]
                    if self._is_generic(method):
                        continue
                    mentioned = self._mentioned_names(method)
                    missing = [
                        field
                        for field in fields
                        if field not in mentioned
                    ]
                    if missing:
                        yield self.violation_at(
                            module.path,
                            method,
                            f"{class_name}.{method_name} does not "
                            "round-trip dataclass field(s) "
                            f"{', '.join(missing)}; add them or "
                            "iterate dataclasses.fields(...) "
                            "generically",
                        )

    @staticmethod
    def _is_dataclass(class_node: ast.ClassDef) -> bool:
        for decorator in class_node.decorator_list:
            target = decorator
            if isinstance(target, ast.Call):
                target = target.func
            if (
                isinstance(target, ast.Name)
                and target.id == "dataclass"
            ) or (
                isinstance(target, ast.Attribute)
                and target.attr == "dataclass"
            ):
                return True
        return False

    @staticmethod
    def _is_generic(method: ast.FunctionDef) -> bool:
        """True when the codec iterates ``dataclasses.fields(...)``."""
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in ("fields", "asdict", "astuple"):
                    return True
        return False

    @staticmethod
    def _mentioned_names(method: ast.FunctionDef) -> typing.Set[str]:
        mentioned: typing.Set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                mentioned.add(node.value)
            elif isinstance(node, ast.Attribute):
                mentioned.add(node.attr)
            elif isinstance(node, ast.keyword) and node.arg:
                mentioned.add(node.arg)
        return mentioned


#: Dimensionless marker for R10's tiny unit algebra.
_SCALAR = "scalar"

#: ``unit op unit -> unit`` for multiplication (symmetric pairs listed
#: once; the checker tries both orders).
_MUL_TABLE = {
    ("m/s", "s"): "m",
    ("m", "m"): "m2",
    ("bit/s", "s"): "bit",
}

_DIV_TABLE = {
    ("m", "s"): "m/s",
    ("m", "m/s"): "s",
    ("m2", "m"): "m",
    ("bit", "bit/s"): "s",
    ("bit", "s"): "bit/s",
}


@register
class UnitSuffixConsistency(Rule):
    """R10: unit-suffixed names never hold mismatched-unit values."""

    rule_id = "R10"
    name = "unit-suffix-consistency"
    description = (
        "A name suffixed `_s`/`_m`/`_mps`/`_m2`/`_bits` must never be "
        "assigned from — or compared against — an expression whose "
        "inferred unit differs (metres into seconds, speeds into "
        "distances).  Derived units follow a small algebra: m/s * s = "
        "m, m / s = m/s, sqrt(m2) = m, and numeric constants are "
        "dimensionless."
    )

    def check(self, context: FileContext) -> typing.Iterator[Violation]:
        suffixes = context.config.unit_suffixes
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_binding(
                        context, suffixes, target, node.value, node
                    )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield from self._check_binding(
                    context, suffixes, node.target, node.value, node
                )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_binding(
                    context, suffixes, node.target, node.value, node
                )
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is None:
                        continue
                    target_unit = self._suffix_unit(
                        keyword.arg, suffixes
                    )
                    if target_unit is None:
                        continue
                    if not isinstance(
                        keyword.value, (ast.Name, ast.Attribute)
                    ):
                        continue
                    value_unit = self._unit_of(keyword.value, suffixes)
                    if (
                        value_unit not in (None, _SCALAR)
                        and value_unit != target_unit
                    ):
                        yield self.violation(
                            context,
                            keyword.value,
                            f"argument `{keyword.arg}` "
                            f"({target_unit}) receives a value in "
                            f"{value_unit}; convert the units "
                            "explicitly",
                        )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                units = [
                    self._unit_of(operand, suffixes)
                    for operand in operands
                ]
                concrete = [
                    unit
                    for unit in units
                    if unit not in (None, _SCALAR)
                ]
                if len(set(concrete)) > 1:
                    yield self.violation(
                        context,
                        node,
                        "comparison mixes units "
                        f"({' vs '.join(sorted(set(concrete)))}); "
                        "convert one side explicitly",
                    )

    def _check_binding(
        self,
        context: FileContext,
        suffixes: typing.Mapping[str, str],
        target: ast.AST,
        value: ast.AST,
        node: ast.AST,
    ) -> typing.Iterator[Violation]:
        if isinstance(target, ast.Name):
            target_name = target.id
        elif isinstance(target, ast.Attribute):
            target_name = target.attr
        else:
            return
        target_unit = self._suffix_unit(target_name, suffixes)
        if target_unit is None:
            return
        value_unit = self._unit_of(value, suffixes)
        if value_unit in (None, _SCALAR):
            return
        if value_unit != target_unit:
            yield self.violation(
                context,
                node,
                f"`{target_name}` ({target_unit}) assigned from an "
                f"expression in {value_unit}; convert the units "
                "explicitly",
            )

    @staticmethod
    def _suffix_unit(
        name: str, suffixes: typing.Mapping[str, str]
    ) -> typing.Optional[str]:
        best: typing.Optional[str] = None
        best_length = 0
        for suffix, unit in suffixes.items():
            if (
                len(name) > len(suffix)
                and name.endswith(suffix)
                and len(suffix) > best_length
            ):
                best = unit
                best_length = len(suffix)
        return best

    def _unit_of(
        self,
        node: ast.AST,
        suffixes: typing.Mapping[str, str],
    ) -> typing.Optional[str]:
        """Inferred unit of an expression, ``_SCALAR``, or None."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool
            ):
                return _SCALAR
            return None
        if isinstance(node, ast.Name):
            return self._suffix_unit(node.id, suffixes)
        if isinstance(node, ast.Attribute):
            return self._suffix_unit(node.attr, suffixes)
        if isinstance(node, ast.UnaryOp):
            return self._unit_of(node.operand, suffixes)
        if isinstance(node, ast.IfExp):
            body = self._unit_of(node.body, suffixes)
            orelse = self._unit_of(node.orelse, suffixes)
            return body if body == orelse else None
        if isinstance(node, ast.Call):
            return self._call_unit(node, suffixes)
        if isinstance(node, ast.BinOp):
            return self._binop_unit(node, suffixes)
        return None

    def _call_unit(
        self,
        node: ast.Call,
        suffixes: typing.Mapping[str, str],
    ) -> typing.Optional[str]:
        name = _call_name(node)
        if name in ("abs", "min", "max", "float", "hypot", "fsum"):
            units = {
                self._unit_of(argument, suffixes)
                for argument in node.args
            }
            units.discard(_SCALAR)
            if len(units) == 1:
                return units.pop()
            return None
        if name == "sqrt" and len(node.args) == 1:
            inner = self._unit_of(node.args[0], suffixes)
            if inner == "m2":
                return "m"
            return None
        return None

    def _binop_unit(
        self,
        node: ast.BinOp,
        suffixes: typing.Mapping[str, str],
    ) -> typing.Optional[str]:
        left = self._unit_of(node.left, suffixes)
        right = self._unit_of(node.right, suffixes)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left == right:
                return left
            if left == _SCALAR:
                return right
            if right == _SCALAR:
                return left
            if left is not None and right is not None:
                # Mixed-unit addition: surface it at the binding by
                # propagating the *left* unit (the likelier intent),
                # so `total_s = base_s + dist_m` reports as seconds
                # only when the target disagrees — and the comparison
                # check still catches direct mixing.
                return f"{left}+{right}"
            return None
        if isinstance(node.op, ast.Mult):
            if left == _SCALAR:
                return right
            if right == _SCALAR:
                return left
            if left is None or right is None:
                return None
            known = _MUL_TABLE.get((left, right)) or _MUL_TABLE.get(
                (right, left)
            )
            # Two concrete units with no table entry form a composite
            # (`m*m/s`) that can never match a suffix unit, so the
            # classic `travel_s = distance_m * speed_mps` (should be
            # a division) is flagged at the binding.
            return known or f"{left}*{right}"
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left is None:
                return None
            if right == _SCALAR:
                return left
            if right is None:
                return None
            if left == right:
                return _SCALAR
            return _DIV_TABLE.get((left, right)) or f"{left}/{right}"
        if isinstance(node.op, ast.Mod):
            return left
        return None
