"""Project scope for the linter: whole-program context over a tree.

The file-scoped rules (R1–R5) see one AST at a time.  The invariants
added in R6–R10 span modules — epoch-cache ownership lives in
``repro.net.spatial`` but is consumed in ``repro.net.channel``; the
sim-race detector must know which functions the event queue can reach
anywhere in ``src/``.  :class:`ProjectContext` gives those rules the
whole linted tree at once:

* one :class:`ModuleInfo` per file — dotted module name, AST, source
  lines, resolved :class:`~repro.lint.rules.ImportTable`, suppressions;
* a symbol table: every top-level class and function, with class
  methods indexed for cross-module lookup;
* an import graph between the linted modules.

Module names are derived from paths: the longest suffix that starts at
a ``repro``/``src`` anchor becomes the dotted name, so the same tree
lints identically regardless of the checkout directory.
"""

from __future__ import annotations

import ast
import dataclasses
import typing

from repro.lint.rules import ImportTable

__all__ = [
    "ModuleInfo",
    "ProjectContext",
    "build_project",
    "module_name_for_path",
]


def module_name_for_path(path: str) -> typing.Tuple[str, bool]:
    """Dotted module name and is-package flag for a ``.py`` path.

    ``src/repro/net/channel.py`` maps to ``repro.net.channel``; any
    leading directories up to (and including) a ``src`` segment are
    dropped.  ``__init__.py`` names the package itself.  Paths that do
    not end in ``.py`` fall back to their final segment.
    """
    normalized = path.replace("\\", "/")
    parts = [part for part in normalized.split("/") if part not in ("", ".")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    if not parts:
        return ("", False)
    return (".".join(parts), is_package)


@dataclasses.dataclass
class ModuleInfo:
    """Everything the project scope knows about one parsed module."""

    path: str
    name: str
    is_package: bool
    tree: ast.Module
    lines: typing.Sequence[str]
    imports: ImportTable
    #: Rule suppressions parsed from this file's ``# simlint:`` comments
    #: (a :class:`repro.lint.engine.Suppressions`; typed loosely to
    #: avoid an import cycle with the engine).
    suppressions: typing.Any
    #: Top-level ``class`` statements by name.
    classes: typing.Dict[str, ast.ClassDef] = dataclasses.field(
        default_factory=dict
    )
    #: Top-level ``def`` statements by name.
    functions: typing.Dict[str, ast.FunctionDef] = dataclasses.field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self.functions[node.name] = typing.cast(
                    ast.FunctionDef, node
                )

    def methods_of(
        self, class_node: ast.ClassDef
    ) -> typing.Dict[str, ast.FunctionDef]:
        """Direct methods of *class_node* by name (no inheritance)."""
        methods: typing.Dict[str, ast.FunctionDef] = {}
        for node in class_node.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[node.name] = typing.cast(ast.FunctionDef, node)
        return methods


class ProjectContext:
    """All linted modules plus the cross-module lookup tables."""

    def __init__(
        self,
        modules: typing.Sequence[ModuleInfo],
        config: typing.Any,
    ) -> None:
        #: Modules in deterministic (path-sorted) order.
        self.modules: typing.List[ModuleInfo] = sorted(
            modules, key=lambda module: module.path
        )
        self.config = config
        self.by_name: typing.Dict[str, ModuleInfo] = {}
        self.by_path: typing.Dict[str, ModuleInfo] = {}
        #: class name -> [(module, ClassDef)] across the whole project.
        self.classes: typing.Dict[
            str, typing.List[typing.Tuple[ModuleInfo, ast.ClassDef]]
        ] = {}
        for module in self.modules:
            if module.name:
                self.by_name[module.name] = module
            self.by_path[module.path] = module
            for class_name, node in module.classes.items():
                self.classes.setdefault(class_name, []).append(
                    (module, node)
                )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def find_class(
        self, class_name: str
    ) -> typing.List[typing.Tuple[ModuleInfo, ast.ClassDef]]:
        """Every project definition of *class_name* (usually 0 or 1)."""
        return self.classes.get(class_name, [])

    def import_graph(self) -> typing.Dict[str, typing.Set[str]]:
        """Edges ``importer -> imported`` restricted to linted modules.

        An import binding ``repro.net.frames.Frame`` counts as an edge
        to ``repro.net.frames`` when that module is part of the linted
        tree (the binding's longest prefix that names a known module).
        """
        graph: typing.Dict[str, typing.Set[str]] = {}
        known = set(self.by_name)
        for module in self.modules:
            if not module.name:
                continue
            edges = graph.setdefault(module.name, set())
            for origin in module.imports.bindings.values():
                parts = origin.split(".")
                for end in range(len(parts), 0, -1):
                    prefix = ".".join(parts[:end])
                    if prefix in known:
                        if prefix != module.name:
                            edges.add(prefix)
                        break
        return graph

    def class_fields(
        self, class_node: ast.ClassDef, module: ModuleInfo
    ) -> typing.List[str]:
        """Annotated (dataclass-style) fields, including inherited ones.

        Base classes are resolved by name through the project's class
        table; unknown bases contribute nothing.  ``ClassVar`` and
        underscore-prefixed annotations are skipped — they are not
        dataclass fields.
        """
        fields: typing.List[str] = []
        seen: typing.Set[str] = set()
        for base in class_node.bases:
            base_name = None
            if isinstance(base, ast.Name):
                base_name = base.id
            elif isinstance(base, ast.Attribute):
                base_name = base.attr
            if not base_name:
                continue
            for base_module, base_node in self.find_class(base_name):
                for field in self.class_fields(base_node, base_module):
                    if field not in seen:
                        seen.add(field)
                        fields.append(field)
        for node in class_node.body:
            if not isinstance(node, ast.AnnAssign):
                continue
            if not isinstance(node.target, ast.Name):
                continue
            annotation = ast.dump(node.annotation)
            if "ClassVar" in annotation:
                continue
            name = node.target.id
            if name.startswith("_") or name in seen:
                continue
            seen.add(name)
            fields.append(name)
        return fields


def build_project(
    modules: typing.Sequence[ModuleInfo], config: typing.Any
) -> ProjectContext:
    """Assemble a :class:`ProjectContext` from parsed modules."""
    return ProjectContext(modules, config)
