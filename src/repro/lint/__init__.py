"""``repro.lint`` — AST-based determinism linter for the simulator.

The reproduction's claims (Figures 2–4 replaying identically from a
seed) rest on a contract the type system cannot see: randomness flows
only through :class:`repro.sim.rng.RandomStreams`, nothing reads the
wall clock, and iteration order never leaks into the event schedule.
This package enforces that contract statically in two tiers: the
file-scoped rules R1–R5 (plus R7 trace guards and R10 unit suffixes)
walk one AST at a time, while the project-scoped rules R6 (epoch-cache
integrity), R8 (sim-race detector), and R9 (serialization drift) run
over a whole-tree :class:`~repro.lint.project.ProjectContext` with
import and symbol tables.  See ``docs/LINTING.md`` for the catalogue
and the ``# simlint: disable=<rule>`` suppression syntax.

Programmatic use::

    from repro.lint import lint_source
    findings = lint_source("import random\\n", path="repro/x.py")

Command line: ``repro-lint src/`` or ``python -m repro.lint src/``.
"""

from repro.lint.config import DEFAULT_CONFIG, LintConfig, load_config
from repro.lint.engine import (
    PARSE_ERROR_ID,
    Suppressions,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.project import (
    ModuleInfo,
    ProjectContext,
    build_project,
    module_name_for_path,
)
from repro.lint.registry import (
    FileContext,
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    file_rules,
    get_rule,
    project_rules,
    register,
    rule_ids,
)
from repro.lint.reporters import render_json, render_sarif, render_text
from repro.lint.cli import main

__all__ = [
    "DEFAULT_CONFIG",
    "FileContext",
    "LintConfig",
    "ModuleInfo",
    "PARSE_ERROR_ID",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Suppressions",
    "Violation",
    "all_rules",
    "build_project",
    "file_rules",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "main",
    "module_name_for_path",
    "project_rules",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
]
