"""``repro.lint`` — AST-based determinism linter for the simulator.

The reproduction's claims (Figures 2–4 replaying identically from a
seed) rest on a contract the type system cannot see: randomness flows
only through :class:`repro.sim.rng.RandomStreams`, nothing reads the
wall clock, and iteration order never leaks into the event schedule.
This package enforces that contract statically with five rules
(R1–R5); see ``docs/LINTING.md`` for the catalogue and the
``# simlint: disable=<rule>`` suppression syntax.

Programmatic use::

    from repro.lint import lint_source
    findings = lint_source("import random\\n", path="repro/x.py")

Command line: ``repro-lint src/`` or ``python -m repro.lint src/``.
"""

from repro.lint.config import DEFAULT_CONFIG, LintConfig, load_config
from repro.lint.engine import (
    PARSE_ERROR_ID,
    Suppressions,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.registry import (
    FileContext,
    Rule,
    Violation,
    all_rules,
    get_rule,
    register,
    rule_ids,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.cli import main

__all__ = [
    "DEFAULT_CONFIG",
    "FileContext",
    "LintConfig",
    "PARSE_ERROR_ID",
    "Rule",
    "Suppressions",
    "Violation",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "main",
    "register",
    "render_json",
    "render_text",
    "rule_ids",
]
