"""The determinism rules, R1–R5.

Each rule protects one part of the contract that makes a seeded run
replay bit-for-bit (see ``docs/LINTING.md``):

* **R1** — all randomness flows through ``repro.sim.rng.RandomStreams``.
* **R2** — simulation code never reads the wall clock.
* **R3** — unordered collections never feed scheduling/flooding/
  neighbor-selection calls without ``sorted(...)``.
* **R4** — float simulation times are never compared with ``==``/``!=``.
* **R5** — no mutable default arguments, no bare ``except:``.
"""

from __future__ import annotations

import ast
import typing

from repro.lint.registry import FileContext, Rule, Violation, register

__all__ = [
    "ImportTable",
    "NoDirectRandom",
    "NoWallClock",
    "NoUnorderedIteration",
    "NoFloatTimeEquality",
    "NoMutableDefaultsOrBareExcept",
]


class ImportTable:
    """Maps local names to the dotted module paths they were bound from.

    ``import time as t`` binds ``t -> time``; ``from datetime import
    datetime as dt`` binds ``dt -> datetime.datetime``.  Used to resolve
    a call like ``dt.now()`` back to ``datetime.datetime.now``.

    When the importing module's own dotted name is known (project
    scope, or derived from the file path), relative imports resolve
    too: inside ``repro.net.channel``, ``from .frames import Frame``
    binds ``Frame -> repro.net.frames.Frame``.  Without a module name
    relative imports are skipped, as before.
    """

    def __init__(
        self,
        tree: ast.AST,
        module_name: typing.Optional[str] = None,
        is_package: bool = False,
    ) -> None:
        self.bindings: typing.Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else local
                    self.bindings[local] = origin
            elif isinstance(node, ast.ImportFrom):
                base = node.module
                if node.level:
                    base = self._relative_base(
                        node, module_name, is_package
                    )
                    if base is None:
                        continue  # unknown package context
                elif base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{base}.{alias.name}"

    @staticmethod
    def _relative_base(
        node: ast.ImportFrom,
        module_name: typing.Optional[str],
        is_package: bool,
    ) -> typing.Optional[str]:
        """Absolute package that ``from ...X import`` resolves against."""
        if not module_name:
            return None
        parts = module_name.split(".")
        if not is_package:
            parts = parts[:-1]  # the containing package
        ascend = node.level - 1
        if ascend > len(parts):
            return None  # beyond the top-level package
        if ascend:
            parts = parts[:-ascend]
        if node.module:
            parts = [*parts, node.module]
        return ".".join(parts) if parts else None

    def resolve(self, node: ast.AST) -> typing.Optional[str]:
        """Dotted origin of a ``Name``/``Attribute`` chain, if imported."""
        parts: typing.List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.bindings.get(node.id)
        if origin is None:
            return None
        return ".".join([origin, *reversed(parts)])


def _call_name(node: ast.Call) -> typing.Optional[str]:
    """The bare name of the function being called (last dotted segment)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class NoDirectRandom(Rule):
    """R1: every stochastic draw must come from ``RandomStreams``."""

    rule_id = "R1"
    name = "no-direct-random"
    description = (
        "Do not import or call the stdlib `random` module; draw from a "
        "named `repro.sim.rng.RandomStreams` stream (annotate parameters "
        "with `RandomStream`).  Only repro/sim/rng.py is exempt."
    )

    def check(self, context: FileContext) -> typing.Iterator[Violation]:
        imports = ImportTable(
            context.tree, context.module_name, context.is_package
        )
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.violation(
                            context,
                            node,
                            "direct `import random`; use "
                            "repro.sim.rng.RandomStreams instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield self.violation(
                        context,
                        node,
                        "import from the `random` module; use "
                        "repro.sim.rng.RandomStreams instead",
                    )
            elif isinstance(node, ast.Call):
                origin = imports.resolve(node.func)
                if origin and origin.split(".")[0] == "random":
                    yield self.violation(
                        context,
                        node,
                        f"call to `{origin}`; draw from a named "
                        "RandomStreams stream instead",
                    )


@register
class NoWallClock(Rule):
    """R2: simulation code never reads the wall clock."""

    rule_id = "R2"
    name = "no-wall-clock"
    description = (
        "Do not call wall-clock sources (`time.time`, `time.monotonic`, "
        "`datetime.now`, `datetime.today`, ...).  Simulation time is "
        "`Simulator.now`; wall time breaks replay."
    )

    def check(self, context: FileContext) -> typing.Iterator[Violation]:
        banned = context.config.wall_clock_calls
        banned_leaves = {name.rsplit(".", 1)[-1] for name in banned}
        imports = ImportTable(
            context.tree, context.module_name, context.is_package
        )
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module in ("time", "datetime") and not node.level:
                    for alias in node.names:
                        dotted = f"{node.module}.{alias.name}"
                        if dotted in banned or (
                            node.module == "datetime"
                            and alias.name in ("datetime", "date")
                        ):
                            continue  # flag the call site, not the import
                        if alias.name in banned_leaves:
                            yield self.violation(
                                context,
                                node,
                                f"import of wall-clock source `{dotted}`",
                            )
            elif isinstance(node, ast.Call):
                origin = imports.resolve(node.func)
                if origin in banned:
                    yield self.violation(
                        context,
                        node,
                        f"wall-clock read `{origin}()`; use the "
                        "simulation clock (Simulator.now)",
                    )
                elif origin is None and isinstance(node.func, ast.Name):
                    # `from time import time` binds the leaf name.
                    dotted = imports.bindings.get(node.func.id)
                    if dotted in banned:
                        yield self.violation(
                            context,
                            node,
                            f"wall-clock read `{dotted}()`; use the "
                            "simulation clock (Simulator.now)",
                        )


def _is_unordered(node: ast.AST) -> bool:
    """True when iterating *node* has interpreter-dependent order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in ("set", "frozenset"):
            return True
        if name == "keys" and isinstance(node.func, ast.Attribute):
            return True
        if name == "sorted":
            return False
        # list(set(...)) / tuple(set(...)) inherit the set's order.
        if name in ("list", "tuple", "iter", "reversed") and node.args:
            return _is_unordered(node.args[0])
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_unordered(node.left) or _is_unordered(node.right)
    return False


@register
class NoUnorderedIteration(Rule):
    """R3: unordered collections never reach scheduling-order sinks."""

    rule_id = "R3"
    name = "no-unordered-into-sinks"
    description = (
        "Do not pass `set(...)`/`.keys()` results (or loops over them) "
        "into scheduling, flooding, or neighbor-selection calls without "
        "an explicit `sorted(...)` — iteration order would leak into "
        "the event schedule."
    )

    def check(self, context: FileContext) -> typing.Iterator[Violation]:
        sinks = context.config.sink_names
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call) and _call_name(node) in sinks:
                for argument in [*node.args, *node.keywords]:
                    value = (
                        argument.value
                        if isinstance(argument, ast.keyword)
                        else argument
                    )
                    if _is_unordered(value):
                        yield self.violation(
                            context,
                            value,
                            "unordered collection passed to "
                            f"`{_call_name(node)}(...)`; wrap it in "
                            "sorted(...)",
                        )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if not _is_unordered(node.iter):
                    continue
                for inner in ast.walk(
                    ast.Module(body=list(node.body), type_ignores=[])
                ):
                    if (
                        isinstance(inner, ast.Call)
                        and _call_name(inner) in sinks
                    ):
                        yield self.violation(
                            context,
                            node.iter,
                            "loop over an unordered collection reaches "
                            f"`{_call_name(inner)}(...)`; iterate "
                            "sorted(...) instead",
                        )
                        break


def _time_like(node: ast.AST, config: typing.Any) -> typing.Optional[str]:
    """The identifier that makes *node* look like a sim timestamp."""
    if isinstance(node, ast.Attribute):
        identifier = node.attr
    elif isinstance(node, ast.Name):
        identifier = node.id
    else:
        return None
    lowered = identifier.lower()
    if lowered in config.time_exact_names:
        return identifier
    if lowered.endswith("time"):
        # `lifetime`/`mean_lifetime_s` are durations, not timestamps.
        if lowered.endswith("lifetime"):
            return None
        return identifier
    if any(lowered.endswith(suffix) for suffix in config.time_suffixes):
        return identifier
    return None


@register
class NoFloatTimeEquality(Rule):
    """R4: no exact equality between float simulation times."""

    rule_id = "R4"
    name = "no-float-time-equality"
    description = (
        "Do not compare simulation timestamps with `==`/`!=`; "
        "accumulated float delays make exact equality fragile.  Use "
        "`repro.sim.engine.times_equal` (tolerance helper) instead."
    )

    def check(self, context: FileContext) -> typing.Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, operator in enumerate(node.ops):
                if not isinstance(operator, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if any(
                    isinstance(side, ast.Constant)
                    and not isinstance(side.value, (int, float))
                    for side in (left, right)
                ):
                    continue  # comparisons to None/str are not time math
                identifier = _time_like(left, context.config) or _time_like(
                    right, context.config
                )
                if identifier:
                    yield self.violation(
                        context,
                        node,
                        f"`==`/`!=` on simulation time `{identifier}`; "
                        "use times_equal(a, b) from repro.sim.engine",
                    )


_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
)


@register
class NoMutableDefaultsOrBareExcept(Rule):
    """R5: no mutable default arguments and no bare ``except:``."""

    rule_id = "R5"
    name = "no-mutable-defaults-or-bare-except"
    description = (
        "Mutable default arguments persist state across calls (and so "
        "across replicates); bare `except:` swallows determinism bugs "
        "silently.  Default to None, and catch specific exceptions."
    )

    def check(self, context: FileContext) -> typing.Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                arguments = node.args
                defaults = [*arguments.defaults, *arguments.kw_defaults]
                for default in defaults:
                    if default is None:
                        continue
                    if isinstance(
                        default,
                        (
                            ast.List,
                            ast.Dict,
                            ast.Set,
                            ast.ListComp,
                            ast.DictComp,
                            ast.SetComp,
                        ),
                    ) or (
                        isinstance(default, ast.Call)
                        and _call_name(default) in _MUTABLE_CALLS
                    ):
                        yield self.violation(
                            context,
                            default,
                            "mutable default argument; default to None "
                            "and create the value inside the function",
                        )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    context,
                    node,
                    "bare `except:`; catch specific exception types",
                )
