"""The lint engine: parse, run rules, honour suppressions.

Suppression syntax (documented in ``docs/LINTING.md``)::

    risky_call()            # simlint: disable=R3
    # simlint: disable-file=R4

``disable=...`` silences the listed rules on that physical line;
``disable-file=...`` silences them for the whole file.  ``disable=all``
is accepted in both forms.  Comments are located with :mod:`tokenize`,
so a ``# simlint:`` inside a string literal never suppresses anything.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
import typing

from repro.lint import rules as _rules  # noqa: F401 - registers R1-R5
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.registry import FileContext, Violation, all_rules

__all__ = [
    "PARSE_ERROR_ID",
    "Suppressions",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: Pseudo rule id for files the engine cannot parse.
PARSE_ERROR_ID = "E0"

_SUPPRESS_PATTERN = re.compile(
    r"#\s*simlint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)"
)


class Suppressions:
    """Per-line and per-file rule suppressions parsed from comments."""

    def __init__(self, source: str) -> None:
        self.by_line: typing.Dict[int, typing.Set[str]] = {}
        self.whole_file: typing.Set[str] = set()
        for line_number, comment in self._comments(source):
            match = _SUPPRESS_PATTERN.search(comment)
            if not match:
                continue
            kind, listed = match.groups()
            names = {
                name.strip().upper()
                for name in listed.split(",")
                if name.strip()
            }
            if kind == "disable-file":
                self.whole_file |= names
            else:
                self.by_line.setdefault(line_number, set()).update(names)

    @staticmethod
    def _comments(source: str) -> typing.Iterator[typing.Tuple[int, str]]:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Fall back to a plain scan; the file failed to parse anyway.
            for index, line in enumerate(source.splitlines(), start=1):
                if "#" in line:
                    yield index, line[line.index("#"):]

    def active(self, rule_id: str, line: int) -> bool:
        """True when *rule_id* is suppressed on *line*."""
        if "ALL" in self.whole_file or rule_id in self.whole_file:
            return True
        listed = self.by_line.get(line)
        return bool(listed) and ("ALL" in listed or rule_id in listed)


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig = DEFAULT_CONFIG,
) -> typing.List[Violation]:
    """Lint one unit of Python *source*, reported under *path*."""
    display_path = path.replace(os.sep, "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                path=display_path,
                line=error.lineno or 1,
                column=(error.offset or 1) - 1,
                rule_id=PARSE_ERROR_ID,
                message=f"syntax error: {error.msg}",
            )
        ]
    suppressions = Suppressions(source)
    context = FileContext(
        path=display_path,
        tree=tree,
        lines=source.splitlines(),
        config=config,
    )
    findings: typing.List[Violation] = []
    for rule in all_rules():
        if not config.rule_enabled(rule.rule_id):
            continue
        if config.is_exempt(display_path, rule.rule_id):
            continue
        for violation in rule.check(context):
            if suppressions.active(violation.rule_id, violation.line):
                continue
            findings.append(violation)
    return sorted(findings)


def lint_file(
    path: str, config: LintConfig = DEFAULT_CONFIG
) -> typing.List[Violation]:
    """Lint the file at *path* (UTF-8, errors replaced)."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        source = handle.read()
    return lint_source(source, path=path, config=config)


def iter_python_files(
    paths: typing.Iterable[str],
) -> typing.Iterator[str]:
    """Expand *paths* (files or directory trees) to sorted ``.py`` files.

    Hidden directories and ``__pycache__`` are skipped.  Yields paths in
    sorted order so the report — and CI diffs of it — are stable.
    """
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, directories, files in os.walk(path):
            directories[:] = sorted(
                d
                for d in directories
                if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def lint_paths(
    paths: typing.Iterable[str],
    config: LintConfig = DEFAULT_CONFIG,
) -> typing.Tuple[typing.List[Violation], int]:
    """Lint every Python file under *paths*.

    Returns ``(violations, files_checked)``.
    """
    findings: typing.List[Violation] = []
    checked = 0
    for file_path in iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(file_path, config=config))
    return sorted(findings), checked
