"""The lint engine: parse, run rules, honour suppressions.

Two tiers run over the linted tree:

1. the **file pass** — R1–R5, R7, R10 — walks each file's AST in
   isolation (parallelisable with ``jobs=N``; results are sorted at the
   end, so the report is identical at any worker count);
2. the **project pass** — R6, R8, R9 — runs once over a
   :class:`~repro.lint.project.ProjectContext` assembled from every
   successfully-parsed file, and may reason across module boundaries.

Suppression syntax (documented in ``docs/LINTING.md``)::

    risky_call()            # simlint: disable=R3
    # simlint: disable-file=R4

``disable=...`` silences the listed rules on that physical line;
``disable-file=...`` silences them for the whole file.  ``disable=all``
is accepted in both forms.  Comments are located with :mod:`tokenize`,
so a ``# simlint:`` inside a string literal never suppresses anything.
Suppressions apply to project-scope findings exactly like file-scope
ones: the comment lives in the file the violation points at.
"""

from __future__ import annotations

import ast
import concurrent.futures
import io
import os
import re
import tokenize
import typing

from repro.lint import invariants as _invariants  # noqa: F401 - R6-R10
from repro.lint import rules as _rules  # noqa: F401 - registers R1-R5
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.project import (
    ModuleInfo,
    build_project,
    module_name_for_path,
)
from repro.lint.registry import (
    FileContext,
    Violation,
    file_rules,
    project_rules,
)
from repro.lint.rules import ImportTable

__all__ = [
    "PARSE_ERROR_ID",
    "Suppressions",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: Pseudo rule id for files the engine cannot parse.
PARSE_ERROR_ID = "E0"

_SUPPRESS_PATTERN = re.compile(
    r"#\s*simlint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)"
)


class Suppressions:
    """Per-line and per-file rule suppressions parsed from comments."""

    def __init__(self, source: str) -> None:
        self.by_line: typing.Dict[int, typing.Set[str]] = {}
        self.whole_file: typing.Set[str] = set()
        for line_number, comment in self._comments(source):
            match = _SUPPRESS_PATTERN.search(comment)
            if not match:
                continue
            kind, listed = match.groups()
            names = {
                name.strip().upper()
                for name in listed.split(",")
                if name.strip()
            }
            if kind == "disable-file":
                self.whole_file |= names
            else:
                self.by_line.setdefault(line_number, set()).update(names)

    @staticmethod
    def _comments(source: str) -> typing.Iterator[typing.Tuple[int, str]]:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Fall back to a plain scan; the file failed to parse anyway.
            for index, line in enumerate(source.splitlines(), start=1):
                if "#" in line:
                    yield index, line[line.index("#"):]

    def active(self, rule_id: str, line: int) -> bool:
        """True when *rule_id* is suppressed on *line*."""
        if "ALL" in self.whole_file or rule_id in self.whole_file:
            return True
        listed = self.by_line.get(line)
        return bool(listed) and ("ALL" in listed or rule_id in listed)


def _parse_module(
    source: str, path: str
) -> typing.Tuple[
    typing.Optional[ModuleInfo], typing.List[Violation]
]:
    """Parse *source* into a :class:`ModuleInfo`, or an ``E0`` finding."""
    display_path = path.replace(os.sep, "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return None, [
            Violation(
                path=display_path,
                line=error.lineno or 1,
                column=(error.offset or 1) - 1,
                rule_id=PARSE_ERROR_ID,
                message=f"syntax error: {error.msg}",
            )
        ]
    module_name, is_package = module_name_for_path(display_path)
    module = ModuleInfo(
        path=display_path,
        name=module_name,
        is_package=is_package,
        tree=tree,
        lines=source.splitlines(),
        imports=ImportTable(tree, module_name, is_package),
        suppressions=Suppressions(source),
    )
    return module, []


def _file_pass(
    module: ModuleInfo, config: LintConfig
) -> typing.List[Violation]:
    """Run every enabled file-scoped rule over one parsed module."""
    context = FileContext(
        path=module.path,
        tree=module.tree,
        lines=module.lines,
        config=config,
        module_name=module.name or None,
        is_package=module.is_package,
    )
    findings: typing.List[Violation] = []
    for rule in file_rules():
        if not config.rule_enabled(rule.rule_id):
            continue
        if config.is_exempt(module.path, rule.rule_id):
            continue
        for violation in rule.check(context):
            if module.suppressions.active(
                violation.rule_id, violation.line
            ):
                continue
            findings.append(violation)
    return findings


def _project_pass(
    modules: typing.Sequence[ModuleInfo], config: LintConfig
) -> typing.List[Violation]:
    """Run every enabled project-scoped rule over the whole tree."""
    if not modules:
        return []
    project = build_project(modules, config)
    findings: typing.List[Violation] = []
    for rule in project_rules():
        if not config.rule_enabled(rule.rule_id):
            continue
        for violation in rule.check_project(project):
            if config.is_exempt(violation.path, rule.rule_id):
                continue
            owner = project.by_path.get(violation.path)
            if owner is not None and owner.suppressions.active(
                violation.rule_id, violation.line
            ):
                continue
            findings.append(violation)
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig = DEFAULT_CONFIG,
) -> typing.List[Violation]:
    """Lint one unit of Python *source*, reported under *path*.

    Runs the file pass plus the project pass over a single-module
    project, so every rule R1–R10 is exercised; cross-module facts
    (ownership, reachability seeded elsewhere) are naturally absent.
    """
    module, errors = _parse_module(source, path)
    if module is None:
        return errors
    findings = _file_pass(module, config)
    findings.extend(_project_pass([module], config))
    return sorted(findings)


def lint_file(
    path: str, config: LintConfig = DEFAULT_CONFIG
) -> typing.List[Violation]:
    """Lint the file at *path* (UTF-8, errors replaced)."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        source = handle.read()
    return lint_source(source, path=path, config=config)


def iter_python_files(
    paths: typing.Iterable[str],
) -> typing.Iterator[str]:
    """Expand *paths* (files or directory trees) to sorted ``.py`` files.

    Hidden directories and ``__pycache__`` are skipped.  Yields paths in
    sorted order so the report — and CI diffs of it — are stable.
    """
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, directories, files in os.walk(path):
            directories[:] = sorted(
                d
                for d in directories
                if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def _load_and_lint(
    file_path: str, config: LintConfig
) -> typing.Tuple[typing.Optional[ModuleInfo], typing.List[Violation]]:
    with open(file_path, "r", encoding="utf-8", errors="replace") as handle:
        source = handle.read()
    module, errors = _parse_module(source, file_path)
    if module is None:
        return None, errors
    return module, _file_pass(module, config)


def lint_paths(
    paths: typing.Iterable[str],
    config: LintConfig = DEFAULT_CONFIG,
    jobs: int = 1,
    project_scope: bool = True,
) -> typing.Tuple[typing.List[Violation], int]:
    """Lint every Python file under *paths*.

    ``jobs > 1`` fans the file pass out over a thread pool (the work is
    AST-bound, but parsing releases chunks of time and the pool also
    overlaps file IO); the final report is sorted, so it is identical
    at any worker count.  ``project_scope=False`` skips the
    cross-module pass (R6/R8/R9) — useful when linting a fragment that
    deliberately lacks its neighbours.

    Returns ``(violations, files_checked)``.
    """
    file_list = list(iter_python_files(paths))
    results: typing.List[
        typing.Tuple[typing.Optional[ModuleInfo], typing.List[Violation]]
    ]
    if jobs > 1 and len(file_list) > 1:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=jobs
        ) as pool:
            results = list(
                pool.map(
                    lambda file_path: _load_and_lint(file_path, config),
                    file_list,
                )
            )
    else:
        results = [
            _load_and_lint(file_path, config) for file_path in file_list
        ]

    findings: typing.List[Violation] = []
    modules: typing.List[ModuleInfo] = []
    for module, file_findings in results:
        findings.extend(file_findings)
        if module is not None:
            modules.append(module)
    if project_scope:
        findings.extend(_project_pass(modules, config))
    return sorted(findings), len(file_list)
