"""Failure verification: the probe side of the suspected→confirmed ladder.

The verification state machine (see ``docs/FAULTS.md``):

1. **suspected** — a guardian's beacon timeout opens a suspicion case
   and asks the neighbourhood to corroborate
   (:meth:`repro.core.sensor.SensorNode._begin_suspicion`).
2. **corroborated** — ``verification_quorum`` guardians agree the
   sensor is silent; the failure report carries
   :class:`~repro.core.messages.Confidence` ``CORROBORATED`` and is
   dispatched like a paper-baseline report.
3. A report that resolves *without* quorum still goes out, marked
   ``SUSPECTED`` — the dispatcher then runs a :class:`ProbeCoordinator`
   round-trip: a direct :class:`~repro.core.messages.ProbeRequest` to
   the suspect.  An answer kills the report; silence for twice the
   verification timeout confirms it for dispatch.
4. **confirmed-on-site** — the maintainer robot, standing at the
   failure site, checks whether the sensor answers a short-range probe
   before swapping it out.  A live answer aborts the replacement
   (charged to the ``false_dispatch`` metric family instead of a bogus
   repair).

The :class:`ProbeCoordinator` is shared by every dispatcher flavour:
the central manager's desk, an acting-manager robot's desk, and the
distributed algorithms' robots.
"""

from __future__ import annotations

import typing

from repro.core.messages import FailureNotice, ProbeReply, ProbeRequest
from repro.net.frames import Category, NodeId

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import ScenarioRuntime
    from repro.net.node import NetworkNode

__all__ = ["ProbeCoordinator"]

#: What a dispatcher does once a probe deadline expires unanswered.
ConfirmCallback = typing.Callable[[FailureNotice], None]


class ProbeCoordinator:
    """Issues are-you-alive probes for suspected failures and either
    drops the report (probe answered) or confirms it (silence)."""

    def __init__(self, host: "NetworkNode") -> None:
        self.host = host
        self.runtime: "ScenarioRuntime" = host.runtime  # type: ignore[attr-defined]
        #: failed_id -> (notice, on_confirm, probe start time).
        self._active: typing.Dict[
            NodeId, typing.Tuple[FailureNotice, ConfirmCallback, float]
        ] = {}

    def handle_suspected(
        self, notice: FailureNotice, on_confirm: ConfirmCallback
    ) -> None:
        """Probe *notice*'s subject before believing the report.

        Duplicate reports while a probe is in flight coalesce onto the
        first probe's deadline.
        """
        failed_id = notice.failed_id
        if failed_id in self._active:
            return
        runtime = self.runtime
        now = self.host.sim.now
        self._active[failed_id] = (notice, on_confirm, now)
        runtime.metrics.record_probe(failed_id)
        if runtime.tracer.active:
            runtime.tracer.emit(
                "probe",
                time=now,
                target=failed_id,
                prober=self.host.node_id,
            )
        self.host.send_routed(
            failed_id,
            notice.failed_position,
            Category.VERIFICATION,
            ProbeRequest(
                target_id=failed_id,
                target_position=notice.failed_position,
                prober_id=self.host.node_id,
                prober_position=self.host.position,
                sent_time=now,
            ),
        )
        # Adaptive verification scales the deadline with observed loss;
        # with the controller off this is exactly twice the
        # verification timeout, as before.
        self.host.sim.call_in(
            runtime.probe_deadline_s(),
            lambda: self._deadline(failed_id),
        )

    def on_probe_reply(self, reply: ProbeReply) -> None:
        """The suspect answered: it is alive, the report dies here."""
        entry = self._active.pop(reply.target_id, None)
        if entry is None:
            return  # Late answer to an already-settled probe.
        _notice, _confirm, started = entry
        now = self.host.sim.now
        self.runtime.metrics.record_probe_answered(
            reply.target_id, now - started
        )
        if self.runtime.tracer.active:
            self.runtime.tracer.emit(
                "probe_answered",
                time=now,
                target=reply.target_id,
                prober=self.host.node_id,
            )

    def _deadline(self, failed_id: NodeId) -> None:
        entry = self._active.pop(failed_id, None)
        if entry is None:
            return  # Answered in time.
        if not self.host.alive:
            return
        notice, on_confirm, _started = entry
        if self.runtime.already_repaired(failed_id):
            return
        on_confirm(notice)
