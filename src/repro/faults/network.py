"""Spatially-correlated network faults: jamming disks and partitions.

The uniform Bernoulli ``loss_rate`` of :class:`~repro.net.channel.Channel`
cannot express the failure mode that motivates failure *verification*: a
whole region going quiet at once while its sensors stay alive.  This
module adds that:

* :class:`FaultRegion` — one circular region of interference.  ``JAM``
  and ``DEGRADE`` regions drop frames arriving at receivers inside the
  disk with probability ``severity``; ``PARTITION`` regions drop every
  frame whose sender and receiver are on opposite sides of the boundary.
* :class:`NetworkFaultField` — the set of active regions, consulted by
  the channel once per (frame, receiver) pair.  With no active region
  the channel never calls it, so a scenario without network faults is
  bit-identical to one built before this module existed.
* :class:`NetworkFaultService` — drives the field from two sources:
  scripted :class:`~repro.faults.script.FaultEvent` campaigns (kinds
  ``jam``/``degrade``/``partition``) and a stochastic jammer
  (``jam_rate`` arrivals/s, disks of ``jam_radius_m``, exponential
  lifetimes of mean ``jam_duration_mtbf_s``) drawing from dedicated
  named streams so jam placement never perturbs any other subsystem.

Determinism: probabilistic in-region drops consume the ``channel.jam``
stream (never ``channel.loss``), and severity 1.0 regions drop without
drawing at all.
"""

from __future__ import annotations

import dataclasses
import itertools
import operator
import typing

from repro.faults.script import FaultEvent, FaultKind
from repro.geometry.kernels import in_disk_mask
from repro.geometry.point import Point
from repro.net.channel import DropCause
from repro.sim.rng import RandomStream

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import ScenarioRuntime

__all__ = ["FaultRegion", "NetworkFaultField", "NetworkFaultService"]

#: Default per-frame drop probability by region kind.
DEFAULT_SEVERITY = {
    FaultKind.JAM: 1.0,
    FaultKind.DEGRADE: 0.5,
    FaultKind.PARTITION: 1.0,
}


@dataclasses.dataclass(slots=True, eq=False)
class FaultRegion:
    """One circular network-fault region (identity-compared so two
    overlapping scripted regions with equal geometry stay distinct)."""

    label: str
    kind: str
    center: Point
    radius: float
    severity: float

    def covers(self, position: Point) -> bool:
        """True if *position* lies inside the disk (boundary inclusive)."""
        dx = position.x - self.center.x
        dy = position.y - self.center.y
        return dx * dx + dy * dy <= self.radius * self.radius


class NetworkFaultField:
    """The set of currently-active fault regions, queried per receiver.

    Partition regions are checked first (a hard cut dominates), then the
    highest-severity covering jam/degrade region decides a probabilistic
    drop from the dedicated *jam_rng* stream.
    """

    def __init__(self, jam_rng: RandomStream) -> None:
        self._jam_rng = jam_rng
        self._regions: typing.List[FaultRegion] = []

    @property
    def active(self) -> bool:
        """True when at least one region is live (the channel's gate)."""
        return bool(self._regions)

    @property
    def regions(self) -> typing.Tuple[FaultRegion, ...]:
        return tuple(self._regions)

    def add(self, region: FaultRegion) -> None:
        self._regions.append(region)

    def remove(self, region: FaultRegion) -> None:
        try:
            self._regions.remove(region)
        except ValueError:  # pragma: no cover - double clear is benign
            pass

    def drop_cause(
        self, sender_position: Point, receiver_position: Point
    ) -> typing.Optional[str]:
        """Why this (sender, receiver) frame copy is dropped, if at all.

        Called once per receiver by the channel's transmit loop.  Must
        consume randomness only for probabilistic in-region drops so
        out-of-region traffic is untouched.
        """
        jam_p = 0.0
        for region in self._regions:
            inside = region.covers(receiver_position)
            if region.kind == FaultKind.PARTITION:
                if inside != region.covers(sender_position):
                    return DropCause.PARTITION
            elif inside and region.severity > jam_p:
                jam_p = region.severity
        if jam_p <= 0.0:
            return None
        if jam_p >= 1.0 or self._jam_rng.random() < jam_p:
            return DropCause.JAM
        return None

    def drop_causes(
        self,
        sender_position: Point,
        receiver_xs: typing.Sequence[float],
        receiver_ys: typing.Sequence[float],
    ) -> typing.List[typing.Optional[str]]:
        """Batched :meth:`drop_cause` over parallel receiver coordinates.

        Disk membership is evaluated per region for the whole receiver
        batch with :func:`repro.geometry.kernels.in_disk_mask` (the
        same float ops as :meth:`FaultRegion.covers`), the sender's
        coverage is resolved once per region instead of once per
        (receiver, region) pair, and the combine is **sparse**: Python
        touches only the receivers a region's mask actually selects
        (via :func:`itertools.compress`), so the per-receiver cost
        scales with region coverage, not with ``receivers × regions``.

        Bit-identity with a per-receiver :meth:`drop_cause` loop rests
        on three facts about the scalar logic.  The ``PARTITION`` cause
        carries no region identity, so "first mismatching partition
        region wins" equals "any partition region mismatches".  The jam
        probability is the max severity over covering jam/degrade
        regions, which is order-independent.  And randomness: the
        scalar draws from ``channel.jam`` exactly for receivers with no
        partition mismatch and ``0 < jam_p < 1``, in receiver order —
        the final draw loop below visits jam candidates in ascending
        receiver index, skips partitioned ones, and never draws for
        ``jam_p >= 1.0``, reproducing that sequence draw for draw.
        """
        count = len(receiver_xs)
        causes: typing.List[typing.Optional[str]] = [None] * count
        jam_p: typing.Dict[int, float] = {}
        indices = range(count)
        partition = DropCause.PARTITION
        for region in self._regions:
            mask = in_disk_mask(
                receiver_xs,
                receiver_ys,
                region.center.x,
                region.center.y,
                region.radius,
            )
            if region.kind == FaultKind.PARTITION:
                if region.covers(sender_position):
                    selector: typing.Iterable[object] = map(
                        operator.not_, mask
                    )
                else:
                    selector = mask
                for index in itertools.compress(indices, selector):
                    causes[index] = partition
            else:
                severity = region.severity
                if severity <= 0.0:
                    continue
                for index in itertools.compress(indices, mask):
                    if severity > jam_p.get(index, 0.0):
                        jam_p[index] = severity
        if jam_p:
            rng_random = self._jam_rng.random
            jam = DropCause.JAM
            for index in sorted(jam_p):
                if causes[index] is not None:
                    continue
                probability = jam_p[index]
                if probability >= 1.0 or rng_random() < probability:
                    causes[index] = jam
        return causes


class NetworkFaultService:
    """Arms scripted and stochastic network faults on the runtime's
    channel.  Constructed only when ``config.network_faults_enabled``;
    its absence leaves the channel's fault hook ``None``."""

    def __init__(self, runtime: "ScenarioRuntime") -> None:
        self.runtime = runtime
        self.config = runtime.config
        self.field = NetworkFaultField(
            runtime.streams.stream("channel.jam")
        )
        runtime.channel.fault_field = self.field
        self._started = False
        self._jam_count = 0

    def start(self) -> None:
        """Schedule scripted region events and the stochastic jammer."""
        if self._started:
            return
        self._started = True
        sim = self.runtime.sim
        for event in self.config.fault_script or ():
            if event.kind not in FaultKind.NETWORK:
                continue  # Robot faults belong to the FaultInjector.
            sim.call_at(event.time, lambda e=event: self._apply(e))
        if self.config.jam_rate is not None:
            sim.process(self._stochastic_jams(), name="net_faults")

    # ------------------------------------------------------------------
    # Scripted regions
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        severity = (
            event.severity
            if event.severity is not None
            else DEFAULT_SEVERITY[event.kind]
        )
        region = FaultRegion(
            label=event.target,
            kind=event.kind,
            center=Point(
                typing.cast(float, event.x), typing.cast(float, event.y)
            ),
            radius=typing.cast(float, event.radius),
            severity=severity,
        )
        self._activate(region, event.duration)

    # ------------------------------------------------------------------
    # Stochastic jammer
    # ------------------------------------------------------------------
    def _stochastic_jams(self) -> typing.Generator:
        """Poisson jam arrivals at uniform positions, exponential
        lifetimes — three dedicated streams so each knob is independent."""
        streams = self.runtime.streams
        arrival = streams.stream("net_faults.arrival")
        geometry = streams.stream("net_faults.geometry")
        duration = streams.stream("net_faults.duration")
        side = self.config.area_side_m
        rate = typing.cast(float, self.config.jam_rate)
        while True:
            yield self.runtime.sim.timeout(arrival.expovariate(rate))
            self._jam_count += 1
            region = FaultRegion(
                label=f"jam-{self._jam_count:03d}",
                kind=FaultKind.JAM,
                center=Point(
                    geometry.uniform(0.0, side),
                    geometry.uniform(0.0, side),
                ),
                radius=self.config.jam_radius_m,
                severity=self.config.jam_loss_rate,
            )
            self._activate(
                region,
                duration.expovariate(
                    1.0 / self.config.jam_duration_mtbf_s
                ),
            )

    # ------------------------------------------------------------------
    # Region lifecycle
    # ------------------------------------------------------------------
    def _activate(
        self, region: FaultRegion, duration: typing.Optional[float]
    ) -> None:
        self.field.add(region)
        self._trace(
            "net_fault",
            label=region.label,
            kind=region.kind,
            x=region.center.x,
            y=region.center.y,
            radius=region.radius,
            severity=region.severity,
        )
        if duration is not None:
            self.runtime.sim.call_in(
                duration, lambda: self._clear(region)
            )

    def _clear(self, region: FaultRegion) -> None:
        self.field.remove(region)
        self._trace(
            "net_fault_cleared", label=region.label, kind=region.kind
        )

    def _trace(self, category: str, **fields: typing.Any) -> None:
        tracer = self.runtime.tracer
        if tracer.active:
            tracer.emit(category, time=self.runtime.sim.now, **fields)
