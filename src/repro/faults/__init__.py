"""Deterministic fault injection for robots and the central manager.

The paper assumes the maintenance fleet itself never fails; this package
removes that assumption.  Faults come from two sources, both pure
functions of the :class:`~repro.deploy.ScenarioConfig` plus the seed:

* **Scripted campaigns** — an ordered tuple of :class:`FaultEvent`
  records carried inside the config (so runs stay content-addressable
  in ``repro.store``).
* **Stochastic models** — per-robot exponential time-between-failures
  (:class:`ExponentialFaultModel`) driven by named
  :class:`~repro.sim.rng.RandomStreams`.

:class:`FaultInjector` turns both into simulator events;
:class:`ResilienceService` is the self-healing counterpart — heartbeats,
failure declaration, manager failover, and repair reconciliation.
"""

from repro.faults.adaptive import (
    AdaptiveVerification,
    CoopRepairService,
    JamAwarePlanner,
)
from repro.faults.injector import FaultInjector
from repro.faults.model import ExponentialFaultModel
from repro.faults.network import (
    FaultRegion,
    NetworkFaultField,
    NetworkFaultService,
)
from repro.faults.recovery import ResilienceService
from repro.faults.script import (
    FaultEvent,
    FaultKind,
    dump_fault_script,
    load_fault_script,
    normalize_fault_script,
    parse_fault_script,
    resolve_downtime,
)
from repro.faults.verify import ProbeCoordinator

__all__ = [
    "AdaptiveVerification",
    "CoopRepairService",
    "ExponentialFaultModel",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultRegion",
    "JamAwarePlanner",
    "NetworkFaultField",
    "NetworkFaultService",
    "ProbeCoordinator",
    "ResilienceService",
    "dump_fault_script",
    "load_fault_script",
    "normalize_fault_script",
    "parse_fault_script",
    "resolve_downtime",
]
