"""Adaptive degraded-mode operation (cooperation, adaptation, rerouting).

Three cooperating controllers, each gated by its own
:class:`~repro.deploy.ScenarioConfig` flag and constructed only when
that flag is on — with all three off, none of this module's objects
exist and every simulated code path is bit-identical to the
non-adaptive simulator:

* :class:`AdaptiveVerification` (``adaptive_verify``) — scales the
  verification ladder's suspicion timeout, probe deadline, and
  corroboration quorum from *observed* channel loss.  A periodic
  observer diffs :class:`~repro.net.channel.ChannelStats` over a
  window and classifies the channel as ``tight`` (clean: shorter
  timeouts, smaller quorum — faster confirmations), ``normal``
  (config values exactly), or ``wide`` (lossy/jammed: longer
  timeouts, larger quorum — false replacements stay at zero).  A
  per-neighbourhood signal (the guardian's own fraction of silent
  beacon peers) widens the quorum locally even when the global
  channel looks clean.
* :class:`CoopRepairService` (``coop_repair``) — when a robot's
  pending-repair backlog exceeds ``coop_backlog_threshold`` (e.g.
  after an outage window dumped re-dispatched work on the survivors),
  the surplus item is auctioned to an under-loaded peer through a
  bounded claim protocol over ordinary routed messages
  (:class:`~repro.core.messages.BacklogOffer` /
  :class:`~repro.core.messages.BacklogClaim` /
  :class:`~repro.core.messages.BacklogAccept` /
  :class:`~repro.core.messages.BacklogRelease`).  Every step is
  loss-safe: a lost claim or accept times out and moves to the next
  candidate; a lost release leaves the item queued at two robots,
  and the slower one skips the already-repaired sensor — duplicate
  work, never a dropped failure.
* :class:`JamAwarePlanner` (``jam_aware``) — robot travel legs
  consult the live :class:`~repro.faults.network.NetworkFaultField`
  and route around active jam disks with tangent-segment detours
  (:func:`repro.geometry.detour.plan_route`), so an en-route robot
  stays able to hear abort and verification traffic.

Determinism: the only randomness in this module is the observer
loop's start-phase jitter, drawn from the dedicated
``adaptive.observe`` stream (simlint R1); the auction and the planner
draw nothing.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.messages import (
    BacklogAccept,
    BacklogClaim,
    BacklogOffer,
    BacklogRelease,
    FailureNotice,
)
from repro.faults.script import FaultKind
from repro.geometry.detour import plan_route
from repro.geometry.point import Point
from repro.net.frames import Category, NodeId

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.dispatch import DispatchDesk
    from repro.core.robot import RobotNode
    from repro.core.runtime import ScenarioRuntime
    from repro.core.sensor import SensorNode
    from repro.net.node import NetworkNode

__all__ = [
    "AdaptiveVerification",
    "CoopRepairService",
    "JamAwarePlanner",
]

# ----------------------------------------------------------------------
# Adaptive verification
# ----------------------------------------------------------------------

#: Channel-condition levels, ordered clean → hostile.
LEVEL_TIGHT = "tight"
LEVEL_NORMAL = "normal"
LEVEL_WIDE = "wide"

#: Observed drop fraction below which the channel counts as clean.
TIGHT_BELOW = 0.02
#: Observed drop fraction above which the channel counts as jammed.
WIDE_ABOVE = 0.15

#: Multiplier applied to the suspicion timeout and probe deadline.
TIMEOUT_FACTOR = {LEVEL_TIGHT: 0.5, LEVEL_NORMAL: 1.0, LEVEL_WIDE: 2.0}
#: Additive adjustment to the corroboration quorum.
QUORUM_DELTA = {LEVEL_TIGHT: -1, LEVEL_NORMAL: 0, LEVEL_WIDE: 1}

#: Minimum frames in a window before the observer trusts the ratio.
_MIN_WINDOW_FRAMES = 20
#: A guardian whose silent-peer fraction exceeds this widens locally.
_STALE_NEIGHBOR_FRACTION = 0.5


class AdaptiveVerification:
    """Scales verification knobs from observed channel loss.

    Constructed only when ``config.adaptive_verify`` is set (which in
    turn requires ``verify_failures``).  The runtime's
    ``suspicion_timeout_s`` / ``probe_deadline_s`` /
    ``verification_quorum_for`` helpers delegate here when this object
    exists and return the exact config arithmetic when it does not.
    """

    def __init__(self, runtime: "ScenarioRuntime") -> None:
        self.runtime = runtime
        self.config = runtime.config
        #: Current channel classification; starts at the config values.
        self.level = LEVEL_NORMAL
        self._snapshot = runtime.channel.stats.snapshot()
        self._started = False

    def start(self) -> None:
        """Launch the periodic loss observer (idempotent)."""
        if self._started:
            return
        self._started = True
        self.runtime.sim.process(self._observe(), name="adaptive.observe")

    def _observe(self) -> typing.Generator:
        # Start-phase jitter desynchronises the observer from beacon
        # periods and other window-aligned machinery; its dedicated
        # stream keeps every other subsystem's draws untouched.
        rng = self.runtime.streams.stream("adaptive.observe")
        window = self.config.adaptation_window_s
        yield self.runtime.sim.timeout(rng.uniform(0.0, window))
        while True:
            yield self.runtime.sim.timeout(window)
            self._update()

    def _update(self) -> None:
        stats = self.runtime.channel.stats
        delta = stats.diff_since(self._snapshot)
        self._snapshot = stats.snapshot()
        attempts = delta["frames_delivered"] + delta["frames_lost"]
        if attempts < _MIN_WINDOW_FRAMES:
            return  # Too little traffic this window to judge the air.
        loss = delta["frames_lost"] / attempts
        if loss < TIGHT_BELOW:
            level = LEVEL_TIGHT
        elif loss > WIDE_ABOVE:
            level = LEVEL_WIDE
        else:
            level = LEVEL_NORMAL
        if level == self.level:
            return
        previous, self.level = self.level, level
        tracer = self.runtime.tracer
        if tracer.active:
            tracer.emit(
                "adaptive_mode",
                time=self.runtime.sim.now,
                level=level,
                previous=previous,
                loss=round(loss, 4),
            )

    # -- knobs consulted by the runtime's helper methods ---------------
    def suspicion_timeout_s(self, base: float) -> float:
        """The guardian's silence window before resolving a suspicion."""
        return base * TIMEOUT_FACTOR[self.level]

    def probe_deadline_s(self, base: float) -> float:
        """How long a dispatcher waits on an are-you-alive probe."""
        return base * TIMEOUT_FACTOR[self.level]

    def quorum_for(self, sensor: typing.Optional["SensorNode"]) -> int:
        """The corroboration quorum for *sensor*'s neighbourhood.

        Global channel level first, then a local widening: a guardian
        that has itself stopped hearing most of its beacon peers is
        probably sitting inside a jam the global ratio has diluted, so
        it demands one more corroborating vote.  Clamped to
        ``[1, adaptive_quorum_max]`` and recorded to the run report's
        quorum histogram.
        """
        quorum = self.config.verification_quorum + QUORUM_DELTA[self.level]
        if sensor is not None:
            silence = (
                self.config.missed_beacons_for_failure
                * self.config.beacon_period_s
            )
            if (
                sensor.stale_neighbor_fraction(silence)
                > _STALE_NEIGHBOR_FRACTION
            ):
                quorum += 1
        quorum = max(1, min(self.config.adaptive_quorum_max, quorum))
        self.runtime.metrics.record_adaptive_quorum(quorum)
        return quorum


# ----------------------------------------------------------------------
# Cooperative backlog repair
# ----------------------------------------------------------------------

#: Helpers tried per auction before the item stays with its origin.
_MAX_CANDIDATES = 3


@dataclasses.dataclass(slots=True)
class _Auction:
    """One backlog item being offered to helper candidates in turn."""

    failed_id: NodeId
    failed_position: Point
    origin_id: NodeId
    origin_position: Point
    notice: FailureNotice
    #: The auctioneer node (desk host, or the origin robot itself).
    host: "NetworkNode"
    #: Desk whose bookkeeping a transfer must update (None when the
    #: origin robot auctions directly under a distributed algorithm).
    desk: typing.Optional["DispatchDesk"]
    #: ``(robot_id, last known position)`` helpers, nearest first.
    candidates: typing.List[typing.Tuple[NodeId, Point]]
    index: int = 0
    #: Monotone step counter matching claim timeouts to claims.
    token: int = 0


class CoopRepairService:
    """Auctions surplus backlog items to under-loaded peer robots.

    One instance per runtime (constructed only when
    ``config.coop_repair``); it holds the auction bookkeeping for every
    auctioneer but acts strictly on local events and routed messages —
    candidate *selection* uses only state the auctioneer legitimately
    has (the desk's robot registry, or heartbeat evidence / the
    deployment-time fleet roster for a distributed robot).
    """

    def __init__(self, runtime: "ScenarioRuntime") -> None:
        self.runtime = runtime
        self.config = runtime.config
        #: failed_id -> live auction.
        self._auctions: typing.Dict[NodeId, _Auction] = {}
        #: origin robot -> failed_id it currently has on offer (one
        #: auction per origin keeps the protocol bounded).
        self._active_offer: typing.Dict[NodeId, NodeId] = {}
        #: robot -> backlog-episode start time (queue over threshold).
        self._episode_start: typing.Dict[NodeId, float] = {}

    # ------------------------------------------------------------------
    # Local triggers
    # ------------------------------------------------------------------
    def note_backlog(self, robot: "RobotNode") -> None:
        """Re-evaluate *robot*'s backlog after a local queue change.

        Called from the robot's own enqueue/dequeue/release events and
        from the recovery hook — never from a global poll.
        """
        self._update_episode(robot)
        if robot.queue_length <= self.config.coop_backlog_threshold:
            return
        if not robot.alive or robot.down:
            return
        if robot.node_id in self._active_offer:
            return  # One item on offer at a time per origin.
        task = robot.peek_surplus()
        if task is None:
            return
        if self.runtime.already_repaired(task.failed_id):
            return
        if task.failed_id in self._auctions:
            return
        notice = task.notice or FailureNotice(
            failed_id=task.failed_id,
            failed_position=task.position,
            guardian_id=robot.node_id,
            detect_time=self.runtime.sim.now,
        )
        if (
            self.runtime.coordination.uses_central_manager
            and not robot.acting_manager
        ):
            self._offer_to_desk(robot, task.failed_id, task.position, notice)
        else:
            self._auction_from(robot, task.failed_id, task.position, notice)

    def note_robot_dead(self, robot_id: NodeId) -> None:
        """A robot was declared dead: fail its pending claim rounds now.

        Auctions whose current candidate is the dead robot advance to
        the next helper immediately instead of waiting out the claim
        timeout; auctions whose *origin* died are dropped (the origin's
        orphaned queue is re-dispatched by the resilience machinery).
        """
        for failed_id in sorted(self._auctions):
            auction = self._auctions.get(failed_id)
            if auction is None:
                continue
            if auction.origin_id == robot_id:
                self._drop_auction(auction)
                continue
            if (
                auction.index < len(auction.candidates)
                and auction.candidates[auction.index][0] == robot_id
            ):
                auction.token += 1  # Invalidate the in-flight timeout.
                auction.index += 1
                if auction.index >= len(auction.candidates):
                    self._drop_auction(auction)
                else:
                    self._send_claim(auction)

    def note_recovery(self, robot: "RobotNode") -> None:
        """A robot came back up: overloaded peers re-try their auctions.

        The recovered robot's location flood (sent by the recovery
        path) is what prompts peers whose earlier auctions exhausted
        their candidates to try again — modelled here as a backlog
        re-evaluation for every robot, each still acting only on its
        own queue.
        """
        for peer in self.runtime.robots_sorted():
            self.note_backlog(peer)

    def _update_episode(self, robot: "RobotNode") -> None:
        now = self.runtime.sim.now
        if robot.queue_length > self.config.coop_backlog_threshold:
            self._episode_start.setdefault(robot.node_id, now)
            return
        start = self._episode_start.pop(robot.node_id, None)
        if start is not None:
            self.runtime.metrics.record_backlog_drain(
                robot.node_id, now - start
            )

    # ------------------------------------------------------------------
    # Origin side
    # ------------------------------------------------------------------
    def _offer_to_desk(
        self,
        robot: "RobotNode",
        failed_id: NodeId,
        position: Point,
        notice: FailureNotice,
    ) -> None:
        if robot.manager_id is None or robot.manager_position is None:
            return
        self._active_offer[robot.node_id] = failed_id
        self._record_offer(failed_id, robot.node_id)
        robot.send_routed(
            robot.manager_id,
            robot.manager_position,
            Category.REPAIR_REQUEST,
            BacklogOffer(
                failed_id=failed_id,
                failed_position=position,
                origin_id=robot.node_id,
                origin_position=robot.position,
                notice=notice,
                sent_time=self.runtime.sim.now,
            ),
        )
        # A lost offer (or a desk with no spare helpers) must not wedge
        # the origin forever: clear the flag after the whole auction
        # could have run, so the next local queue event can retry.
        budget = self.config.coop_claim_timeout_s * (_MAX_CANDIDATES + 1)
        origin_id = robot.node_id
        self.runtime.sim.call_in(
            budget, lambda: self._offer_expired(origin_id, failed_id)
        )

    def _offer_expired(self, origin_id: NodeId, failed_id: NodeId) -> None:
        if self._active_offer.get(origin_id) == failed_id:
            if failed_id not in self._auctions:
                del self._active_offer[origin_id]

    def _auction_from(
        self,
        robot: "RobotNode",
        failed_id: NodeId,
        position: Point,
        notice: FailureNotice,
    ) -> None:
        """Distributed algorithms (and an acting manager): the
        overloaded robot runs the auction itself."""
        candidates = self._peer_candidates(robot, position)
        if not candidates:
            return
        self._active_offer[robot.node_id] = failed_id
        self._record_offer(failed_id, robot.node_id)
        auction = _Auction(
            failed_id=failed_id,
            failed_position=position,
            origin_id=robot.node_id,
            origin_position=robot.position,
            notice=notice,
            host=robot,
            # An acting manager auctioning its own surplus still keeps
            # its desk's load view consistent on transfer.
            desk=robot.desk if robot.acting_manager else None,
            candidates=candidates,
        )
        self._auctions[failed_id] = auction
        self._send_claim(auction)

    def _peer_candidates(
        self, robot: "RobotNode", position: Point
    ) -> typing.List[typing.Tuple[NodeId, Point]]:
        """Nearest peers by the best evidence the origin has: heartbeat
        positions when resilience runs, else the fleet roster the
        robots learned at deployment (live positions stand in for the
        location floods peers have been relaying)."""
        entries: typing.List[typing.Tuple[NodeId, Point]] = []
        service = self.runtime.resilience
        if service is not None and service.last_position:
            for robot_id in sorted(service.last_position):
                if robot_id == robot.node_id:
                    continue
                if robot_id in service.declared_dead:
                    continue
                entries.append((robot_id, service.last_position[robot_id]))
        else:
            for peer in self.runtime.robots_sorted():
                if peer.node_id == robot.node_id or not peer.alive:
                    continue
                entries.append((peer.node_id, peer.position))
        entries.sort(
            key=lambda entry: (
                position.squared_distance_to(entry[1]),
                entry[0],
            )
        )
        return entries[:_MAX_CANDIDATES]

    # ------------------------------------------------------------------
    # Desk side
    # ------------------------------------------------------------------
    def handle_offer(
        self, desk: "DispatchDesk", offer: BacklogOffer
    ) -> None:
        """The desk received a :class:`BacklogOffer`: pick helpers."""
        if self.runtime.already_repaired(offer.failed_id):
            return
        if offer.failed_id in self._auctions:
            return
        origin_load = desk.outstanding.get(offer.origin_id, 0)
        candidates: typing.List[typing.Tuple[NodeId, Point]] = []
        for robot_id in sorted(desk.robot_registry):
            if robot_id == offer.origin_id or desk.is_dead(robot_id):
                continue
            load = desk.outstanding.get(robot_id, 0)
            # "Under-loaded" relative to the overloaded origin when the
            # desk tracks its load; otherwise under the global threshold.
            if origin_load > 0:
                if load >= origin_load:
                    continue
            elif load > self.config.coop_backlog_threshold:
                continue
            candidates.append((robot_id, desk.robot_registry[robot_id]))
        candidates.sort(
            key=lambda entry: (
                offer.failed_position.squared_distance_to(entry[1]),
                entry[0],
            )
        )
        candidates = candidates[:_MAX_CANDIDATES]
        if not candidates:
            return
        auction = _Auction(
            failed_id=offer.failed_id,
            failed_position=offer.failed_position,
            origin_id=offer.origin_id,
            origin_position=offer.origin_position,
            notice=offer.notice,
            host=desk.host,
            desk=desk,
            candidates=candidates,
        )
        self._auctions[offer.failed_id] = auction
        self._send_claim(auction)

    # ------------------------------------------------------------------
    # Claim round
    # ------------------------------------------------------------------
    def _send_claim(self, auction: _Auction) -> None:
        if not auction.host.alive:
            self._drop_auction(auction)
            return
        helper_id, helper_position = auction.candidates[auction.index]
        now = self.runtime.sim.now
        auction.host.send_routed(
            helper_id,
            helper_position,
            Category.REPAIR_REQUEST,
            BacklogClaim(
                failed_id=auction.failed_id,
                failed_position=auction.failed_position,
                origin_id=auction.origin_id,
                origin_position=auction.origin_position,
                reply_to_id=auction.host.node_id,
                reply_to_position=auction.host.position,
                notice=auction.notice,
                sent_time=now,
            ),
        )
        failed_id = auction.failed_id
        token = auction.token
        self.runtime.sim.call_in(
            self.config.coop_claim_timeout_s,
            lambda: self._claim_deadline(failed_id, token),
        )

    def _claim_deadline(self, failed_id: NodeId, token: int) -> None:
        auction = self._auctions.get(failed_id)
        if auction is None or auction.token != token:
            return  # Settled, or a later claim round owns the timer.
        if self.runtime.already_repaired(failed_id):
            self._drop_auction(auction)
            return
        auction.index += 1
        auction.token += 1
        if auction.index >= len(auction.candidates):
            # Every candidate stayed silent: the item remains with its
            # origin; the next local queue event may retry.
            self._drop_auction(auction)
            return
        self._send_claim(auction)

    def _drop_auction(self, auction: _Auction) -> None:
        self._auctions.pop(auction.failed_id, None)
        if self._active_offer.get(auction.origin_id) == auction.failed_id:
            del self._active_offer[auction.origin_id]

    # ------------------------------------------------------------------
    # Helper side
    # ------------------------------------------------------------------
    def handle_claim(
        self, robot: "RobotNode", claim: BacklogClaim
    ) -> None:
        """A robot received a :class:`BacklogClaim`: take it or stay
        silent (silence is the rejection — the claim times out)."""
        if not robot.accept_coop_task(claim):
            return
        now = self.runtime.sim.now
        self.runtime.metrics.record_coop_claim(
            claim.failed_id, claim.origin_id, robot.node_id
        )
        if self.runtime.tracer.active:
            self.runtime.tracer.emit(
                "coop_claim",
                time=now,
                failed=claim.failed_id,
                origin=claim.origin_id,
                helper=robot.node_id,
            )
        if robot.node_id == claim.reply_to_id:
            return  # pragma: no cover - a claim never targets its sender
        robot.send_routed(
            claim.reply_to_id,
            claim.reply_to_position,
            Category.REPAIR_REQUEST,
            BacklogAccept(
                failed_id=claim.failed_id,
                helper_id=robot.node_id,
                origin_id=claim.origin_id,
                sent_time=now,
            ),
        )

    # ------------------------------------------------------------------
    # Accept / release
    # ------------------------------------------------------------------
    def handle_accept(
        self, host: "NetworkNode", accept: BacklogAccept
    ) -> None:
        """The auctioneer learned a helper took the item: settle it.

        A late accept (after the claim round moved on) is still
        honoured with a release — at worst two helpers hold the item
        and the slower one skips the already-repaired sensor.
        """
        auction = self._auctions.pop(accept.failed_id, None)
        desk = auction.desk if auction is not None else None
        if desk is not None:
            # Load bookkeeping follows the item; the completion watch
            # (resilience mode) now waits on the helper instead of the
            # overloaded origin.
            desk.outstanding[accept.helper_id] = (
                desk.outstanding.get(accept.helper_id, 0) + 1
            )
            current = desk.outstanding.get(accept.origin_id, 0)
            desk.outstanding[accept.origin_id] = max(0, current - 1)
            desk.reassign_pending(accept.failed_id, accept.helper_id)
        if self._active_offer.get(accept.origin_id) == accept.failed_id:
            del self._active_offer[accept.origin_id]
        origin = self.runtime.robots.get(accept.origin_id)
        if host.node_id == accept.origin_id:
            # Distributed: the auctioneer *is* the origin — drop the
            # transferred item locally, no release message needed.
            if origin is not None:
                self._release_at(origin, accept.failed_id, accept.helper_id)
            return
        if self.runtime.tracer.active:
            self.runtime.tracer.emit(
                "coop_release",
                time=self.runtime.sim.now,
                failed=accept.failed_id,
                origin=accept.origin_id,
                helper=accept.helper_id,
            )
        origin_position = None
        if desk is not None:
            origin_position = desk.robot_registry.get(accept.origin_id)
        if origin_position is None and origin is not None:
            origin_position = origin.position
        if origin_position is None:
            return  # Origin unknown: duplicate work, still loss-safe.
        host.send_routed(
            accept.origin_id,
            origin_position,
            Category.REPAIR_REQUEST,
            BacklogRelease(
                failed_id=accept.failed_id,
                origin_id=accept.origin_id,
                helper_id=accept.helper_id,
                sent_time=self.runtime.sim.now,
            ),
        )

    def handle_release(
        self, robot: "RobotNode", release: BacklogRelease
    ) -> None:
        """The origin robot may drop the item a helper accepted."""
        self._release_at(robot, release.failed_id, release.helper_id)

    def _release_at(
        self, robot: "RobotNode", failed_id: NodeId, helper_id: NodeId
    ) -> None:
        removed = robot.remove_queued(failed_id)
        if removed and self.runtime.tracer.active and robot.node_id != helper_id:
            self.runtime.tracer.emit(
                "coop_released",
                time=self.runtime.sim.now,
                failed=failed_id,
                origin=robot.node_id,
                helper=helper_id,
            )
        self.note_backlog(robot)

    def _record_offer(self, failed_id: NodeId, origin_id: NodeId) -> None:
        self.runtime.metrics.record_coop_offer(failed_id, origin_id)
        if self.runtime.tracer.active:
            self.runtime.tracer.emit(
                "coop_offer",
                time=self.runtime.sim.now,
                failed=failed_id,
                origin=origin_id,
            )


# ----------------------------------------------------------------------
# Jam-aware dispatch
# ----------------------------------------------------------------------

#: Regions lossier than this are worth driving around; milder degrade
#: disks still deliver most frames, so the straight line wins.
_REROUTE_SEVERITY = 0.5


class JamAwarePlanner:
    """Plans robot travel around the currently active jam disks.

    Constructed only when ``config.jam_aware``; robots call
    :meth:`plan` once per travel leg.  With no active jam region the
    plan is the straight line (a one-element route), so a jam-aware
    run without network faults drives exactly the baseline paths.
    """

    def __init__(self, runtime: "ScenarioRuntime") -> None:
        self.runtime = runtime
        self.margin = runtime.config.jam_detour_margin_m

    def jam_disks(self) -> typing.Tuple[typing.Tuple[Point, float], ...]:
        """Active jam/degrade regions as ``(center, radius)`` disks."""
        service = self.runtime.network_faults
        if service is None:
            return ()
        return tuple(
            (region.center, region.radius)
            for region in service.field.regions
            if region.kind in (FaultKind.JAM, FaultKind.DEGRADE)
            and region.severity >= _REROUTE_SEVERITY
        )

    def plan(
        self, start: Point, target: Point
    ) -> typing.Tuple[Point, ...]:
        """Waypoints from *start* to *target* (excluding *start*,
        ending with *target*) around the live jam disks."""
        disks = self.jam_disks()
        if not disks:
            return (target,)
        return plan_route(start, target, disks, margin=self.margin)
