"""Scripted fault campaigns: ordered ``(time, target, kind)`` events.

A :class:`FaultEvent` names one thing that breaks at one simulated time.
Scripts are carried inside :class:`~repro.deploy.ScenarioConfig` (as a
normalised tuple, sorted so equal campaigns content-hash equally in
``repro.store``) and can be loaded from JSON files for the CLI's
``--fault-script`` flag.

This module is dependency-free below :mod:`repro.geometry` level on
purpose: the scenario config imports it without cycles.
"""

from __future__ import annotations

import dataclasses
import json
import typing

__all__ = [
    "FaultKind",
    "FaultEvent",
    "normalize_fault_script",
    "parse_fault_script",
    "dump_fault_script",
    "load_fault_script",
    "resolve_downtime",
]


class FaultKind:
    """What breaks when a :class:`FaultEvent` fires.

    Robot/manager kinds (target is a node id):

    * ``BREAKDOWN`` — a robot halts where it is (en-route or parked) and
      recovers after a downtime (``duration`` or the config default).
    * ``CRASH`` — a robot dies permanently (``duration`` must be None).
    * ``BATTERY`` — battery depletion: like a breakdown but with twice
      the default downtime (a recharge, not a field fix).
    * ``MANAGER_DOWN`` — the central manager goes dark; with a
      ``duration`` it restarts, without one it stays dead.

    Network kinds (target is a free-form region label; ``x``/``y``/
    ``radius`` describe a disk, handled by ``repro.faults.network``):

    * ``JAM`` — every frame arriving at a receiver inside the disk is
      dropped with probability ``severity`` (default 1.0).
    * ``DEGRADE`` — like ``JAM`` but meant for partial interference;
      ``severity`` defaults to 0.5.
    * ``PARTITION`` — a hard cut at the disk's boundary: frames whose
      sender and receiver are on opposite sides never arrive.
    """

    BREAKDOWN = "breakdown"
    CRASH = "crash"
    BATTERY = "battery"
    MANAGER_DOWN = "manager_down"
    JAM = "jam"
    DEGRADE = "degrade"
    PARTITION = "partition"

    ROBOT = (BREAKDOWN, CRASH, BATTERY, MANAGER_DOWN)
    NETWORK = (JAM, DEGRADE, PARTITION)
    ALL = ROBOT + NETWORK


@dataclasses.dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scripted fault: *target* suffers *kind* at simulated *time*.

    ``duration`` overrides the config's default downtime; None means
    "use the default" for recoverable kinds and "permanent" for
    ``CRASH`` and ``MANAGER_DOWN``.

    Network kinds additionally carry the region geometry: ``x``/``y``
    (disk center) and ``radius`` are required, ``severity`` is the
    per-frame drop probability in ``(0, 1]`` (default per kind), and
    ``duration`` (None = for the rest of the run) bounds the outage.
    Robot kinds must leave all four geometry fields None.
    """

    time: float
    target: str
    kind: str
    duration: typing.Optional[float] = None
    x: typing.Optional[float] = None
    y: typing.Optional[float] = None
    radius: typing.Optional[float] = None
    severity: typing.Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0: {self.time}")
        if not self.target:
            raise ValueError("fault target must be a node id")
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(
                f"fault duration must be positive: {self.duration}"
            )
        if self.kind == FaultKind.CRASH and self.duration is not None:
            raise ValueError("a crash is permanent: duration must be None")
        if self.kind in FaultKind.NETWORK:
            if self.x is None or self.y is None or self.radius is None:
                raise ValueError(
                    f"network fault {self.kind!r} requires x, y and radius"
                )
            if self.radius <= 0:
                raise ValueError(
                    f"fault region radius must be positive: {self.radius}"
                )
            if self.severity is not None and not (
                0.0 < self.severity <= 1.0
            ):
                raise ValueError(
                    f"fault severity must be in (0, 1]: {self.severity}"
                )
        else:
            for name in ("x", "y", "radius", "severity"):
                if getattr(self, name) is not None:
                    raise ValueError(
                        f"{name!r} only applies to network fault kinds, "
                        f"not {self.kind!r}"
                    )

    @property
    def sort_key(self) -> typing.Tuple[float, str, str]:
        """Canonical ordering: by time, then target, then kind."""
        return (self.time, self.target, self.kind)

    # ------------------------------------------------------------------
    # JSON round trip (repro.store digest preimage)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> typing.Dict[str, typing.Any]:
        def opt(value: typing.Optional[float]) -> typing.Optional[float]:
            return float(value) if value is not None else None

        return {
            "time": float(self.time),
            "target": self.target,
            "kind": self.kind,
            "duration": opt(self.duration),
            "x": opt(self.x),
            "y": opt(self.y),
            "radius": opt(self.radius),
            "severity": opt(self.severity),
        }

    @classmethod
    def from_json_dict(
        cls, data: typing.Mapping[str, typing.Any]
    ) -> "FaultEvent":
        known = {
            "time",
            "target",
            "kind",
            "duration",
            "x",
            "y",
            "radius",
            "severity",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown FaultEvent fields: {', '.join(unknown)}"
            )

        def opt(name: str) -> typing.Optional[float]:
            value = data.get(name)
            return float(value) if value is not None else None

        return cls(
            time=float(data["time"]),
            target=str(data["target"]),
            kind=str(data["kind"]),
            duration=opt("duration"),
            x=opt("x"),
            y=opt("y"),
            radius=opt("radius"),
            severity=opt("severity"),
        )


def normalize_fault_script(
    events: typing.Iterable[typing.Union[FaultEvent, typing.Mapping]],
) -> typing.Tuple[FaultEvent, ...]:
    """Coerce *events* (FaultEvents or plain dicts) to the canonical
    sorted tuple used inside :class:`~repro.deploy.ScenarioConfig`."""
    coerced = [
        event
        if isinstance(event, FaultEvent)
        else FaultEvent.from_json_dict(event)
        for event in events
    ]
    return tuple(sorted(coerced, key=lambda event: event.sort_key))


def parse_fault_script(
    data: typing.Sequence[typing.Mapping[str, typing.Any]],
) -> typing.Tuple[FaultEvent, ...]:
    """Parse a JSON-decoded list of event dicts into a script."""
    return normalize_fault_script(data)


def dump_fault_script(
    events: typing.Sequence[FaultEvent],
) -> typing.List[typing.Dict[str, typing.Any]]:
    """The JSON-native form of a script (a list of event dicts)."""
    return [event.to_json_dict() for event in normalize_fault_script(events)]


def load_fault_script(path: str) -> typing.Tuple[FaultEvent, ...]:
    """Load a script from a JSON file: ``[{"time": ..., "target": ...,
    "kind": ..., "duration": ...}, ...]``."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise ValueError(
            f"fault script must be a JSON list of events: {path}"
        )
    return parse_fault_script(data)


def resolve_downtime(
    event: FaultEvent, default_downtime_s: float
) -> typing.Optional[float]:
    """How long *event*'s victim stays down; None means forever."""
    if event.kind == FaultKind.CRASH:
        return None
    if event.kind == FaultKind.MANAGER_DOWN:
        return event.duration
    if event.duration is not None:
        return event.duration
    if event.kind == FaultKind.BATTERY:
        return 2.0 * default_downtime_s
    return default_downtime_s
