"""Deterministic fault injection: scripted campaigns + stochastic models.

The :class:`FaultInjector` is armed by the runtime when
``config.faults_enabled``.  It has two independent sources of faults:

* **Scripted campaigns** — ``config.fault_script`` is a sorted tuple of
  :class:`~repro.faults.script.FaultEvent`; each is scheduled with
  ``sim.call_at`` so the campaign replays bit-identically on every run
  of the same config.
* **Stochastic breakdowns** — ``config.robot_mtbf_s`` arms an
  exponential inter-fault clock per robot, each drawing from its own
  named :class:`~repro.sim.rng.RandomStream`
  (``robot_faults.<robot-id>``), so fault times for one robot do not
  shift when another robot is added.

The injector only *causes* faults (via ``runtime.fail_robot`` /
``runtime.fail_manager``); detection and recovery are the
:class:`~repro.faults.recovery.ResilienceService`'s business.
"""

from __future__ import annotations

import typing

from repro.faults.model import ExponentialFaultModel
from repro.faults.script import FaultEvent, FaultKind, resolve_downtime
from repro.sim.rng import RandomStream

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.robot import RobotNode
    from repro.core.runtime import ScenarioRuntime

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules robot/manager faults from scripts and MTBF models."""

    def __init__(self, runtime: "ScenarioRuntime") -> None:
        self.runtime = runtime
        self.config = runtime.config
        self._started = False

    def start(self) -> None:
        """Arm all scripted events and stochastic fault clocks."""
        if self._started or not self.config.faults_enabled:
            return
        self._started = True
        sim = self.runtime.sim
        for event in self.config.fault_script or ():
            if event.kind in FaultKind.NETWORK:
                continue  # Scheduled by the NetworkFaultService instead.
            sim.call_at(event.time, lambda e=event: self._apply(e))
        if self.config.robot_mtbf_s is not None:
            model = ExponentialFaultModel(
                mtbf_s=self.config.robot_mtbf_s,
                permanent_p=self.config.robot_fault_permanent_p,
            )
            for robot in self.runtime.robots_sorted():
                rng = self.runtime.streams.stream(
                    f"robot_faults.{robot.node_id}"
                )
                sim.process(
                    self._stochastic_loop(robot, model, rng),
                    name=f"faults:{robot.node_id}",
                )

    # ------------------------------------------------------------------
    # Stochastic breakdowns
    # ------------------------------------------------------------------
    def _stochastic_loop(
        self,
        robot: "RobotNode",
        model: ExponentialFaultModel,
        rng: RandomStream,
    ) -> typing.Generator:
        while True:
            yield self.runtime.sim.timeout(model.next_interval(rng))
            if not robot.alive:
                if robot.can_recover:
                    continue  # Already down but coming back: re-draw.
                return  # Permanently dead: this clock stops.
            kind = model.draw_kind(rng)
            downtime = (
                None
                if kind == FaultKind.CRASH
                else self.config.robot_downtime_s
            )
            self.runtime.fail_robot(robot, kind, downtime)
            if downtime is None:
                return

    # ------------------------------------------------------------------
    # Scripted campaigns
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        if event.kind in FaultKind.NETWORK:
            # Network-region events are scheduled by the
            # NetworkFaultService; the injector only breaks hardware.
            return
        runtime = self.runtime
        manager = runtime.manager
        if event.kind == FaultKind.MANAGER_DOWN or (
            manager is not None and event.target == manager.node_id
        ):
            # Manager faults are ignored under the distributed
            # algorithms (no manager node), keeping one script portable
            # across all three algorithms.
            if manager is not None:
                runtime.fail_manager(
                    resolve_downtime(event, self.config.robot_downtime_s)
                )
            return
        robot = runtime.robots.get(event.target)
        if robot is not None and robot.alive:
            runtime.fail_robot(
                robot,
                event.kind,
                resolve_downtime(event, self.config.robot_downtime_s),
            )
