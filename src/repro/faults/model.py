"""Stochastic robot fault models.

The paper's sensor lifetimes are Exp(T); the fleet gets the same
treatment: a robot's time between failures is Exp(MTBF), and each fault
is a permanent crash with a small probability (otherwise a recoverable
breakdown).  All draws come from the named random stream the caller
passes in, so runs stay bit-reproducible.
"""

from __future__ import annotations

from repro.faults.script import FaultKind
from repro.sim.rng import RandomStream

__all__ = ["ExponentialFaultModel"]


class ExponentialFaultModel:
    """Exponential time-between-failures with a permanent-crash mix."""

    def __init__(self, mtbf_s: float, permanent_p: float = 0.0) -> None:
        if mtbf_s <= 0:
            raise ValueError(f"MTBF must be positive: {mtbf_s}")
        if not 0.0 <= permanent_p <= 1.0:
            raise ValueError(
                f"permanent-fault probability must be in [0, 1]: "
                f"{permanent_p}"
            )
        self.mtbf_s = mtbf_s
        self.permanent_p = permanent_p

    def next_interval(self, rng: RandomStream) -> float:
        """Draw the time until the next fault."""
        return rng.expovariate(1.0 / self.mtbf_s)

    def draw_kind(self, rng: RandomStream) -> str:
        """Draw the fault kind (crash w.p. ``permanent_p``)."""
        if self.permanent_p > 0.0 and rng.random() < self.permanent_p:
            return FaultKind.CRASH
        return FaultKind.BREAKDOWN
