"""Self-healing coordination: heartbeats, failure declaration, failover.

:class:`ResilienceService` is the runtime's recovery layer, active only
when ``config.resilience_enabled``.  It implements:

* **Robot→manager heartbeats** (centralized): every robot sends a
  periodic :class:`~repro.core.messages.Heartbeat` to its current
  manager contact, which acks; the manager declares a robot dead after
  ``missed_heartbeats_for_failure`` silent periods, and robots declare
  the *manager* dead on the symmetric ack silence and fail over to the
  live robot nearest the manager's post.
* **Ring heartbeats** (distributed): each robot heartbeats its
  successor in the id-sorted ring of undeclared robots; a watch loop
  declares stale robots dead and hands recovery to the coordination
  strategy (subarea takeover / obituary flood).
* **A reconciler** that sweeps old unrepaired failures: any failure
  with no custodian anywhere (no pending dispatch, no robot queue
  entry, no sensor retry) is escalated through a fresh report from the
  nearest live sensor, and finally declared *orphaned* — failures are
  never silently dropped.

Bookkeeping note: ``last_heartbeat``/``last_position`` are shared
tables indexed by robot id — a blackboard standing in for the gossip a
real deployment would use to share liveness evidence.  They are only
ever written on actual message delivery, so detection remains purely
message-driven: a partitioned or dead robot goes stale no matter who
was listening.
"""

from __future__ import annotations

import typing

from repro.core.messages import Heartbeat
from repro.geometry.point import Point
from repro.net.frames import Category, NodeId

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.robot import RobotNode
    from repro.core.runtime import ScenarioRuntime
    from repro.net.node import NetworkNode

__all__ = ["ResilienceService"]

#: Reconciler escalations per failure before declaring it orphaned.
MAX_ESCALATIONS = 2


class ResilienceService:
    """Heartbeat-based failure detection and repair reconciliation."""

    def __init__(self, runtime: "ScenarioRuntime") -> None:
        self.runtime = runtime
        self.config = runtime.config
        #: Last time a heartbeat from each robot was *delivered*.
        self.last_heartbeat: typing.Dict[NodeId, float] = {}
        #: Each robot's last heartbeat-reported position.
        self.last_position: typing.Dict[NodeId, Point] = {}
        #: Last manager-ack delivery per robot (centralized only).
        self.last_ack: typing.Dict[NodeId, float] = {}
        #: Robots currently declared dead by heartbeat silence.
        self.declared_dead: typing.Set[NodeId] = set()
        self.manager_epoch = 0
        self._epoch_start = 0.0
        self._escalations: typing.Dict[NodeId, int] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch heartbeat, watch and reconciler processes."""
        if self._started or not self.config.resilience_enabled:
            return
        self._started = True
        sim = self.runtime.sim
        now = sim.now
        self._epoch_start = now
        for robot in self.runtime.robots_sorted():
            self.last_heartbeat[robot.node_id] = now
            self.last_position[robot.node_id] = robot.position
            self.last_ack[robot.node_id] = now
            sim.process(
                self._heartbeat_loop(robot),
                name=f"heartbeat:{robot.node_id}",
            )
        if (
            len(self.runtime.robots) >= 2
            or self.runtime.coordination.uses_central_manager
        ):
            sim.process(self._watch_loop(), name="resilience:watch")
        sim.process(self._reconcile_loop(), name="resilience:reconcile")

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def _heartbeat_loop(self, robot: "RobotNode") -> typing.Generator:
        period = self.config.heartbeat_period_s
        window = period * self.config.missed_heartbeats_for_failure
        centralized = self.runtime.coordination.uses_central_manager
        while True:
            yield self.runtime.sim.timeout(period)
            if robot.down and not robot.can_recover:
                return  # Permanently dead: the loop winds down.
            if not robot.alive:
                continue  # Broken but recoverable: stay silent.
            target = self._heartbeat_target(robot, centralized)
            if target is not None:
                target_id, target_position = target
                robot.send_routed(
                    target_id,
                    target_position,
                    Category.HEARTBEAT,
                    Heartbeat(
                        robot_id=robot.node_id,
                        position=robot.position,
                        sent_time=self.runtime.sim.now,
                    ),
                )
            if centralized and not robot.acting_manager:
                now = self.runtime.sim.now
                if now - self.last_ack.get(robot.node_id, 0.0) > window:
                    self._manager_suspected(robot)

    def _heartbeat_target(
        self, robot: "RobotNode", centralized: bool
    ) -> typing.Optional[typing.Tuple[NodeId, Point]]:
        if centralized:
            if (
                robot.manager_id is None
                or robot.manager_position is None
                or robot.manager_id == robot.node_id
            ):
                return None
            return (robot.manager_id, robot.manager_position)
        # Distributed: successor in the id-sorted ring of robots not
        # currently declared dead.
        ring = [
            robot_id
            for robot_id in sorted(self.runtime.robots)
            if robot_id not in self.declared_dead
        ]
        if robot.node_id not in ring or len(ring) < 2:
            return None
        successor = ring[(ring.index(robot.node_id) + 1) % len(ring)]
        position = self.last_position.get(successor)
        if position is None:
            peer = self.runtime.robots.get(successor)
            if peer is None:
                return None
            position = peer.position
        return (successor, position)

    def note_heartbeat(
        self, receiver: "NetworkNode", heartbeat: Heartbeat
    ) -> None:
        """A heartbeat was delivered somewhere: refresh liveness tables."""
        now = self.runtime.sim.now
        self.last_heartbeat[heartbeat.robot_id] = now
        self.last_position[heartbeat.robot_id] = heartbeat.position
        if getattr(receiver, "kind", None) == "robot":
            # The receiver (ring successor, or an acting manager that
            # sends no heartbeats of its own) demonstrably processed a
            # message just now — that is liveness evidence too.
            self.last_heartbeat[receiver.node_id] = now
            self.last_position[receiver.node_id] = receiver.position
        if heartbeat.robot_id in self.declared_dead:
            # False positive (e.g. all heartbeats lost for a while): the
            # robot is demonstrably alive — reinstate it.
            self.declared_dead.discard(heartbeat.robot_id)
            robot = self.runtime.robots.get(heartbeat.robot_id)
            if robot is not None and robot.alive:
                self.runtime.coordination.on_robot_recovered(robot)

    def note_ack(self, robot_id: NodeId) -> None:
        """A manager heartbeat-ack reached *robot_id*."""
        self.last_ack[robot_id] = self.runtime.sim.now

    # ------------------------------------------------------------------
    # Robot death detection
    # ------------------------------------------------------------------
    def _watch_loop(self) -> typing.Generator:
        period = self.config.heartbeat_period_s
        window = period * self.config.missed_heartbeats_for_failure
        centralized = self.runtime.coordination.uses_central_manager
        while True:
            yield self.runtime.sim.timeout(period)
            now = self.runtime.sim.now
            undeclared = [
                robot_id
                for robot_id in sorted(self.last_heartbeat)
                if robot_id not in self.declared_dead
            ]
            stale = [
                robot_id
                for robot_id in undeclared
                if now - self.last_heartbeat[robot_id] > window
            ]
            if centralized and undeclared and len(stale) == len(undeclared):
                # Every undeclared robot went silent at once.  Heartbeat
                # evidence is manager-mediated here, so this is the
                # signature of a manager outage, not a mass robot die-off:
                # leave it to the failover path.
                continue
            for robot_id in stale:
                self._declare_robot_dead(robot_id)

    def _declare_robot_dead(self, robot_id: NodeId) -> None:
        now = self.runtime.sim.now
        monitor = self._pick_monitor(exclude=robot_id)
        self.declared_dead.add(robot_id)
        self.runtime.metrics.record_robot_fault_detected(robot_id, now)
        if self.runtime.tracer.active:
            self.runtime.tracer.emit(
                "fault_detected",
                time=now,
                robot=robot_id,
                monitor=monitor.node_id if monitor is not None else None,
            )
        desk = self.runtime.dispatching_desk()
        if desk is not None:
            desk.on_robot_declared_dead(robot_id)
        if self.runtime.coop is not None:
            # Claim rounds waiting on the dead robot advance now rather
            # than waiting out their silence timeout.
            self.runtime.coop.note_robot_dead(robot_id)
        self.runtime.coordination.on_robot_declared_dead(
            monitor, robot_id, self.last_position.get(robot_id)
        )

    def _pick_monitor(
        self, exclude: NodeId
    ) -> typing.Optional["RobotNode"]:
        """A live robot with fresh heartbeat evidence, to act as the
        declaring monitor (ring successors first, then any live robot)."""
        period = self.config.heartbeat_period_s
        window = period * self.config.missed_heartbeats_for_failure
        now = self.runtime.sim.now
        fresh: typing.Optional["RobotNode"] = None
        for robot_id in sorted(self.runtime.robots):
            if robot_id == exclude or robot_id in self.declared_dead:
                continue
            robot = self.runtime.robots[robot_id]
            if not robot.alive:
                continue
            if now - self.last_heartbeat.get(robot_id, 0.0) <= window:
                return robot
            if fresh is None:
                fresh = robot
        return fresh

    # ------------------------------------------------------------------
    # Manager failover (centralized)
    # ------------------------------------------------------------------
    def _manager_suspected(self, reporter: "RobotNode") -> None:
        """A robot's heartbeats go unacked: elect an acting manager.

        Every live robot deterministically elects the robot closest to
        the manager's post (the field centre), ties by id.  The grace
        window keeps a burst of concurrent suspicions from re-electing
        on every silent heartbeat.
        """
        now = self.runtime.sim.now
        period = self.config.heartbeat_period_s
        window = period * self.config.missed_heartbeats_for_failure
        if self.manager_epoch > 0 and now - self._epoch_start <= window:
            return  # Recently failed over: give the new manager time.
        manager = self.runtime.manager
        if manager is not None and manager.alive:
            # The static manager is actually up (acks lost, or it just
            # restarted): electing an acting manager now would split the
            # brain.  Count this probe as contact re-established and let
            # the next heartbeat round-trip refresh the clock properly.
            self.last_ack[reporter.node_id] = now
            return
        post = (
            manager.position
            if manager is not None
            else self.config.bounds.center
        )
        candidates = [
            robot
            for robot in self.runtime.robots_sorted()
            if robot.alive and robot.node_id not in self.declared_dead
        ]
        if not candidates:
            return
        chosen = min(
            candidates,
            key=lambda robot: (
                post.squared_distance_to(
                    self.last_position.get(robot.node_id, robot.position)
                ),
                robot.node_id,
            ),
        )
        self.manager_epoch += 1
        self._epoch_start = now
        if manager is not None and not manager.alive:
            self.runtime.metrics.record_robot_fault_detected(
                manager.node_id, now
            )
        chosen.promote_to_manager()
        if self.runtime.tracer.active:
            self.runtime.tracer.emit(
                "manager_failover",
                time=now,
                epoch=self.manager_epoch,
                acting=chosen.node_id,
                reporter=reporter.node_id,
            )
        # All liveness evidence funnelled through the dead manager, so
        # robot silence since the outage proves nothing: reset the
        # clocks instead of cascading false robot declarations.
        for robot_id in sorted(self.last_ack):
            self.last_ack[robot_id] = now
        for robot_id in sorted(self.last_heartbeat):
            self.last_heartbeat[robot_id] = now

    def on_manager_recovered(self) -> None:
        """The static manager restarted: restore its authority.

        Its announcement flood re-points every robot, but their ack
        clocks still show the outage — reset them (and the epoch) so the
        restart is not immediately mistaken for a fresh outage.
        """
        now = self.runtime.sim.now
        self._epoch_start = now
        for robot_id in sorted(self.last_ack):
            self.last_ack[robot_id] = now
        for robot_id in sorted(self.last_heartbeat):
            self.last_heartbeat[robot_id] = now

    # ------------------------------------------------------------------
    # Robot recovery
    # ------------------------------------------------------------------
    def on_robot_recovered(self, robot: "RobotNode") -> None:
        """Called by the runtime when a broken robot comes back up."""
        now = self.runtime.sim.now
        self.declared_dead.discard(robot.node_id)
        self.last_heartbeat[robot.node_id] = now
        self.last_position[robot.node_id] = robot.position
        self.last_ack[robot.node_id] = now
        self.runtime.coordination.on_robot_recovered(robot)
        robot.publish_location()

    # ------------------------------------------------------------------
    # Reconciliation (no failure is silently dropped)
    # ------------------------------------------------------------------
    @property
    def give_up_age_s(self) -> float:
        """Age past which an uncustodied failure gets escalated.

        Bounds the whole dispatch retry ladder: every dispatch attempt
        plus its exponentially backed-off deadline.
        """
        limit = self.config.redispatch_limit
        deadline = self.config.effective_repair_deadline_s
        backoff = self.config.redispatch_backoff_s
        return (limit + 1) * deadline + backoff * (2.0 ** (limit + 1))

    def _reconcile_loop(self) -> typing.Generator:
        period = self.config.effective_repair_deadline_s
        while True:
            yield self.runtime.sim.timeout(period)
            self._reconcile()

    def _reconcile(self) -> None:
        now = self.runtime.sim.now
        for record in self.runtime.metrics.records():
            if record.repaired or record.orphan_reason is not None:
                continue
            if now - record.death_time <= self.give_up_age_s:
                continue
            failed_id = record.node_id
            if self._has_custodian(failed_id):
                continue
            done = self._escalations.get(failed_id, 0)
            if done >= MAX_ESCALATIONS:
                self.runtime.declare_orphaned(
                    failed_id, "recovery escalation exhausted"
                )
                continue
            reporter = self.runtime.nearest_live_sensor(
                record.position, exclude=failed_id
            )
            if reporter is None:
                self.runtime.declare_orphaned(
                    failed_id, "no live sensor to re-report"
                )
                continue
            self._escalations[failed_id] = done + 1
            if self.runtime.tracer.active:
                self.runtime.tracer.emit(
                    "escalation",
                    time=now,
                    failed=failed_id,
                    reporter=reporter.node_id,
                    round=done + 1,
                )
            reporter.file_report(failed_id, record.position)

    def _has_custodian(self, failed_id: NodeId) -> bool:
        """Is anyone still actively working towards this repair?"""
        desk = self.runtime.dispatching_desk()
        if desk is not None and desk.has_pending(failed_id):
            return True
        for robot in self.runtime.robots_sorted():
            if robot.alive and robot.has_task(failed_id):
                return True
        for sensor in self.runtime.sensors_sorted():
            if sensor.has_pending_report(failed_id):
                return True
        return False
