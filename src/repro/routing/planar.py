"""Local planarization of the connectivity graph.

Face routing only guarantees progress on a *planar* subgraph of the radio
connectivity graph.  GPSR and GFG both planarize locally: each node keeps
only those neighbour edges that pass the Gabriel graph (GG) or relative
neighbourhood graph (RNG) test, computed from nothing but its own
neighbour table.  Both filters provably preserve connectivity of the
unit-disk graph and both are implemented here (the paper's routing layer
follows GPSR, which defaults to GG).
"""

from __future__ import annotations

import typing

from repro.geometry.point import Point, midpoint
from repro.net.neighbors import NeighborEntry

__all__ = ["gabriel_neighbors", "rng_neighbors"]

_EPS = 1e-9


def gabriel_neighbors(
    origin: Point,
    entries: typing.Sequence[NeighborEntry],
) -> typing.List[NeighborEntry]:
    """Neighbours retained by the Gabriel graph test.

    Edge ``(u, v)`` survives iff no witness ``w`` lies strictly inside
    the circle with diameter ``uv``.  Keeps id-sorted order.
    """
    kept: typing.List[NeighborEntry] = []
    for candidate in entries:
        mid = midpoint(origin, candidate.position)
        radius_sq = origin.squared_distance_to(candidate.position) / 4.0
        blocked = False
        for witness in entries:
            if witness.node_id == candidate.node_id:
                continue
            if witness.position.squared_distance_to(mid) < radius_sq - _EPS:
                blocked = True
                break
        if not blocked:
            kept.append(candidate)
    return kept


def rng_neighbors(
    origin: Point,
    entries: typing.Sequence[NeighborEntry],
) -> typing.List[NeighborEntry]:
    """Neighbours retained by the relative neighbourhood graph test.

    Edge ``(u, v)`` survives iff no witness ``w`` is strictly closer to
    *both* endpoints than they are to each other (the "lune" test).  The
    RNG is a subgraph of the Gabriel graph — sparser, still connected.
    """
    kept: typing.List[NeighborEntry] = []
    for candidate in entries:
        edge_d2 = origin.squared_distance_to(candidate.position)
        blocked = False
        for witness in entries:
            if witness.node_id == candidate.node_id:
                continue
            du2 = witness.position.squared_distance_to(origin)
            dv2 = witness.position.squared_distance_to(candidate.position)
            if du2 < edge_d2 - _EPS and dv2 < edge_d2 - _EPS:
                blocked = True
                break
        if not blocked:
            kept.append(candidate)
    return kept
