"""Geographic routing: greedy + face recovery over planar subgraphs."""

from repro.routing.planar import gabriel_neighbors, rng_neighbors
from repro.routing.router import GREEDY, PERIMETER, GeographicRouter
from repro.routing.stats import DropReason, RoutingStats

__all__ = [
    "DropReason",
    "GREEDY",
    "GeographicRouter",
    "PERIMETER",
    "RoutingStats",
    "gabriel_neighbors",
    "rng_neighbors",
]
