"""Shared routing statistics.

One :class:`RoutingStats` instance is shared by every node's router in a
scenario.  It records end-to-end deliveries with their hop counts (the
paper's Figure 3 metric), drops with reasons, and perimeter-mode entries
(a health indicator: the paper's densities keep greedy forwarding
sufficient nearly everywhere).
"""

from __future__ import annotations

import collections
import typing

__all__ = ["RoutingStats", "DropReason"]


class DropReason:
    """Why a packet was dropped by the routing layer."""

    TTL_EXCEEDED = "ttl_exceeded"
    NO_NEIGHBORS = "no_neighbors"
    DEAD_END = "dead_end"
    PERIMETER_LOOP = "perimeter_loop"
    LINK_FAILURE = "link_failure"


class RoutingStats:
    """Aggregated routing-layer counters for one simulation run."""

    def __init__(self) -> None:
        #: category -> list of end-to-end hop counts of delivered packets.
        self.delivered_hops: typing.DefaultDict[str, typing.List[int]] = (
            collections.defaultdict(list)
        )
        #: category -> packets handed to the router for origination.
        self.originated: typing.Counter[str] = collections.Counter()
        #: (category, reason) -> dropped packet count.
        self.drops: typing.Counter[typing.Tuple[str, str]] = (
            collections.Counter()
        )
        #: category -> times a packet of that category entered perimeter
        #: (face-routing) mode.
        self.perimeter_entries: typing.Counter[str] = collections.Counter()

    # ------------------------------------------------------------------
    # Recording (called by routers)
    # ------------------------------------------------------------------
    def record_originated(self, category: str) -> None:
        self.originated[category] += 1

    def record_delivered(self, category: str, hops: int) -> None:
        self.delivered_hops[category].append(hops)

    def record_drop(self, category: str, reason: str) -> None:
        self.drops[(category, reason)] += 1

    def record_perimeter_entry(self, category: str) -> None:
        self.perimeter_entries[category] += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def delivered_count(self, category: typing.Optional[str] = None) -> int:
        """Packets delivered, optionally restricted to a category."""
        if category is not None:
            return len(self.delivered_hops.get(category, ()))
        return sum(len(v) for v in self.delivered_hops.values())

    def dropped_count(self, category: typing.Optional[str] = None) -> int:
        """Packets dropped, optionally restricted to a category."""
        if category is not None:
            return sum(
                count
                for (cat, _reason), count in self.drops.items()
                if cat == category
            )
        return sum(self.drops.values())

    def mean_hops(self, category: str) -> float:
        """Average end-to-end hop count for delivered *category* packets.

        Returns ``nan`` when nothing of that category was delivered.
        """
        hops = self.delivered_hops.get(category)
        if not hops:
            return float("nan")
        return sum(hops) / len(hops)

    def delivery_ratio(self, category: str) -> float:
        """Delivered / originated for *category* (``nan`` if none sent)."""
        sent = self.originated.get(category, 0)
        if sent == 0:
            return float("nan")
        return self.delivered_count(category) / sent

    def snapshot(self) -> typing.Dict[str, typing.Any]:
        """A plain-dict summary for reports."""
        return {
            "originated": dict(self.originated),
            "delivered": {
                category: len(hops)
                for category, hops in self.delivered_hops.items()
            },
            "mean_hops": {
                category: self.mean_hops(category)
                for category in self.delivered_hops
            },
            "drops": {
                f"{category}/{reason}": count
                for (category, reason), count in self.drops.items()
            },
            "perimeter_entries": dict(self.perimeter_entries),
        }
