"""Geographic routing: greedy forwarding with face-routing recovery.

The paper (§4.2): *"Our implementation of geographic forwarding is based
on face-routing [GFG] and our implementation parameters are the same as
in GPSR ... To forward a packet, a node searches its neighbor table and
forwards the packet to its neighbor closest in geographic distance to the
destination's location ... Recovering from holes is possible using
approaches such as GFG or GPSR, using planar subgraphs to route around
holes."*

This module implements exactly that: each node runs one
:class:`GeographicRouter` that

1. delivers packets addressed to this node;
2. short-circuits to the destination when it is already a one-hop
   neighbour (this is how replacement requests reach a *moving* robot
   whose precise position differs from its last update by up to the 20 m
   threshold);
3. otherwise forwards greedily to the neighbour closest to the
   destination's location;
4. on a local minimum, switches to perimeter (face) mode on the Gabriel
   planar subgraph with the right-hand rule, returning to greedy as soon
   as it reaches a node closer to the destination than where greedy
   failed.

Routing state (mode, entry point, visited face edges) travels in the
packet, mirroring GPSR's packet header fields Lp / Lf / e0.
"""

from __future__ import annotations

import math
import typing

from repro.geometry.point import Point
from repro.geometry.segments import segment_intersection
from repro.net.frames import NodeId, Packet
from repro.net.neighbors import NeighborEntry
from repro.routing.planar import gabriel_neighbors
from repro.routing.stats import DropReason, RoutingStats

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.node import NetworkNode

__all__ = ["GeographicRouter", "GREEDY", "PERIMETER"]

GREEDY = "greedy"
PERIMETER = "perimeter"

_TWO_PI = 2.0 * math.pi
_ANGLE_EPS = 1e-9

Planarizer = typing.Callable[
    [Point, typing.Sequence[NeighborEntry]], typing.List[NeighborEntry]
]


class GeographicRouter:
    """Per-node geographic router (GPSR-style greedy + perimeter).

    Parameters
    ----------
    node:
        The owning network node (supplies position and neighbour table).
    stats:
        Scenario-wide :class:`RoutingStats` shared across all routers.
    planarizer:
        Local planarization filter; defaults to the Gabriel graph as in
        GPSR.
    use_face_routing:
        When False, a greedy dead end drops the packet instead of
        entering perimeter mode (used by ablations and tests).
    """

    def __init__(
        self,
        node: "NetworkNode",
        stats: RoutingStats,
        planarizer: Planarizer = gabriel_neighbors,
        use_face_routing: bool = True,
    ) -> None:
        self.node = node
        self.stats = stats
        self.planarizer = planarizer
        self.use_face_routing = use_face_routing
        #: Safety margin for the destination shortcut: hand a packet
        #: directly to a destination in the neighbour table only when its
        #: recorded position is at least this far inside radio range.  A
        #: moving robot may be up to one update threshold away from its
        #: last announcement, so the runtime sets this to that threshold.
        #: Applies to mobile destinations (robots/managers) only — static
        #: sensor positions are exact.  A shortcut to a robot that has in
        #: fact moved away fails at the link layer (no ack), which evicts
        #: the stale entry and re-routes — the 802.11/GPSR reaction.
        self.shortcut_slack_m = 0.0
        #: Packet ids already delivered to this node.  A lost link-layer
        #: ack makes the previous hop retransmit an already-delivered
        #: packet; the duplicate must not be delivered (or counted)
        #: twice.  Intermediate hops are *not* deduplicated — a face
        #: traversal may legally revisit a node.
        self._delivered_packet_ids: typing.Set[int] = set()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def originate(self, packet: Packet) -> None:
        """Inject a locally generated packet into the network."""
        if packet.dest_location is None:
            raise ValueError(
                f"routed packet requires a destination location: {packet!r}"
            )
        self.stats.record_originated(packet.category)
        self.handle(packet, previous_position=None)

    def handle(
        self,
        packet: Packet,
        previous_position: typing.Optional[Point],
    ) -> None:
        """Process a packet arriving at (or originated by) this node."""
        if packet.destination == self.node.node_id:
            if packet.packet_id in self._delivered_packet_ids:
                return  # Retransmission duplicate of a delivered packet.
            self._delivered_packet_ids.add(packet.packet_id)
            self.stats.record_delivered(packet.category, packet.hops)
            self.node.on_packet_delivered(packet)
            return
        if packet.hops >= packet.max_hops:
            self._drop(packet, DropReason.TTL_EXCEEDED)
            return
        self._forward(packet, previous_position)

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _forward(
        self,
        packet: Packet,
        previous_position: typing.Optional[Point],
    ) -> None:
        table = self.node.neighbor_table

        # Application-layer location service (paper §4.2): a forwarding
        # node with *fresher* knowledge of the destination's position
        # rewrites the packet's destination location.  Freshness is
        # compared by the destination's announcement sequence number.
        hint = self.node.location_hint(packet.destination)
        if hint is not None:
            hint_position, hint_seq = hint
            if hint_seq > packet.routing_state.get("loc_seq", -1):
                packet.routing_state["loc_seq"] = hint_seq
                packet.dest_location = hint_position

        destination_location = packet.dest_location
        assert destination_location is not None

        # Destination shortcut: hand over directly when it is in range
        # (with slack and a freshness bound for destinations that may
        # have moved since their last announcement).
        direct = table.get(packet.destination)
        if direct is not None and self._shortcut_usable(direct):
            self._transmit(packet, direct.node_id)
            return

        # Candidate next hops must be inside *this node's* transmission
        # range — the neighbour table may contain nodes heard over a
        # longer asymmetric link (a robot's 250 m announcement reaches
        # sensors that cannot answer with their 63 m radio).  The
        # destination's own (possibly stale) entry is excluded too:
        # forwarding "to it" is exactly what the shortcut above declined.
        entries = [
            entry
            for entry in table.entries()
            if entry.node_id != packet.destination
            and self._reachable(entry)
        ]
        if not entries:
            self._drop(packet, DropReason.NO_NEIGHBORS)
            return

        state = packet.routing_state
        my_distance = self.node.position.distance_to(destination_location)

        if state.get("mode") == PERIMETER:
            # GPSR recovery exit rule: resume greedy once strictly closer
            # to the destination than the point where greedy failed.
            if my_distance < state["entry_distance"]:
                state.clear()
            else:
                self._perimeter_forward(packet, previous_position)
                return

        # Greedy mode.
        best = min(
            entries,
            key=lambda e: (
                e.position.squared_distance_to(destination_location),
                e.node_id,
            ),
        )
        if best.position.distance_to(destination_location) < my_distance:
            self._transmit(packet, best.node_id)
            return

        # Local minimum: recover via face routing, or give up.
        if not self.use_face_routing:
            self._drop(packet, DropReason.DEAD_END)
            return
        state["mode"] = PERIMETER
        state["entry_point"] = self.node.position
        state["entry_distance"] = my_distance
        state["face_distance"] = my_distance
        state["visited_edges"] = set()
        self.stats.record_perimeter_entry(packet.category)
        # First perimeter edge: right-hand rule swept from the line
        # towards the destination.
        self._perimeter_forward(packet, previous_position=None)

    def _perimeter_forward(
        self,
        packet: Packet,
        previous_position: typing.Optional[Point],
    ) -> None:
        state = packet.routing_state
        destination_location = packet.dest_location
        assert destination_location is not None
        origin = self.node.position

        reachable = [
            entry
            for entry in self.node.neighbor_table.entries()
            if self._reachable(entry)
        ]
        planar = self.planarizer(origin, reachable)
        if not planar:
            self._drop(packet, DropReason.NO_NEIGHBORS)
            return

        if previous_position is not None:
            reference_angle = math.atan2(
                previous_position.y - origin.y,
                previous_position.x - origin.x,
            )
        else:
            reference_angle = math.atan2(
                destination_location.y - origin.y,
                destination_location.x - origin.x,
            )

        ordered = _counterclockwise_order(origin, reference_angle, planar)
        # GPSR's face-change rule: if the candidate edge crosses the
        # entry→destination line at a point strictly closer to the
        # destination than the best crossing so far, record the crossing
        # and rotate PAST that edge — the packet stays on the face that
        # contains the closer portion of the line instead of leaving it.
        index = 0
        rotations = 0
        while rotations < len(ordered):
            candidate = ordered[index % len(ordered)]
            crossing = segment_intersection(
                origin,
                candidate.position,
                state["entry_point"],
                destination_location,
            )
            if crossing is not None:
                crossing_distance = crossing.distance_to(
                    destination_location
                )
                if crossing_distance < state["face_distance"] - 1e-9:
                    state["face_distance"] = crossing_distance
                    state["visited_edges"] = set()
                    index += 1
                    rotations += 1
                    continue
            break
        next_hop = ordered[index % len(ordered)]

        edge = (self.node.node_id, next_hop.node_id)
        visited: set = state["visited_edges"]
        if edge in visited:
            # Completed a full tour of the face without progress: the
            # destination is unreachable from here.
            self._drop(packet, DropReason.PERIMETER_LOOP)
            return
        visited.add(edge)

        self._transmit(packet, next_hop.node_id)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _reachable(self, entry: NeighborEntry) -> bool:
        """Can this node's own radio reach the neighbour where recorded?

        Mobile neighbours get the update-threshold slack deducted, since
        they may have moved since their last announcement.
        """
        distance = self.node.position.distance_to(entry.position)
        if entry.kind == "sensor":
            return distance <= self.node.radio.range_m
        return distance <= self.node.radio.range_m - self.shortcut_slack_m

    def _shortcut_usable(self, entry: NeighborEntry) -> bool:
        """May the packet be handed directly to this destination entry?"""
        distance = self.node.position.distance_to(entry.position)
        if entry.kind == "sensor":
            # Static node at an exact recorded position.
            return distance <= self.node.radio.range_m
        return distance <= self.node.radio.range_m - self.shortcut_slack_m

    def _transmit(self, packet: Packet, next_hop: NodeId) -> None:
        packet.hops += 1
        self.node.mac.send_packet(packet, next_hop)

    def _drop(self, packet: Packet, reason: str) -> None:
        self.stats.record_drop(packet.category, reason)
        self.node.on_packet_dropped(packet, reason)


def _counterclockwise_order(
    origin: Point,
    reference_angle: float,
    candidates: typing.Sequence[NeighborEntry],
) -> typing.List[NeighborEntry]:
    """Candidates sorted by counterclockwise sweep from the reference.

    Index 0 is the right-hand-rule choice; subsequent indices are the
    successive rotations GPSR's face-change loop steps through.  A
    candidate exactly at the reference direction (i.e. the node the
    packet arrived from) sweeps the full circle, so it sorts last —
    going back along a spur is legal face traversal but only as the
    final resort.
    """

    def sweep_of(candidate: NeighborEntry) -> float:
        angle = math.atan2(
            candidate.position.y - origin.y,
            candidate.position.x - origin.x,
        )
        sweep = (angle - reference_angle) % _TWO_PI
        if sweep < _ANGLE_EPS:
            sweep = _TWO_PI
        return sweep

    return sorted(
        candidates, key=lambda entry: (sweep_of(entry), entry.node_id)
    )
