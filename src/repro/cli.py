"""Command-line interface.

Usage (also available as ``python -m repro``)::

    repro-sim run --algorithm dynamic --robots 9 --sim-time 16000
    repro-sim compare --robots 9 --seed 7
    repro-sim figure 2 --seeds 1 2 --sim-time 32000
    repro-sim params
    repro-sim lint src/

Every command prints plain text tables; ``run`` can additionally write
an SVG snapshot of the final field state.
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.analysis import CoverageTracker, energy_report
from repro.core.runtime import ScenarioRuntime
from repro.experiments.ablations import (
    dispatch_policy_ablation,
    efficient_broadcast_ablation,
    partition_ablation,
    update_threshold_ablation,
)
from repro.deploy.scenario import (
    Algorithm,
    DispatchPolicy,
    PAPER_ROBOT_COUNTS,
    paper_scenario,
)
from repro.experiments.figures import (
    figure2_motion_overhead,
    figure3_hops,
    figure4_update_transmissions,
)
from repro.experiments.render import render_table
from repro.sim.trace import RecordingSink, Tracer

__all__ = ["main", "build_parser"]

_FIGURES = {
    "2": figure2_motion_overhead,
    "3": figure3_hops,
    "4": figure4_update_transmissions,
}

_ABLATIONS = {
    "partition": partition_ablation,
    "threshold": update_threshold_ablation,
    "dispatch": dispatch_policy_ablation,
    "broadcast": efficient_broadcast_ablation,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro-sim`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Reproduction of 'Replacing Failed Sensor Nodes by Mobile "
            "Robots' (ICDCSW'06): run scenarios, compare the three "
            "coordination algorithms, regenerate the paper's figures."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one scenario")
    _add_scenario_arguments(run)
    run.add_argument(
        "--energy",
        action="store_true",
        help="also print the energy report",
    )
    run.add_argument(
        "--coverage",
        action="store_true",
        help="track and print sensing coverage",
    )
    run.add_argument(
        "--svg",
        metavar="FILE",
        help="write an SVG snapshot of the final field state",
    )

    compare = commands.add_parser(
        "compare", help="run all three algorithms on one deployment"
    )
    _add_scenario_arguments(compare, with_algorithm=False)

    figure = commands.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure.add_argument(
        "number", choices=sorted(_FIGURES), help="paper figure number"
    )
    figure.add_argument(
        "--robots",
        type=int,
        nargs="+",
        default=list(PAPER_ROBOT_COUNTS),
        help="robot counts to sweep (default: 4 9 16)",
    )
    figure.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2], help="seeds"
    )
    figure.add_argument(
        "--sim-time", type=float, default=32_000.0, help="horizon (s)"
    )
    figure.add_argument(
        "--speed",
        type=float,
        default=4.0,
        help="robot speed (m/s); 4 = the benches' low-utilization "
        "regime, 1 = the paper's literal setting",
    )
    figure.add_argument(
        "--svg",
        metavar="FILE",
        help="also write the figure as an SVG line chart",
    )

    ablate = commands.add_parser(
        "ablate", help="run one of the ablation studies"
    )
    ablate.add_argument(
        "study",
        choices=sorted(_ABLATIONS),
        help="which design choice to ablate",
    )
    ablate.add_argument("--robots", type=int, default=9)
    ablate.add_argument("--seed", type=int, default=1)
    ablate.add_argument(
        "--sim-time", type=float, default=16_000.0, help="horizon (s)"
    )

    commands.add_parser(
        "params", help="print the paper's default parameters"
    )

    lint = commands.add_parser(
        "lint",
        help="run the determinism linter (same as repro-lint)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _add_scenario_arguments(
    parser: argparse.ArgumentParser, with_algorithm: bool = True
) -> None:
    if with_algorithm:
        parser.add_argument(
            "--algorithm",
            choices=Algorithm.ALL,
            default=Algorithm.DYNAMIC,
            help="coordination algorithm",
        )
    parser.add_argument("--robots", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sim-time", type=float, default=16_000.0, help="horizon (s)"
    )
    parser.add_argument(
        "--speed", type=float, default=1.0, help="robot speed (m/s)"
    )
    parser.add_argument(
        "--loss", type=float, default=0.0, help="frame loss rate [0,1)"
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="spares per robot (default: unlimited)",
    )
    parser.add_argument(
        "--dispatch",
        choices=DispatchPolicy.ALL,
        default=DispatchPolicy.CLOSEST,
        help="central-manager dispatch policy (centralized only)",
    )
    parser.add_argument(
        "--traffic-period",
        type=float,
        default=None,
        help="enable background sensor readings every N seconds",
    )


def _config_from_args(args: argparse.Namespace, algorithm: str):
    return paper_scenario(
        algorithm,
        args.robots,
        seed=args.seed,
        sim_time_s=args.sim_time,
        robot_speed_mps=args.speed,
        loss_rate=args.loss,
        robot_capacity=args.capacity,
        dispatch_policy=args.dispatch,
        data_traffic_period_s=args.traffic_period,
    )


def _command_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args, args.algorithm)
    tracer = Tracer()
    moves = RecordingSink()
    if args.svg:
        tracer.subscribe("move", moves)
    runtime = ScenarioRuntime(config, tracer=tracer)
    tracker = (
        CoverageTracker(runtime, period=config.sim_time_s / 32)
        if args.coverage
        else None
    )
    print(f"running: {config.describe()}")
    report = runtime.run()
    print()
    for line in report.summary_lines():
        print(" ", line)
    if args.traffic_period:
        from repro.net import Category

        stats = runtime.routing_stats
        print(
            "  data readings: "
            f"{stats.originated.get(Category.DATA, 0)} sent, "
            f"delivery {stats.delivery_ratio(Category.DATA):.3f}, "
            f"{stats.mean_hops(Category.DATA):.2f} hops"
        )
    if tracker is not None:
        print()
        print(
            f"  coverage: mean {tracker.mean_coverage():.3f}, "
            f"min {tracker.minimum_coverage():.3f}, "
            f"deficit {tracker.deficit_integral():.1f} fraction-s"
        )
    if args.energy:
        print()
        for line in energy_report(
            runtime.channel, runtime.metrics
        ).summary_lines():
            print(" ", line)
    if args.svg:
        from repro.viz import render_field_svg, trails_from_trace

        svg = render_field_svg(
            runtime, trails=trails_from_trace(moves.records)
        )
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(svg)
        print(f"\n  wrote {args.svg}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    rows = []
    for algorithm in Algorithm.ALL:
        config = _config_from_args(args, algorithm)
        print(f"running {algorithm} ...", file=sys.stderr)
        report = ScenarioRuntime(config).run()
        rows.append(
            [
                algorithm,
                report.failures,
                report.repaired,
                report.mean_travel_distance,
                report.mean_report_hops,
                report.update_transmissions_per_failure,
            ]
        )
    print(
        render_table(
            [
                "algorithm",
                "failures",
                "repaired",
                "travel m/fail",
                "report hops",
                "update tx/fail",
            ],
            rows,
            title=f"{args.robots} robots, seed {args.seed}, "
            f"{args.sim_time:.0f} s",
        )
    )
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    generator = _FIGURES[args.number]
    figure = generator(
        robot_counts=tuple(args.robots),
        seeds=tuple(args.seeds),
        parallel=False,
        sim_time_s=args.sim_time,
        robot_speed_mps=args.speed,
    )
    print(figure.render())
    if args.svg:
        from repro.viz import figure_to_svg

        y_labels = {
            "2": "average traveling distance per failure (m)",
            "3": "average number of hops per failure",
            "4": "transmissions for location update per failure",
        }
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(
                figure_to_svg(figure, y_label=y_labels[args.number])
            )
        print(f"wrote {args.svg}")
    return 0 if figure.all_claims_hold else 1


def _command_ablate(args: argparse.Namespace) -> int:
    study = _ABLATIONS[args.study]
    if args.study == "partition":  # multi-seed signature
        result = study(
            robot_count=args.robots,
            seeds=(args.seed,),
            sim_time_s=args.sim_time,
        )
    else:
        result = study(
            robot_count=args.robots,
            seed=args.seed,
            sim_time_s=args.sim_time,
        )
    print(result.table())
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    argv = [*args.paths, "--format", args.format]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def _command_params(_args: argparse.Namespace) -> int:
    config = paper_scenario(Algorithm.CENTRALIZED, 16)
    rows = [
        ["area per robot", "200 m x 200 m"],
        ["sensors per robot", config.sensors_per_robot],
        ["field @16 robots", f"{config.area_side_m:.0f} m square"],
        ["sensors @16 robots", config.sensor_count],
        ["robot speed", f"{config.robot_speed_mps} m/s"],
        ["sensor lifetime", f"Exp({config.mean_lifetime_s:.0f} s)"],
        ["simulation time", f"{config.sim_time_s:.0f} s"],
        ["beacon period", f"{config.beacon_period_s:.0f} s"],
        [
            "failure after",
            f"{config.missed_beacons_for_failure} missed beacons",
        ],
        ["update threshold", f"{config.update_threshold_m:.0f} m"],
        ["sensor radio", "63 m @ 11 Mbps"],
        ["robot/manager radio", "250 m @ 11 Mbps"],
    ]
    print(render_table(["parameter", "value"], rows, title="paper §4.1"))
    return 0


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "compare": _command_compare,
        "figure": _command_figure,
        "ablate": _command_ablate,
        "params": _command_params,
        "lint": _command_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
