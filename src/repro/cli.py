"""Command-line interface.

Usage (also available as ``python -m repro``)::

    repro-sim run --algorithm dynamic --robots 9 --sim-time 16000
    repro-sim compare --robots 9 --seed 7
    repro-sim figure 2 --seeds 1 2 --sim-time 32000 --store --jobs 4
    repro-sim store ls
    repro-sim params
    repro-sim lint src/

Every command prints plain text tables; ``run`` can additionally write
an SVG snapshot of the final field state.

``figure``, ``compare`` and ``ablate`` accept ``--store [PATH]`` to
cache finished runs in a content-addressed store (``--no-store``
disables it, ``REPRO_STORE`` or ``REPRO_STORE_ROOT`` enables it by
default) and ``--jobs N`` to fan fresh runs out over N worker
processes.  ``store ls|info|gc|verify`` inspects and maintains the
store itself; ``gc --max-bytes/--max-entries`` evicts oldest entries
over a cap.

``serve`` runs the simulation-as-a-service HTTP API (job submission
with single-flight dedup over the store — see ``docs/SERVICE.md``);
``export`` renders stored runs into a static dashboard JSON document.
"""

from __future__ import annotations

import argparse
import os
import sys
import typing

from repro.analysis import CoverageTracker, energy_report
from repro.core.runtime import ScenarioRuntime
from repro.experiments.ablations import (
    dispatch_policy_ablation,
    efficient_broadcast_ablation,
    partition_ablation,
    update_threshold_ablation,
)
from repro.deploy.scenario import (
    Algorithm,
    DispatchPolicy,
    PAPER_ROBOT_COUNTS,
    paper_scenario,
)
from repro.experiments.degraded import figure_degraded
from repro.experiments.figures import (
    figure2_motion_overhead,
    figure3_hops,
    figure4_update_transmissions,
)
from repro.experiments.render import render_table
from repro.experiments.resilience import (
    figure_resilience,
    figure_resilience_permanence,
)
from repro.experiments.runner import run_many
from repro.experiments.verification import figure_verification
from repro.faults.script import load_fault_script
from repro.sim.trace import RecordingSink, Tracer
from repro.store import ENV_VAR as STORE_ENV_VAR
from repro.store import ROOT_ENV_VAR as STORE_ROOT_ENV_VAR
from repro.store import RunStore

__all__ = ["main", "build_parser"]

_FIGURES = {
    "2": figure2_motion_overhead,
    "3": figure3_hops,
    "4": figure4_update_transmissions,
    "degraded": figure_degraded,
    "resilience": figure_resilience,
    "verification": figure_verification,
}

_ABLATIONS = {
    "partition": partition_ablation,
    "threshold": update_threshold_ablation,
    "dispatch": dispatch_policy_ablation,
    "broadcast": efficient_broadcast_ablation,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro-sim`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Reproduction of 'Replacing Failed Sensor Nodes by Mobile "
            "Robots' (ICDCSW'06): run scenarios, compare the three "
            "coordination algorithms, regenerate the paper's figures."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one scenario")
    _add_scenario_arguments(run)
    run.add_argument(
        "--energy",
        action="store_true",
        help="also print the energy report",
    )
    run.add_argument(
        "--coverage",
        action="store_true",
        help="track and print sensing coverage",
    )
    run.add_argument(
        "--svg",
        metavar="FILE",
        help="write an SVG snapshot of the final field state",
    )

    compare = commands.add_parser(
        "compare", help="run all three algorithms on one deployment"
    )
    _add_scenario_arguments(compare, with_algorithm=False)
    _add_cache_arguments(compare)
    _add_profile_argument(compare)

    figure = commands.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure.add_argument(
        "number",
        choices=sorted(_FIGURES),
        help="paper figure number, or 'resilience' / 'verification' / "
        "'degraded' for the robot-fault, network-fault, and "
        "degraded-mode extension figures",
    )
    figure.add_argument(
        "--robots",
        type=int,
        nargs="+",
        default=list(PAPER_ROBOT_COUNTS),
        help="robot counts to sweep (default: 4 9 16)",
    )
    figure.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2], help="seeds"
    )
    figure.add_argument(
        "--sim-time", type=float, default=32_000.0, help="horizon (s)"
    )
    figure.add_argument(
        "--speed",
        type=float,
        default=4.0,
        help="robot speed (m/s); 4 = the benches' low-utilization "
        "regime, 1 = the paper's literal setting",
    )
    figure.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="frame loss rate [0,1) applied to every run",
    )
    figure.add_argument(
        "--mtbf",
        type=float,
        nargs="+",
        default=[2_000.0, 8_000.0, 32_000.0],
        help="robot MTBF values to sweep (figure 'resilience' only)",
    )
    figure.add_argument(
        "--svg",
        metavar="FILE",
        help="also write the figure as an SVG line chart",
    )
    _add_cache_arguments(figure)
    _add_profile_argument(figure)

    ablate = commands.add_parser(
        "ablate", help="run one of the ablation studies"
    )
    ablate.add_argument(
        "study",
        choices=sorted(_ABLATIONS),
        help="which design choice to ablate",
    )
    ablate.add_argument("--robots", type=int, default=9)
    ablate.add_argument("--seed", type=int, default=1)
    ablate.add_argument(
        "--sim-time", type=float, default=16_000.0, help="horizon (s)"
    )
    ablate.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="frame loss rate [0,1) applied to every run",
    )
    _add_cache_arguments(ablate)

    faults = commands.add_parser(
        "faults",
        help="demo: run a scripted fault campaign and print the "
        "fault/recovery timeline",
    )
    _add_scenario_arguments(faults)
    faults.add_argument(
        "--sweep-permanence",
        action="store_true",
        help="instead of one campaign, sweep the permanent-crash "
        "probability (figure_resilience_permanence)",
    )
    faults.add_argument(
        "--permanent-p",
        type=float,
        nargs="+",
        default=[0.0, 0.5, 1.0],
        metavar="P",
        help="permanent-crash probabilities for --sweep-permanence "
        "(default: 0 0.5 1)",
    )
    _add_profile_argument(faults)

    store = commands.add_parser(
        "store",
        help="inspect and maintain the content-addressed run store",
    )
    store.add_argument(
        "action",
        choices=("ls", "info", "gc", "verify"),
        help=(
            "ls: list entries; info: show one entry's manifest and "
            "report; gc: drop temp files and stale-schema entries; "
            "verify: re-validate every entry's checksum"
        ),
    )
    store.add_argument(
        "digest",
        nargs="?",
        default=None,
        help="entry digest (prefix accepted) — required for `info`",
    )
    store.add_argument(
        "--store",
        dest="store",
        default=None,
        metavar="PATH",
        help=(
            "store directory (default: $REPRO_STORE_ROOT, "
            "$REPRO_STORE, or ~/.cache/repro-sim)"
        ),
    )
    store.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="gc only: evict oldest entries until the store is at "
        "most N bytes",
    )
    store.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="gc only: evict oldest entries until at most N remain",
    )

    serve = commands.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP API "
        "(see docs/SERVICE.md)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8373,
        help="TCP port; 0 binds an ephemeral port (default: 8373)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="simulation worker processes (default: 2)",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "store directory backing the service (default: "
            "$REPRO_STORE_ROOT, $REPRO_STORE, or ~/.cache/repro-sim)"
        ),
    )
    serve.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-request access logging",
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="automatic re-executions of a failed-retryable job "
        "(default: 2; 0 disables retries)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cancel and requeue an execution running longer than this "
        "(default: no per-job timeout)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="reject new executions with 503 + Retry-After once N "
        "digests are in flight (default: uncapped)",
    )

    export = commands.add_parser(
        "export",
        help="render stored runs into a static dashboard JSON document",
    )
    export.add_argument(
        "digests",
        nargs="*",
        default=[],
        metavar="DIGEST",
        help="entry digests (prefixes accepted); or use --all",
    )
    export.add_argument(
        "--all",
        action="store_true",
        help="export every entry in the store",
    )
    export.add_argument(
        "--output",
        default="-",
        metavar="FILE",
        help="destination file ('-' prints to stdout; default: -)",
    )
    export.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "store directory (default: $REPRO_STORE_ROOT, "
            "$REPRO_STORE, or ~/.cache/repro-sim)"
        ),
    )

    bench = commands.add_parser(
        "bench",
        help="run the hot-path microbenchmarks and record throughput",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="~4x smaller workloads (CI smoke scale)",
    )
    bench.add_argument(
        "--output",
        metavar="FILE",
        default="BENCH_results.json",
        help="JSON file to merge results into (default: "
        "BENCH_results.json; '-' prints to stdout only)",
    )

    commands.add_parser(
        "params", help="print the paper's default parameters"
    )

    lint = commands.add_parser(
        "lint",
        help="run the determinism linter (same as repro-lint)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker threads for the per-file pass (default: 1)",
    )
    lint.add_argument(
        "--no-project",
        action="store_true",
        help="skip the cross-module pass (R6/R8/R9)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _add_scenario_arguments(
    parser: argparse.ArgumentParser, with_algorithm: bool = True
) -> None:
    if with_algorithm:
        parser.add_argument(
            "--algorithm",
            choices=Algorithm.ALL,
            default=Algorithm.DYNAMIC,
            help="coordination algorithm",
        )
    parser.add_argument("--robots", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sim-time", type=float, default=16_000.0, help="horizon (s)"
    )
    parser.add_argument(
        "--speed", type=float, default=1.0, help="robot speed (m/s)"
    )
    parser.add_argument(
        "--loss", type=float, default=0.0, help="frame loss rate [0,1)"
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="spares per robot (default: unlimited)",
    )
    parser.add_argument(
        "--dispatch",
        choices=DispatchPolicy.ALL,
        default=DispatchPolicy.CLOSEST,
        help="central-manager dispatch policy (centralized only)",
    )
    parser.add_argument(
        "--traffic-period",
        type=float,
        default=None,
        help="enable background sensor readings every N seconds",
    )
    parser.add_argument(
        "--robot-mtbf",
        type=float,
        default=None,
        metavar="S",
        help="enable stochastic robot breakdowns with this mean time "
        "between failures (s)",
    )
    parser.add_argument(
        "--robot-downtime",
        type=float,
        default=None,
        metavar="S",
        help="downtime of a recoverable breakdown (default: 900 s)",
    )
    parser.add_argument(
        "--fault-script",
        metavar="FILE",
        default=None,
        help="JSON file with a scripted fault campaign (list of "
        "{time, target, kind[, duration, x, y, radius, severity]})",
    )
    parser.add_argument(
        "--jam-rate",
        type=float,
        default=None,
        metavar="R",
        help="enable stochastic jamming: regions appear at R per "
        "second at uniform field positions",
    )
    parser.add_argument(
        "--jam-radius",
        type=float,
        default=None,
        metavar="M",
        help="radius of stochastic jam regions (default: 100 m)",
    )
    parser.add_argument(
        "--jam-mtbf",
        type=float,
        default=None,
        metavar="S",
        help="mean duration of a stochastic jam region (default: 600 s)",
    )
    parser.add_argument(
        "--jam-loss",
        type=float,
        default=None,
        metavar="P",
        help="per-frame drop probability inside a jam region "
        "(default: 1.0 = total blackout)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="enable the failure-verification protocol (suspicion "
        "quorum, dispatcher probes, on-site checks)",
    )
    parser.add_argument(
        "--adaptive-verify",
        action="store_true",
        help="scale the verification quorum and suspicion/probe "
        "timeouts from observed channel loss (requires --verify)",
    )
    parser.add_argument(
        "--coop-repair",
        action="store_true",
        help="auction over-threshold robot backlogs to under-loaded "
        "robots (cooperative backlog repair)",
    )
    parser.add_argument(
        "--jam-aware",
        action="store_true",
        help="plan robot travel around live jam disks with tangent "
        "detours",
    )


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    """``--profile [N]`` for the simulation-heavy commands."""
    parser.add_argument(
        "--profile",
        nargs="?",
        const=25,
        default=None,
        type=int,
        metavar="N",
        help="run under cProfile and print the top N functions by "
        "cumulative time to stderr (default N: 25)",
    )


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    """``--store/--no-store/--jobs`` for the sweep-backed commands."""
    parser.add_argument(
        "--store",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help=(
            "cache finished runs in a content-addressed store; with no "
            "PATH, uses $REPRO_STORE or ~/.cache/repro-sim"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="never consult the store, even when $REPRO_STORE is set",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run uncached simulations over N worker processes "
            "(default: serial)"
        ),
    )


def _resolve_store(args: argparse.Namespace) -> typing.Optional[RunStore]:
    """The store the command should use, or ``None`` when disabled.

    Precedence: ``--no-store`` wins; then an explicit ``--store``
    (optionally with a path); then the ``REPRO_STORE_ROOT`` or
    ``REPRO_STORE`` environment variable opts the default store in
    (``RunStore()`` itself resolves which directory that is — see
    ``docs/STORE.md``).
    """
    if getattr(args, "no_store", False):
        return None
    if args.store is not None:
        return RunStore(args.store or None)
    if os.environ.get(STORE_ROOT_ENV_VAR) or os.environ.get(STORE_ENV_VAR):
        return RunStore()
    return None


def _cache_note(cache: typing.Any, store: typing.Optional[RunStore]) -> None:
    if store is not None:
        print(
            f"store: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"[{store.root}]",
            file=sys.stderr,
        )


def _config_from_args(args: argparse.Namespace, algorithm: str):
    overrides: typing.Dict[str, typing.Any] = {}
    if getattr(args, "robot_mtbf", None) is not None:
        overrides["robot_mtbf_s"] = args.robot_mtbf
    if getattr(args, "robot_downtime", None) is not None:
        overrides["robot_downtime_s"] = args.robot_downtime
    if getattr(args, "fault_script", None):
        overrides["fault_script"] = load_fault_script(args.fault_script)
    if getattr(args, "jam_rate", None) is not None:
        overrides["jam_rate"] = args.jam_rate
    if getattr(args, "jam_radius", None) is not None:
        overrides["jam_radius_m"] = args.jam_radius
    if getattr(args, "jam_mtbf", None) is not None:
        overrides["jam_duration_mtbf_s"] = args.jam_mtbf
    if getattr(args, "jam_loss", None) is not None:
        overrides["jam_loss_rate"] = args.jam_loss
    if getattr(args, "verify", False):
        overrides["verify_failures"] = True
    if getattr(args, "adaptive_verify", False):
        overrides["adaptive_verify"] = True
    if getattr(args, "coop_repair", False):
        overrides["coop_repair"] = True
    if getattr(args, "jam_aware", False):
        overrides["jam_aware"] = True
    return paper_scenario(
        algorithm,
        args.robots,
        seed=args.seed,
        sim_time_s=args.sim_time,
        robot_speed_mps=args.speed,
        loss_rate=args.loss,
        robot_capacity=args.capacity,
        dispatch_policy=args.dispatch,
        data_traffic_period_s=args.traffic_period,
        **overrides,
    )


def _command_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args, args.algorithm)
    tracer = Tracer()
    moves = RecordingSink()
    if args.svg:
        tracer.subscribe("move", moves)
    runtime = ScenarioRuntime(config, tracer=tracer)
    tracker = (
        CoverageTracker(runtime, period=config.sim_time_s / 32)
        if args.coverage
        else None
    )
    print(f"running: {config.describe()}")
    report = runtime.run()
    print()
    for line in report.summary_lines():
        print(" ", line)
    if args.traffic_period:
        from repro.net import Category

        stats = runtime.routing_stats
        print(
            "  data readings: "
            f"{stats.originated.get(Category.DATA, 0)} sent, "
            f"delivery {stats.delivery_ratio(Category.DATA):.3f}, "
            f"{stats.mean_hops(Category.DATA):.2f} hops"
        )
    if tracker is not None:
        print()
        print(
            f"  coverage: mean {tracker.mean_coverage():.3f}, "
            f"min {tracker.minimum_coverage():.3f}, "
            f"deficit {tracker.deficit_integral():.1f} fraction-s"
        )
    if args.energy:
        print()
        for line in energy_report(
            runtime.channel, runtime.metrics
        ).summary_lines():
            print(" ", line)
    if args.svg:
        from repro.viz import render_field_svg, trails_from_trace

        svg = render_field_svg(
            runtime, trails=trails_from_trace(moves.records)
        )
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(svg)
        print(f"\n  wrote {args.svg}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    store = _resolve_store(args)
    configs = [
        _config_from_args(args, algorithm) for algorithm in Algorithm.ALL
    ]
    reports, cache = run_many(
        configs,
        parallel=bool(args.jobs and args.jobs > 1),
        max_workers=args.jobs,
        store=store,
        progress=lambda line: print(line, file=sys.stderr),
    )
    rows = [
        [
            algorithm,
            report.failures,
            report.repaired,
            report.mean_travel_distance,
            report.mean_report_hops,
            report.update_transmissions_per_failure,
        ]
        for algorithm, report in zip(Algorithm.ALL, reports)
    ]
    _cache_note(cache, store)
    print(
        render_table(
            [
                "algorithm",
                "failures",
                "repaired",
                "travel m/fail",
                "report hops",
                "update tx/fail",
            ],
            rows,
            title=f"{args.robots} robots, seed {args.seed}, "
            f"{args.sim_time:.0f} s",
        )
    )
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    generator = _FIGURES[args.number]
    store = _resolve_store(args)
    if args.number == "resilience":
        figure = generator(
            mtbf_values=tuple(args.mtbf),
            loss_rates=(args.loss,),
            robot_count=args.robots[0],
            seeds=tuple(args.seeds),
            parallel=bool(args.jobs and args.jobs > 1),
            store=store,
            max_workers=args.jobs,
            sim_time_s=args.sim_time,
            robot_speed_mps=args.speed,
        )
    elif args.number == "degraded":
        figure = generator(
            robot_count=args.robots[0],
            seeds=tuple(args.seeds),
            sim_time_s=args.sim_time,
            parallel=bool(args.jobs and args.jobs > 1),
            store=store,
            max_workers=args.jobs,
            robot_speed_mps=args.speed,
        )
    elif args.number == "verification":
        figure = generator(
            robot_count=args.robots[0],
            seeds=tuple(args.seeds),
            sim_time_s=args.sim_time,
            parallel=bool(args.jobs and args.jobs > 1),
            store=store,
            max_workers=args.jobs,
            robot_speed_mps=args.speed,
            loss_rate=args.loss,
        )
    else:
        figure = generator(
            robot_counts=tuple(args.robots),
            seeds=tuple(args.seeds),
            parallel=bool(args.jobs and args.jobs > 1),
            store=store,
            max_workers=args.jobs,
            sim_time_s=args.sim_time,
            robot_speed_mps=args.speed,
            loss_rate=args.loss,
        )
    _cache_note(figure.sweep_result.cache, store)
    print(figure.render())
    if args.svg:
        from repro.viz import figure_to_svg

        y_labels = {
            "2": "average traveling distance per failure (m)",
            "3": "average number of hops per failure",
            "4": "transmissions for location update per failure",
            "degraded": "mean repair latency (s)",
            "resilience": "unrepaired failure fraction",
            "verification": "false dispatches per run",
        }
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(
                figure_to_svg(
                    figure,
                    y_label=y_labels.get(args.number, args.number),
                )
            )
        print(f"wrote {args.svg}")
    return 0 if figure.all_claims_hold else 1


def _command_ablate(args: argparse.Namespace) -> int:
    study = _ABLATIONS[args.study]
    store = _resolve_store(args)
    if args.study == "partition":  # multi-seed signature
        result = study(
            robot_count=args.robots,
            seeds=(args.seed,),
            store=store,
            max_workers=args.jobs,
            sim_time_s=args.sim_time,
            loss_rate=args.loss,
        )
    else:
        result = study(
            robot_count=args.robots,
            seed=args.seed,
            store=store,
            max_workers=args.jobs,
            sim_time_s=args.sim_time,
            loss_rate=args.loss,
        )
    print(result.table())
    return 0


_FAULT_TIMELINE_CATEGORIES = (
    "robot_fault",
    "robot_recovered",
    "manager_fault",
    "manager_recovered",
    "fault_detected",
    "manager_failover",
    "redispatch",
    "escalation",
    "orphaned",
    "net_fault",
    "net_fault_cleared",
    "suspicion",
    "suspicion_cleared",
    "probe",
    "probe_answered",
    "aborted_replacement",
    "false_replacement",
    "adaptive_mode",
    "coop_offer",
    "coop_claim",
    "coop_release",
    "coop_released",
    "reroute",
)


def _command_faults(args: argparse.Namespace) -> int:
    """Run a fault campaign and print the fault/recovery timeline."""
    if args.sweep_permanence:
        figure = figure_resilience_permanence(
            permanent_p_values=tuple(args.permanent_p),
            robot_mtbf_s=args.robot_mtbf or 6_000.0,
            robot_count=args.robots,
            seeds=(args.seed, args.seed + 1),
            sim_time_s=args.sim_time,
            robot_speed_mps=args.speed,
            loss_rate=args.loss,
        )
        print(figure.render())
        return 0 if figure.all_claims_hold else 1
    config = _config_from_args(args, args.algorithm)
    if not config.faults_enabled:
        # No faults requested: demo a default scripted campaign that
        # breaks the first robot halfway in (and kills the manager for
        # a while under the centralized algorithm).
        from repro.faults.script import FaultEvent, FaultKind

        half = config.sim_time_s / 2
        script = [
            FaultEvent(
                time=half,
                target="robot-00",
                kind=FaultKind.BREAKDOWN,
                duration=config.sim_time_s / 8,
            ),
            FaultEvent(
                time=half * 1.25,
                target="manager-00",
                kind=FaultKind.MANAGER_DOWN,
                duration=config.sim_time_s / 16,
            ),
        ]
        config = config.replace(fault_script=tuple(script))
    tracer = Tracer()
    recorder = RecordingSink()
    for category in _FAULT_TIMELINE_CATEGORIES:
        tracer.subscribe(category, recorder)
    runtime = ScenarioRuntime(config, tracer=tracer)
    print(f"running: {config.describe()}")
    report = runtime.run()
    print()
    print("fault timeline:")
    if not recorder.records:
        print("  (no fault events)")
    for record in recorder.records:
        fields = ", ".join(
            f"{key}={value}"
            for key, value in sorted(record.fields.items())
            if key != "time"
        )
        print(f"  t={record.time:9.1f}  {record.category:17s} {fields}")
    print()
    for line in report.summary_lines():
        print(" ", line)
    return 0


def _command_store(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    if args.action == "ls":
        rows = []
        for entry in store.entries():
            manifest = entry.manifest
            rows.append(
                [
                    entry.digest[:12],
                    entry.config.algorithm,
                    entry.config.robot_count,
                    entry.config.seed,
                    entry.schema,
                    manifest.get("duration_s", float("nan")),
                    manifest.get("package_version", "?"),
                ]
            )
        print(
            render_table(
                [
                    "digest",
                    "algorithm",
                    "robots",
                    "seed",
                    "schema",
                    "duration s",
                    "version",
                ],
                rows,
                title=f"{len(rows)} entr(y/ies) in {store.root}",
            )
        )
        for path, reason in store.quarantined:
            print(f"quarantined: {path} ({reason})", file=sys.stderr)
        return 0
    if args.action == "info":
        if not args.digest:
            print("store info: a digest (prefix) is required", file=sys.stderr)
            return 2
        matches = store.resolve_prefix(args.digest)
        if len(matches) != 1:
            print(
                f"store info: {args.digest!r} matches "
                f"{len(matches)} entries",
                file=sys.stderr,
            )
            return 2
        entry = store.load(matches[0])
        if entry is None:
            print(
                f"store info: entry {matches[0][:12]} failed validation "
                "and was quarantined",
                file=sys.stderr,
            )
            return 1
        print(f"digest:  {entry.digest}")
        print(f"path:    {store.object_path(entry.digest)}")
        for key in sorted(entry.manifest):
            print(f"{key}: {entry.manifest[key]}")
        print()
        for line in entry.report.summary_lines():
            print(" ", line)
        return 0
    if args.action == "gc":
        outcome = store.gc(
            max_bytes=args.max_bytes, max_entries=args.max_entries
        )
        note = ""
        if args.max_bytes is not None or args.max_entries is not None:
            note = (
                f", evicted {outcome.evicted} "
                f"(now {outcome.kept_bytes} bytes)"
            )
        print(
            f"gc {store.root}: kept {outcome.kept}, removed "
            f"{outcome.removed_stale} stale entr(y/ies) and "
            f"{outcome.removed_tmp} temp file(s), quarantined "
            f"{outcome.quarantined}{note}"
        )
        return 0
    # verify
    outcome = store.verify()
    print(
        f"verify {store.root}: {outcome.ok}/{outcome.checked} ok, "
        f"{len(outcome.stale)} stale, {len(outcome.corrupt)} corrupt"
    )
    for path, reason in outcome.corrupt:
        print(f"corrupt: {path} ({reason})", file=sys.stderr)
    return 0 if outcome.passed else 1


def _command_serve(args: argparse.Namespace) -> int:
    """Run the HTTP job API until interrupted."""
    from repro.service import RetryPolicy, serve

    store = RunStore(args.store)
    policy = RetryPolicy(
        max_retries=max(0, args.max_retries),
        job_timeout_s=args.job_timeout,
        queue_depth=args.queue_depth,
    )
    server = serve(
        store=store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        quiet=args.quiet,
        policy=policy,
    )
    # The announced line is machine-read by the CI smoke job (and by
    # anyone scripting against --port 0), so keep it one flushed line.
    print(
        f"serving on http://{args.host}:{server.port} "
        f"[store {store.root}, {args.workers} worker(s)]",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
        server.server_close()
        server.queue.shutdown(wait=False)
    return 0


def _command_export(args: argparse.Namespace) -> int:
    """Render stored runs into one static dashboard JSON document."""
    import json

    from repro.service.export import export_runs

    store = RunStore(args.store)
    if args.all:
        entries = list(store.entries())
    elif not args.digests:
        print(
            "export: give entry digests (prefixes) or --all",
            file=sys.stderr,
        )
        return 2
    else:
        entries = []
        for prefix in args.digests:
            matches = store.resolve_prefix(prefix)
            if len(matches) != 1:
                print(
                    f"export: {prefix!r} matches {len(matches)} entries",
                    file=sys.stderr,
                )
                return 2
            entry = store.load(matches[0])
            if entry is None:
                print(
                    f"export: entry {matches[0][:12]} failed validation",
                    file=sys.stderr,
                )
                return 1
            entries.append(entry)
    document = export_runs(entries)
    text = json.dumps(
        document, sort_keys=True, indent=2, allow_nan=False
    )
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(
            f"export: wrote {document['count']} run(s) to {args.output}",
            file=sys.stderr,
        )
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    argv = [*args.paths, "--format", args.format, "--jobs", str(args.jobs)]
    if args.no_project:
        argv.append("--no-project")
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def _command_bench(args: argparse.Namespace) -> int:
    """Run the microbenchmark battery; merge into BENCH_results.json."""
    import json

    from repro.perf import run_benchmarks

    results = run_benchmarks(quick=args.quick)
    rows = [
        [name, f"{entry['throughput_per_s']:,.0f}"]
        for name, entry in sorted(results.items())
    ]
    print(
        render_table(
            ["bench", "throughput / s"],
            rows,
            title="hot-path microbenchmarks"
            + (" (quick scale)" if args.quick else ""),
        )
    )
    if args.output != "-":
        merged: typing.Dict[str, typing.Any] = {}
        if os.path.exists(args.output):
            try:
                with open(args.output, "r", encoding="utf-8") as handle:
                    merged = json.load(handle)
            except (OSError, ValueError):
                print(
                    f"bench: could not parse {args.output}; rewriting",
                    file=sys.stderr,
                )
                merged = {}
        merged["microbenchmarks"] = results
        # Mirror the kernel-vs-scalar and sweep entries into dedicated
        # sections so before/after comparisons don't have to fish them
        # out of the flat microbenchmark map.
        merged["geometry_kernels"] = {
            name: entry
            for name, entry in results.items()
            if name.startswith(("voronoi_membership", "distance_filter"))
        }
        merged["sweep_throughput"] = {
            name: entry
            for name, entry in results.items()
            if name.startswith("sweep_")
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _command_params(_args: argparse.Namespace) -> int:
    config = paper_scenario(Algorithm.CENTRALIZED, 16)
    rows = [
        ["area per robot", "200 m x 200 m"],
        ["sensors per robot", config.sensors_per_robot],
        ["field @16 robots", f"{config.area_side_m:.0f} m square"],
        ["sensors @16 robots", config.sensor_count],
        ["robot speed", f"{config.robot_speed_mps} m/s"],
        ["sensor lifetime", f"Exp({config.mean_lifetime_s:.0f} s)"],
        ["simulation time", f"{config.sim_time_s:.0f} s"],
        ["beacon period", f"{config.beacon_period_s:.0f} s"],
        [
            "failure after",
            f"{config.missed_beacons_for_failure} missed beacons",
        ],
        ["update threshold", f"{config.update_threshold_m:.0f} m"],
        ["sensor radio", "63 m @ 11 Mbps"],
        ["robot/manager radio", "250 m @ 11 Mbps"],
    ]
    print(render_table(["parameter", "value"], rows, title="paper §4.1"))
    return 0


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "compare": _command_compare,
        "figure": _command_figure,
        "ablate": _command_ablate,
        "faults": _command_faults,
        "store": _command_store,
        "serve": _command_serve,
        "export": _command_export,
        "bench": _command_bench,
        "params": _command_params,
        "lint": _command_lint,
    }
    handler = handlers[args.command]
    if getattr(args, "profile", None):
        from repro.perf import profile_call

        return profile_call(lambda: handler(args), top=args.profile)
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
