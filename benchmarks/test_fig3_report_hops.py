"""Figure 3 — average message passing hops per failure.

Regenerates the paper's Figure 3: centralized failure-report and
repair-request hops grow with the network (the scalability argument),
while the distributed algorithms' report hops stay flat around two.
"""

from repro.experiments import figure3_hops


def test_figure3_report_hops(figure_sweep, benchmark):
    figure = benchmark.pedantic(
        figure3_hops,
        kwargs=dict(
            robot_counts=figure_sweep["robot_counts"],
            seeds=figure_sweep["seeds"],
            sweep_result=figure_sweep["result"],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.render())

    for claim in figure.claims:
        assert claim.holds, str(claim)

    # The paper's y-axis tops out at 6 for its sizes; leave headroom for
    # statistical wiggle but catch pathological hop counts.
    for series in figure.series.values():
        for value in series:
            assert 1.0 <= value <= 10.0
