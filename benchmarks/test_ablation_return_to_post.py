"""Ablation — return-to-post idle behaviour (extension).

In the paper robots park wherever their last repair ended.  This
extension sends an idle robot back to its home post (the subarea centre
in the fixed algorithm; its deployment spot otherwise) after a grace
period, abandoning the trip if new work arrives.

Finding: the fixed algorithm benefits most — its post is the *centre of
its service area*, so per-failure legs drop towards the
centre-to-uniform expectation (0.3826·200 ≈ 77 m) — while the
centralized/dynamic algorithms' arbitrary deployment posts buy nothing.
All algorithms pay substantially more *total* odometry for the
repositioning trips.  Per-failure distance (the paper's Figure-2
metric) and total energy tell different stories — exactly the paper's
closing point that the optimal choice depends on the objective.
"""

from repro import Algorithm, paper_scenario
from repro.experiments import render_table, run_config

GRACE_S = 120.0


def run_return_comparison():
    results = {}
    for algorithm in Algorithm.ALL:
        for returns in (False, True):
            config = paper_scenario(
                algorithm,
                9,
                seed=1,
                sim_time_s=16_000.0,
                return_to_post_after_s=GRACE_S if returns else None,
            )
            results[(algorithm, returns)] = run_config(config)
    return results


def test_return_to_post_tradeoff(benchmark):
    results = benchmark.pedantic(
        run_return_comparison, rounds=1, iterations=1
    )
    rows = [
        [
            algorithm,
            "post" if returns else "park",
            report.mean_travel_distance,
            report.total_robot_distance / 1_000.0,
            report.mean_repair_latency,
        ]
        for (algorithm, returns), report in results.items()
    ]
    print()
    print(
        render_table(
            [
                "algorithm",
                "idle",
                "leg m/fail",
                "total km",
                "latency s",
            ],
            rows,
            title="Ablation: return-to-post idle behaviour "
            f"(grace {GRACE_S:.0f} s, literal 1 m/s parameters)",
        )
    )

    # Fixed improves its per-failure legs markedly (the post is the
    # cell centre)...
    fixed_park = results[(Algorithm.FIXED, False)]
    fixed_post = results[(Algorithm.FIXED, True)]
    assert (
        fixed_post.mean_travel_distance
        < fixed_park.mean_travel_distance * 0.95
    )
    # ... but every algorithm pays more total odometry for the trips.
    for algorithm in Algorithm.ALL:
        park = results[(algorithm, False)]
        post = results[(algorithm, True)]
        assert post.total_robot_distance > park.total_robot_distance
        # And repairs keep working either way.
        assert post.repaired >= post.failures * 0.9
