"""Microbenchmarks of the substrates (true timing benchmarks).

Unlike the figure benches (which time one full experiment), these
exercise the hot paths in isolation so performance regressions in the
kernel, spatial index, Voronoi construction, or routing show up as
timing changes.
"""

import random

import pytest

from repro.deploy import connected_uniform_positions
from repro.geometry import Point, Rect, voronoi_cells
from repro.net import Category, Channel, NetworkNode, RadioConfig
from repro.net.frames import BROADCAST, Frame, Packet
from repro.perf.bench import PAPER_DENSITIES, _SIDE_PER_SENSOR_M
from repro.routing import RoutingStats
from repro.net.spatial import SpatialGrid
from repro.sim import RandomStreams, Simulator


def test_bench_event_kernel_throughput(benchmark):
    """Schedule-and-run throughput of the DES kernel."""

    def run_kernel():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                sim.call_in(1.0, tick)

        sim.call_in(1.0, tick)
        sim.run()
        return count

    assert benchmark(run_kernel) == 20_000


def test_bench_spatial_grid_queries(benchmark):
    """Range queries at the paper's sensor density."""
    rng = random.Random(1)
    grid = SpatialGrid(cell_size=80.0)
    for index in range(800):
        grid.insert(
            f"s{index:04d}",
            Point(rng.uniform(0, 800), rng.uniform(0, 800)),
        )
    probes = [
        Point(rng.uniform(0, 800), rng.uniform(0, 800))
        for _ in range(500)
    ]

    def query_all():
        return sum(len(grid.within(p, 63.0)) for p in probes)

    assert benchmark(query_all) > 0


def _fanout_field(sensors, loss_rate=0.0):
    """A sensor field at the paper's density, ready to broadcast."""
    sim = Simulator()
    streams = RandomStreams(5)
    channel = Channel(sim, streams)
    side = _SIDE_PER_SENSOR_M * (sensors**0.5)
    rng = random.Random(7)
    nodes = [
        NetworkNode(
            f"s{index:04d}",
            Point(rng.uniform(0, side), rng.uniform(0, side)),
            RadioConfig(range_m=63.0, loss_rate=loss_rate),
            sim,
            channel,
            streams,
        )
        for index in range(sensors)
    ]
    return sim, channel, nodes


def _broadcast_round(sim, channel, nodes):
    """Every node broadcasts one beacon; the simulator drains delivery."""
    for node in nodes:
        packet = Packet(
            source=node.node_id,
            destination=BROADCAST,
            category=Category.BEACON,
        )
        channel.transmit(
            node,
            Frame(
                sender=node.node_id,
                link_destination=BROADCAST,
                packet=packet,
            ),
        )
    sim.run()
    return channel.stats.frames_delivered


@pytest.mark.parametrize("robots", sorted(PAPER_DENSITIES))
def test_bench_channel_broadcast_fanout(benchmark, robots):
    """Broadcast fan-out at the paper's three field densities."""
    sim, channel, nodes = _fanout_field(PAPER_DENSITIES[robots])

    delivered = benchmark(_broadcast_round, sim, channel, nodes)
    assert delivered > 0


def test_bench_channel_broadcast_fanout_lossy(benchmark):
    """The densest field again, with a 10% lossy radio (ARQ machinery)."""
    sim, channel, nodes = _fanout_field(PAPER_DENSITIES[16], loss_rate=0.1)

    delivered = benchmark(_broadcast_round, sim, channel, nodes)
    assert delivered > 0


def test_bench_voronoi_construction(benchmark):
    """Bounded Voronoi diagram at the paper's largest robot count."""
    rng = random.Random(2)
    bounds = Rect.square(800.0)
    sites = [
        Point(rng.uniform(0, 800), rng.uniform(0, 800)) for _ in range(16)
    ]

    def build():
        return voronoi_cells(sites, bounds)

    cells = benchmark(build)
    assert abs(sum(c.area for c in cells) - bounds.area) < 1.0


def test_bench_georouting_end_to_end(benchmark):
    """Routed delivery across a 400-sensor field (tables pre-seeded)."""
    rng = random.Random(3)
    radio = 63.0
    positions = connected_uniform_positions(
        400, Rect.square(565.0), radio, rng
    )
    sim = Simulator()
    streams = RandomStreams(3)
    channel = Channel(sim, streams)
    stats = RoutingStats()
    nodes = [
        NetworkNode(
            f"s{index:04d}",
            position,
            RadioConfig(range_m=radio),
            sim,
            channel,
            streams,
            routing_stats=stats,
        )
        for index, position in enumerate(positions)
    ]
    for node in nodes:
        for other in channel.nodes_within(
            node.position, radio, exclude=node.node_id
        ):
            node.neighbor_table.upsert(
                other.node_id, other.position, other.kind, 0.0
            )

    def route_fifty():
        for index in range(50):
            source = nodes[index]
            target = nodes[-1 - index]
            source.send_routed(
                target.node_id,
                target.position,
                Category.DATA,
                index,
            )
        sim.run(until=sim.now + 10.0)
        return stats.delivered_count(Category.DATA)

    delivered = benchmark.pedantic(route_fifty, rounds=3, iterations=1)
    assert delivered >= 45
