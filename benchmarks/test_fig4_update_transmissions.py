"""Figure 4 — transmissions for robot location updates per failure.

Regenerates the paper's Figure 4: both distributed algorithms flood
location updates through (part of) the sensor field and pay two orders
of magnitude more transmissions than the centralized algorithm's routed
updates; the dynamic algorithm pays slightly more than the fixed one.
"""

from repro.experiments import figure4_update_transmissions


def test_figure4_update_transmissions(figure_sweep, benchmark):
    figure = benchmark.pedantic(
        figure4_update_transmissions,
        kwargs=dict(
            robot_counts=figure_sweep["robot_counts"],
            seeds=figure_sweep["seeds"],
            sweep_result=figure_sweep["result"],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.render())

    for claim in figure.claims:
        assert claim.holds, str(claim)

    # The paper's y-axis spans 0..300 transmissions per failure; our
    # floods land in the same order of magnitude.
    dynamic = figure.series["dynamic"]
    fixed = figure.series["fixed"]
    centralized = figure.series["centralized"]
    for value in list(dynamic) + list(fixed):
        assert 100.0 <= value <= 700.0
    for value in centralized:
        assert value <= 60.0
