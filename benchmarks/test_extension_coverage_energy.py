"""Extension bench — end-to-end service metrics: coverage kept, joules
spent.

The paper scores algorithms on motion and messaging overhead; these are
proxies for the quantities a deployment owner actually cares about: how
much sensing coverage survives, and the total energy bill.  This bench
scores all three algorithms on both, using the analysis layer.
"""

from repro import Algorithm, ScenarioRuntime, paper_scenario
from repro.analysis import CoverageTracker, energy_report
from repro.experiments import render_table


def run_coverage_energy():
    results = {}
    for algorithm in Algorithm.ALL:
        config = paper_scenario(
            algorithm,
            4,
            seed=10,
            sim_time_s=12_000.0,
        )
        runtime = ScenarioRuntime(config)
        tracker = CoverageTracker(runtime, period=400.0, resolution=35)
        report = runtime.run()
        energy = energy_report(runtime.channel, runtime.metrics)
        results[algorithm] = {
            "report": report,
            "mean_coverage": tracker.mean_coverage(),
            "min_coverage": tracker.minimum_coverage(),
            "deficit": tracker.deficit_integral(),
            "motion_j": energy.motion_total_j,
            "radio_j": energy.messaging_total_j,
        }
    return results


def test_coverage_and_energy(benchmark):
    results = benchmark.pedantic(
        run_coverage_energy, rounds=1, iterations=1
    )
    rows = [
        [
            algorithm,
            values["mean_coverage"],
            values["min_coverage"],
            values["deficit"],
            values["motion_j"] / 1_000.0,
            values["radio_j"],
        ]
        for algorithm, values in results.items()
    ]
    print()
    print(
        render_table(
            [
                "algorithm",
                "mean cover",
                "min cover",
                "deficit f·s",
                "motion kJ",
                "radio J",
            ],
            rows,
            title="Extension: coverage maintained vs energy spent "
            "(4 robots, 12000 s)",
        )
    )

    for algorithm, values in results.items():
        # Maintenance works: coverage stays close to the deployed level.
        assert values["mean_coverage"] >= 0.85, algorithm
        assert values["min_coverage"] >= 0.75, algorithm
        # Motion energy dominates radio energy by orders of magnitude —
        # the reason the paper optimises travel distance first.
        assert values["motion_j"] > 50 * values["radio_j"], algorithm

    # The distributed algorithms' flood traffic shows up as a radio
    # energy premium over the centralized manager.
    assert (
        results[Algorithm.DYNAMIC]["radio_j"]
        > results[Algorithm.CENTRALIZED]["radio_j"]
    )
