"""Ablation — efficient broadcast for location-update floods.

Paper §4.3.2 / §6 (future work): "The high messaging overhead in the two
distributed algorithms can be reduced by using more efficient broadcast
schemes which require only a subset of the sensors in each subarea to
relay the location update messages."  We implement that subset as a
greedy connected dominating set over the sensor graph and quantify the
saving the paper projected — without giving up failure repair.
"""

from repro import Algorithm, paper_scenario
from repro.experiments import render_table, run_config

from conftest import BENCH_ROBOT_SPEED


def run_broadcast_comparison():
    results = {}
    for algorithm in (Algorithm.FIXED, Algorithm.DYNAMIC):
        for efficient in (False, True):
            report = run_config(
                paper_scenario(
                    algorithm,
                    9,
                    seed=1,
                    efficient_broadcast=efficient,
                    sim_time_s=16_000.0,
                    robot_speed_mps=BENCH_ROBOT_SPEED,
                )
            )
            results[(algorithm, efficient)] = report
    return results


def test_efficient_broadcast_saves_transmissions(benchmark):
    results = benchmark.pedantic(
        run_broadcast_comparison, rounds=1, iterations=1
    )
    rows = [
        [
            algorithm,
            "CDS relays" if efficient else "all relay",
            report.update_transmissions_per_failure,
            report.repaired / max(report.failures, 1),
        ]
        for (algorithm, efficient), report in results.items()
    ]
    print()
    print(
        render_table(
            ["algorithm", "broadcast", "update tx/fail", "repair ratio"],
            rows,
            title="Ablation: efficient (dominating-set) broadcast "
            "(paper future work)",
        )
    )

    for algorithm in (Algorithm.FIXED, Algorithm.DYNAMIC):
        flood_all = results[(algorithm, False)]
        flood_cds = results[(algorithm, True)]
        saving = 1.0 - (
            flood_cds.update_transmissions_per_failure
            / flood_all.update_transmissions_per_failure
        )
        # The dominating set prunes a substantial share of the relays...
        assert saving >= 0.2, f"{algorithm}: saving only {saving:.1%}"
        # ...without giving up repairs.
        assert flood_cds.repaired >= flood_cds.failures * 0.9
